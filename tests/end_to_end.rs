//! End-to-end correctness of every distributed algorithm through the
//! public façade (`hsumma_repro`): scatter → SPMD multiply → gather →
//! compare against the serial reference, across grids, block sizes,
//! groupings and broadcast algorithms.

use hsumma_repro::core::testutil::{distributed_product, reference_product};
use hsumma_repro::core::{cannon, fox, hsumma, summa, HierGrid, HsummaConfig, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, GemmKernel, GridShape};
use hsumma_repro::runtime::BcastAlgorithm;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

#[test]
fn summa_across_grids_and_blocks() {
    for (s, t) in [(1, 1), (1, 4), (2, 2), (2, 4), (4, 4), (3, 3)] {
        let grid = GridShape::new(s, t);
        // n divisible by both grid extents, with room for several blocks.
        let n = s * t * 4;
        let a = seeded_uniform(n, n, 10);
        let b = seeded_uniform(n, n, 20);
        let want = reference_product(&a, &b);
        for block in [1usize, 2, 4] {
            if (n / s) % block != 0 || (n / t) % block != 0 {
                continue;
            }
            let cfg = SummaConfig {
                block,
                kernel: GemmKernel::Blocked,
                ..Default::default()
            };
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                summa(comm, grid, n, &at, &bt, &cfg).unwrap()
            });
            assert!(
                got.approx_eq(&want, TOL),
                "summa {s}x{t} n={n} block={block}: err {}",
                got.max_abs_diff(&want)
            );
        }
    }
}

#[test]
fn hsumma_matches_summa_bit_for_bit_when_schedules_align() {
    // With G = 1, b = B and the same kernel, HSUMMA performs the same
    // local operations in the same order as SUMMA, so results agree to
    // the last bit, not just within tolerance.
    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_uniform(n, n, 77);
    let b = seeded_uniform(n, n, 88);
    let scfg = SummaConfig {
        block: 4,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    let by_summa = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        summa(comm, grid, n, &at, &bt, &scfg).unwrap()
    });
    let hcfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(1, 1), 4)
    };
    let by_hsumma = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
    });
    assert_eq!(by_summa, by_hsumma, "G=1 HSUMMA must equal SUMMA exactly");
}

#[test]
fn all_four_algorithms_agree_on_a_square_grid() {
    let grid = GridShape::new(3, 3);
    let n = 18;
    let a = seeded_uniform(n, n, 5);
    let b = seeded_uniform(n, n, 6);
    let want = reference_product(&a, &b);

    let by_cannon = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
    });
    let by_fox = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        fox(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
    });
    let scfg = SummaConfig {
        block: 2,
        ..Default::default()
    };
    let by_summa = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        summa(comm, grid, n, &at, &bt, &scfg).unwrap()
    });
    let hcfg = HsummaConfig::uniform(GridShape::new(3, 3), 2);
    let by_hsumma = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
    });

    for (name, got) in [
        ("cannon", by_cannon),
        ("fox", by_fox),
        ("summa", by_summa),
        ("hsumma", by_hsumma),
    ] {
        assert!(got.approx_eq(&want, TOL), "{name} diverged");
    }
}

#[test]
fn hsumma_with_larger_outer_block_and_vdg_broadcasts() {
    // The paper's general configuration: B > b, long-message broadcast
    // between groups, tree broadcast inside.
    let grid = GridShape::new(4, 4);
    let n = 32;
    let a = seeded_uniform(n, n, 41);
    let b = seeded_uniform(n, n, 42);
    let want = reference_product(&a, &b);
    let cfg = HsummaConfig {
        groups: GridShape::new(2, 2),
        outer_block: 8,
        inner_block: 2,
        outer_bcast: BcastAlgorithm::ScatterAllgather,
        inner_bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
    });
    assert!(got.approx_eq(&want, TOL), "err {}", got.max_abs_diff(&want));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn summa_random_configs(
        s in 1usize..4,
        t in 1usize..4,
        tiles in 1usize..4,
        seed in 0u64..1000,
    ) {
        let grid = GridShape::new(s, t);
        let n = s * t * tiles * 2;
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed.wrapping_add(1));
        let want = reference_product(&a, &b);
        let cfg = SummaConfig { block: 1, kernel: GemmKernel::Blocked, ..Default::default() };
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(comm, grid, n, &at, &bt, &cfg).unwrap()
        });
        prop_assert!(got.approx_eq(&want, TOL));
    }

    #[test]
    fn hsumma_random_groupings(
        side in 1usize..5usize,
        g_seed in 0usize..100,
        seed in 0u64..1000,
    ) {
        let grid = GridShape::new(side, side);
        let counts = HierGrid::valid_group_counts(grid);
        let (_, groups) = counts[g_seed % counts.len()];
        let n = side * 4;
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed.wrapping_add(1));
        let want = reference_product(&a, &b);
        let cfg = HsummaConfig {
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(groups, 2)
        };
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
        });
        prop_assert!(got.approx_eq(&want, TOL));
    }
}
