//! Invariants of the tracing subsystem (`hsumma-trace`) across both
//! substrates: zero overhead when disabled, exact critical paths on
//! known schedules, and well-formed Chrome-trace exports.

use hsumma_repro::core::simdrive::sim_hsumma_on;
use hsumma_repro::core::{hsumma, summa, HsummaConfig, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_repro::netsim::{Hockney, Platform, SimBcast, SimNet};
use hsumma_repro::runtime::{BcastAlgorithm, Runtime};
use hsumma_repro::trace::{validate_json, EventKind, Tracer};

fn summa_cfg(b: usize) -> SummaConfig {
    SummaConfig {
        block: b,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    }
}

/// With no tracer attached, the hot path must stay allocation-free
/// (`payload_clones == 0` on relay ranks, as before tracing existed) and
/// an enabled-elsewhere tracer must see zero events from this run.
#[test]
fn disabled_tracer_adds_no_events_and_no_hot_path_allocations() {
    let grid = GridShape::new(4, 4);
    let n = 32;
    let a = seeded_uniform(n, n, 1);
    let bm = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);
    let cfg = summa_cfg(4);

    // A live tracer that the run is NOT attached to: it must stay empty.
    let bystander = Tracer::new(grid.size());
    let stats = Runtime::run(grid.size(), |comm| {
        comm.reset_stats();
        let _ = summa(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        );
        (comm.rank(), comm.tracing(), comm.stats())
    });
    // Binomial relays forward Arc-shared payloads: only broadcast *roots*
    // materialize a buffer, exactly once per broadcast they originate. In
    // SUMMA the root rotates over grid columns (row bcast) and rows
    // (column bcast), so each rank roots steps/cols + steps/rows of them.
    // Any extra clone means tracing changed the hot path.
    let steps = n / 4;
    let roots_per_rank = (steps / grid.cols + steps / grid.rows) as u64;
    for (rank, tracing, s) in &stats {
        assert!(!tracing, "rank {rank} must see tracing disabled");
        assert_eq!(
            s.payload_clones, roots_per_rank,
            "rank {rank}: relays must forward Arc-shared payloads, \
             roots materialize exactly once per broadcast"
        );
    }
    let t = bystander.collect();
    assert_eq!(t.events.len(), 0, "unattached tracer must stay empty");
    assert_eq!(t.dropped, 0);
}

/// A simulated binomial broadcast over `p = 2^k` ranks has a critical
/// path of exactly `log2(p)` message edges — each round of the tree adds
/// one hop to the longest chain.
#[test]
fn binomial_bcast_critical_path_is_exactly_log2_p_edges() {
    use hsumma_repro::core::{Communicator, PhantomMat};
    use hsumma_repro::netsim::spmd::SimWorld;
    for p in [2usize, 4, 8, 16, 32] {
        let tracer = Tracer::new(p);
        let mut net = SimNet::new(p, Hockney::new(1e-5, 1e-9));
        net.attach_tracer(&tracer);
        // 512 f64 elements = the 4096 wire bytes the cost check expects.
        let (_net, _) = SimWorld::run(net, 0.0, false, move |comm| {
            let mut m = PhantomMat { rows: 1, cols: 512 };
            comm.bcast_mat(SimBcast::Binomial, 0, &mut m).unwrap();
        });
        let cp = tracer.collect().critical_path();
        let want = p.ilog2() as usize;
        assert_eq!(
            cp.message_edges.len(),
            want,
            "p={p}: expected ceil(log2 p) = {want} message edges, got {:?}",
            cp.message_edges
        );
        // And the makespan equals the per-hop cost times the hop count.
        let hop = 1e-5 + 4096.0 * 1e-9;
        assert!(
            (cp.makespan - hop * want as f64).abs() < 1e-12,
            "p={p}: makespan {} != {want} hops x {hop}",
            cp.makespan
        );
    }
}

/// Both substrates export valid Chrome-trace JSON with one complete-span
/// entry per traced event plus per-rank metadata.
#[test]
fn chrome_exports_from_both_substrates_validate() {
    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_uniform(n, n, 5);
    let bm = seeded_uniform(n, n, 6);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);
    let cfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
    };

    let tracer = Tracer::new(grid.size());
    Runtime::run_traced(grid.size(), &tracer, |comm| {
        let _ = hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        );
    });
    let real = tracer.collect();
    let json = real.to_chrome_json();
    validate_json(&json).expect("real-run export must be valid JSON");
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        real.events.len(),
        "one complete span per traced event"
    );
    assert_eq!(json.matches("thread_name").count(), grid.size());

    let sim_tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), Platform::grid5000().net);
    net.attach_tracer(&sim_tracer);
    sim_hsumma_on(
        &mut net,
        0.0,
        grid,
        GridShape::new(2, 2),
        n,
        4,
        4,
        SimBcast::Binomial,
        SimBcast::Binomial,
        false,
    );
    let sim = sim_tracer.collect();
    let sim_json = sim.to_chrome_json();
    validate_json(&sim_json).expect("sim export must be valid JSON");
    assert_eq!(sim_json.matches("\"ph\":\"X\"").count(), sim.events.len());
}

/// The per-pivot-step breakdown covers every step of the schedule and
/// accounts the right per-step message count and flop total.
#[test]
fn step_breakdown_covers_the_whole_schedule() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), Platform::grid5000().net);
    net.attach_tracer(&tracer);
    sim_hsumma_on(
        &mut net,
        Platform::grid5000().gamma,
        grid,
        groups,
        n,
        bb,
        bs,
        SimBcast::Binomial,
        SimBcast::Binomial,
        false,
    );
    let trace = tracer.collect();
    let rows = trace.step_breakdown();
    assert_eq!(rows.len(), n / bb, "one row per outer pivot step");
    let total_payload_msgs: u64 = rows.iter().map(|r| r.msgs).sum();
    assert_eq!(
        total_payload_msgs as usize,
        trace.payload_send_multiset().len(),
        "every message belongs to exactly one step"
    );
    // 2·n²·(n/p) flops per rank in total, attributed across steps.
    let p = grid.size();
    let want_flops = 2 * (n * n * n / p) * p;
    let total_flops: u64 = rows.iter().map(|r| r.flops).sum();
    assert_eq!(total_flops as usize, want_flops);
    for row in &rows {
        assert_eq!(row.outer, bb);
        assert_eq!(row.inner, bs);
        assert!(row.comm_max > 0.0, "step {}: no communication?", row.k);
        assert!(row.comp_max > 0.0, "step {}: no compute?", row.k);
    }
}

/// Spans recorded by a traced real run nest correctly: every p2p event
/// inside a collective lies within its span, on every rank.
#[test]
fn real_run_collective_spans_contain_their_messages() {
    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_uniform(n, n, 7);
    let bm = seeded_uniform(n, n, 8);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);
    let cfg = summa_cfg(4);
    let tracer = Tracer::new(grid.size());
    Runtime::run_traced(grid.size(), &tracer, |comm| {
        let _ = summa(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        );
    });
    let trace = tracer.collect();
    assert!(trace.count(|e| matches!(e.kind, EventKind::Collective { .. })) > 0);
    for rank in 0..grid.size() {
        let events: Vec<_> = trace.events_of(rank).collect();
        for c in events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Collective { .. }))
        {
            // Any message overlapping the collective's interval must be
            // fully inside it (spans close in completion order).
            for m in events.iter().filter(|e| {
                matches!(e.kind, EventKind::Send { .. } | EventKind::Recv { .. })
                    && e.t0 >= c.t0
                    && e.t0 < c.t1
            }) {
                assert!(
                    m.t1 <= c.t1 + 1e-9,
                    "rank {rank}: message [{}, {}] escapes collective [{}, {}]",
                    m.t0,
                    m.t1,
                    c.t0,
                    c.t1
                );
            }
        }
    }
}
