//! Fault-replay parity between the two substrates, in the style of
//! `sim_model_consistency.rs`: the *same* `FaultPlan` driven through the
//! *same generic algorithm* on the threaded runtime (real data, wall
//! clocks) and the network simulator (phantom payloads, virtual clocks)
//! must produce
//!
//! 1. the same per-rank outcome kind (`Ok` / `Timeout` / `Shutdown` /
//!    …), and
//! 2. the same number of injected faults,
//!
//! because both replay the plan with world-rank cursors at the send path
//! and both exclude the split/barrier bookkeeping protocols from fault
//! eligibility. This is what makes a failure schedule *portable*: debug
//! it in simulation, then reproduce it on real threads (or vice versa).

use hsumma_repro::core::{
    cosma, summa, summa_overlap, BrickDecomp, CosmaConfig, PhantomMat, SummaConfig,
};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_repro::netsim::{Platform, SimNet, SimRunOptions, SimWorld};
use hsumma_repro::runtime::{JobOptions, Runtime};
use hsumma_repro::trace::{CommErrorKind, FaultPlan, TagClass, Tracer};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 8;
const BLOCK: usize = 2;

fn grid() -> GridShape {
    GridShape::new(2, 2)
}

fn cfg() -> SummaConfig {
    SummaConfig {
        block: BLOCK,
        kernel: GemmKernel::Naive,
        ..SummaConfig::default()
    }
}

/// Per-rank outcome kinds plus the total number of injected faults —
/// the two quantities the acceptance criterion requires to agree.
type Replay = (Vec<Option<CommErrorKind>>, u64);

/// Replays `plan` through SUMMA on the threaded runtime with a wall-clock
/// deadline; faults counted from each rank's own [`CommStats`].
/// `pipelined` selects the nonblocking-collective schedule
/// ([`summa_overlap`]) instead of the blocking reference, so the same
/// plans can be replayed against in-flight `ibcast` traffic.
fn replay_threaded(plan: &Arc<FaultPlan>, pipelined: bool) -> Replay {
    let grid = grid();
    let a = seeded_uniform(N, N, 71);
    let b = seeded_uniform(N, N, 72);
    let dist = BlockDist::new(grid, N, N);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let opts = JobOptions::default()
        .with_deadline(Duration::from_millis(300))
        .with_faults(Arc::clone(plan));
    let per_rank = Runtime::try_run_opts(grid.size(), &Tracer::disabled(), &opts, |comm| {
        let (mine_a, mine_b) = (&at[comm.rank()], &bt[comm.rank()]);
        let r = if pipelined {
            summa_overlap(comm, grid, N, mine_a, mine_b, &cfg())
        } else {
            summa(comm, grid, N, mine_a, mine_b, &cfg())
        };
        (
            r.map(|_| ()).map_err(|e| e.kind()),
            comm.stats().faults_injected,
        )
    })
    .expect("faults surface as Err results, not rank panics");
    let kinds = per_rank
        .iter()
        .map(|(r, _)| r.as_ref().err().copied())
        .collect();
    let injected = per_rank.iter().map(|(_, n)| n).sum();
    (kinds, injected)
}

/// Replays `plan` through the *same* SUMMA source on the simulator with a
/// virtual-time deadline; faults counted by the [`SimWorld`] itself.
fn replay_sim(plan: &Arc<FaultPlan>, pipelined: bool) -> Replay {
    let grid = grid();
    let platform = Platform::bluegene_p_effective();
    let tile = PhantomMat {
        rows: N / grid.rows,
        cols: N / grid.cols,
    };
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(plan));
    let net = SimNet::new(grid.size(), platform.net);
    let out = SimWorld::run_with(net, platform.gamma, false, &opts, |comm| {
        let r = if pipelined {
            summa_overlap(comm, grid, N, &tile, &tile, &cfg())
        } else {
            summa(comm, grid, N, &tile, &tile, &cfg())
        };
        r.map(|_| ()).map_err(|e| e.kind())
    });
    let kinds = out
        .results
        .iter()
        .map(|r| r.as_ref().err().copied())
        .collect();
    (kinds, out.faults_injected)
}

fn assert_parity_on(plan: FaultPlan, pipelined: bool) -> Replay {
    let plan = Arc::new(plan);
    let threaded = replay_threaded(&plan, pipelined);
    let sim = replay_sim(&plan, pipelined);
    assert_eq!(
        threaded, sim,
        "threaded and simulated replays of the same fault plan disagree \
         (per-rank outcome kinds, injected-fault count)"
    );
    threaded
}

fn assert_parity(plan: FaultPlan) -> Replay {
    assert_parity_on(plan, false)
}

#[test]
fn dropped_collective_message_times_out_identically_on_both_substrates() {
    // Drop the first collective-class message 0 -> 1: the step-0 A-panel
    // broadcast of the {0, 1} row communicator. Rank 1 stalls, and the
    // stall propagates to every rank that transitively needs rank 1.
    let (kinds, injected) =
        assert_parity(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0));
    assert_eq!(injected, 1, "exactly the one planned drop");
    assert_eq!(
        kinds[1],
        Some(CommErrorKind::Timeout),
        "the rank whose broadcast was dropped must time out"
    );
    // By step 2 every other rank transitively depends on rank 1 (its
    // panel roots, or roots stalled on it), so the stall cascades: no
    // rank panics, every rank unwinds with a diagnosed timeout.
    assert!(
        kinds.iter().all(|k| *k == Some(CommErrorKind::Timeout)),
        "the stall must cascade as clean timeouts: {kinds:?}"
    );
}

#[test]
fn killed_rank_reports_shutdown_and_stalls_peers_identically() {
    // Rank 3 dies at its very first send. It must report `Shutdown` on
    // both substrates; its peers stall on it and convert to `Timeout`.
    let (kinds, injected) = assert_parity(FaultPlan::new().kill_rank(3, 0));
    assert_eq!(injected, 1, "the kill counts once");
    assert_eq!(kinds[3], Some(CommErrorKind::Shutdown));
    assert!(
        kinds[..3].contains(&Some(CommErrorKind::Timeout)),
        "at least one peer must stall on the dead rank: {kinds:?}"
    );
}

#[test]
fn delayed_and_duplicated_messages_leave_the_outcome_clean_on_both() {
    // Sub-deadline delay plus a duplicate ghost: the job completes on
    // both substrates, and both count the same two injected faults.
    let (kinds, injected) = assert_parity(
        FaultPlan::new()
            .delay_nth(Some(0), Some(1), TagClass::Collective, 0, 0.01)
            .duplicate_nth(Some(2), Some(3), TagClass::Collective, 0),
    );
    assert_eq!(injected, 2);
    assert!(
        kinds.iter().all(Option::is_none),
        "benign faults must not change the outcome: {kinds:?}"
    );
}

#[test]
fn clean_plan_is_a_no_op_on_both_substrates() {
    let (kinds, injected) = assert_parity(FaultPlan::new());
    assert_eq!(injected, 0);
    assert!(kinds.iter().all(Option::is_none));
}

// ---------------------------------------------------------------------
// The same plans replayed against the *pipelined* schedule: faults now
// land on in-flight `ibcast` traffic — the drop happens at the
// nonblocking start (the root's flat fan-out), but the victim only
// discovers it at the deferred wait, possibly a full pipeline stage
// after the panel "should" have arrived.
// ---------------------------------------------------------------------

#[test]
fn dropped_in_flight_ibcast_times_out_identically_on_both_substrates() {
    // Drop the step-0 A-panel ibcast 0 -> 1. The send vanishes at the
    // pipeline's prologue; rank 1 posts its gemm-side work and only
    // stalls when the deferred `ibcast_wait` finds the mailbox empty.
    let (kinds, injected) = assert_parity_on(
        FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0),
        true,
    );
    assert_eq!(injected, 1, "exactly the one planned drop");
    assert_eq!(
        kinds[1],
        Some(CommErrorKind::Timeout),
        "the rank whose in-flight broadcast was dropped must time out at the wait"
    );
    // Unlike the blocking schedule (where this same drop cascades to
    // every rank), the pipeline *contains* the stall: the roots posted
    // their fan-outs before ever blocking, so ranks 2 and 3 — which
    // never receive from the stalled rank 1 — run to completion. Only
    // rank 0, which needs rank 1's later A-panels (never started,
    // because rank 1 stalled before posting them), times out with it.
    assert_eq!(
        kinds,
        vec![
            Some(CommErrorKind::Timeout),
            Some(CommErrorKind::Timeout),
            None,
            None
        ],
        "the pipelined schedule must contain the stall to the dependent column"
    );
}

#[test]
fn killed_rank_under_pipelined_schedule_matches_across_substrates() {
    let (kinds, injected) = assert_parity_on(FaultPlan::new().kill_rank(3, 0), true);
    assert_eq!(injected, 1, "the kill counts once");
    assert_eq!(kinds[3], Some(CommErrorKind::Shutdown));
    assert!(
        kinds[..3].contains(&Some(CommErrorKind::Timeout)),
        "at least one peer must stall on the dead rank: {kinds:?}"
    );
}

#[test]
fn delayed_in_flight_ibcast_within_deadline_completes_cleanly_on_both() {
    // A sub-deadline delay on an in-flight ibcast is exactly what the
    // pipeline exists to absorb: the panel arrives late but before the
    // deferred wait's deadline, so the job completes clean on both
    // substrates with the same single injected fault.
    let (kinds, injected) = assert_parity_on(
        FaultPlan::new().delay_nth(Some(0), Some(1), TagClass::Collective, 0, 0.01),
        true,
    );
    assert_eq!(injected, 1);
    assert!(
        kinds.iter().all(Option::is_none),
        "a late panel inside the deadline must not change the outcome: {kinds:?}"
    );
}

// ---------------------------------------------------------------------
// The same machinery against the COSMA brick schedule: faults land on
// the reduce-scatter ring of the replication fiber, a communication
// pattern (sub-communicator ring, collective-band tags) none of the 2-D
// schedules exercise.
// ---------------------------------------------------------------------

/// A pure-replication decomposition: `p = 4` ranks as a `1·1·4` fiber,
/// so the only traffic is the reduce-scatter ring plus the gather onto
/// the `l = 0` layer — the fragment drop lands exactly there.
fn cosma_cfg() -> CosmaConfig {
    CosmaConfig {
        decomp: BrickDecomp::new(1, 1, 4),
        ..CosmaConfig::for_problem(4, N, N, N)
    }
}

/// Replays `plan` through COSMA on the threaded runtime.
fn replay_threaded_cosma(plan: &Arc<FaultPlan>) -> Replay {
    let ccfg = cosma_cfg();
    let d = ccfg.decomp;
    let p = 4;
    let at = d.a_distribution(N, N, p).scatter(&seeded_uniform(N, N, 81));
    let bt = d.b_distribution(N, N, p).scatter(&seeded_uniform(N, N, 82));
    let opts = JobOptions::default()
        .with_deadline(Duration::from_millis(300))
        .with_faults(Arc::clone(plan));
    let per_rank = Runtime::try_run_opts(p, &Tracer::disabled(), &opts, |comm| {
        let r = cosma(comm, N, N, N, &at[comm.rank()], &bt[comm.rank()], &ccfg);
        (
            r.map(|_| ()).map_err(|e| e.kind()),
            comm.stats().faults_injected,
        )
    })
    .expect("faults surface as Err results, not rank panics");
    let kinds = per_rank
        .iter()
        .map(|(r, _)| r.as_ref().err().copied())
        .collect();
    let injected = per_rank.iter().map(|(_, n)| n).sum();
    (kinds, injected)
}

/// Replays `plan` through the *same* COSMA source on the simulator.
fn replay_sim_cosma(plan: &Arc<FaultPlan>) -> Replay {
    let ccfg = cosma_cfg();
    let d = ccfg.decomp;
    let p = 4;
    let pm = PhantomMat { rows: N, cols: N };
    let at = d.a_distribution(N, N, p).scatter(&pm);
    let bt = d.b_distribution(N, N, p).scatter(&pm);
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(plan));
    let net = SimNet::new(p, Platform::bluegene_p_effective().net);
    let out = SimWorld::run_with(
        net,
        Platform::bluegene_p_effective().gamma,
        false,
        &opts,
        |comm| {
            cosma(comm, N, N, N, &at[comm.rank()], &bt[comm.rank()], &ccfg)
                .map(|_| ())
                .map_err(|e| e.kind())
        },
    );
    let kinds = out
        .results
        .iter()
        .map(|r| r.as_ref().err().copied())
        .collect();
    (kinds, out.faults_injected)
}

#[test]
fn dropped_reduce_scatter_fragment_times_out_identically_on_both_substrates() {
    // Drop rank 1's first collective-class send — its step-0 fragment to
    // ring successor 2. Rank 2 stalls at the matching recv; the stall
    // walks *backwards* around the ring (3 waits on 2's next fragment,
    // 0 waits on 3's), while rank 1 itself finishes clean: its sends are
    // fire-and-forget and its own recv side (rank 0's fragments) was
    // fully posted before rank 0 stalled. Identical on both substrates.
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(1), Some(2), TagClass::Collective, 0));
    let threaded = replay_threaded_cosma(&plan);
    let sim = replay_sim_cosma(&plan);
    assert_eq!(
        threaded, sim,
        "threaded and simulated replays of the cosma fault plan disagree"
    );
    let (kinds, injected) = threaded;
    assert_eq!(injected, 1, "exactly the one planned drop");
    assert_eq!(
        kinds,
        vec![
            Some(CommErrorKind::Timeout),
            None,
            Some(CommErrorKind::Timeout),
            Some(CommErrorKind::Timeout),
        ],
        "the stall must walk the ring's dependents and spare the dropper"
    );
}

/// The cosma diagnostic: the timeout's edge must name the ring
/// predecessor whose fragment vanished and carry a collective-band tag.
#[test]
fn dropped_reduce_scatter_timeout_names_the_ring_edge() {
    use hsumma_repro::trace::{CommError, COLLECTIVE_TAG_FLOOR};

    let ccfg = cosma_cfg();
    let d = ccfg.decomp;
    let p = 4;
    let pm = PhantomMat { rows: N, cols: N };
    let at = d.a_distribution(N, N, p).scatter(&pm);
    let bt = d.b_distribution(N, N, p).scatter(&pm);
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(1), Some(2), TagClass::Collective, 0));
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(&plan));
    let net = SimNet::new(p, Platform::bluegene_p_effective().net);
    let out = SimWorld::run_with(
        net,
        Platform::bluegene_p_effective().gamma,
        false,
        &opts,
        |comm| cosma(comm, N, N, N, &at[comm.rank()], &bt[comm.rank()], &ccfg).map(|_| ()),
    );

    let err = out.results[2]
        .as_ref()
        .expect_err("rank 2's dropped fragment must surface as an error");
    match err {
        CommError::Timeout { edge, .. } => {
            assert_eq!(edge.rank, 2, "the error is reported by the stalled rank");
            assert_eq!(edge.peer, 1, "the edge names the ring predecessor");
            assert!(
                edge.tag >= COLLECTIVE_TAG_FLOOR,
                "the stalled tag must be collective-class, got {:#x}",
                edge.tag
            );
        }
        other => panic!("expected Timeout naming the stalled edge, got: {other}"),
    }
}

/// The diagnostic itself (sim substrate, where the full error is easy to
/// capture): a dropped in-flight ibcast must surface as
/// [`CommError::Timeout`] whose edge names the expected sender and a
/// collective-class tag — "which broadcast stalled", not just "a
/// deadline passed".
#[test]
fn dropped_ibcast_timeout_names_the_stalled_edge() {
    use hsumma_repro::trace::{CommError, COLLECTIVE_TAG_FLOOR};

    let grid = grid();
    let platform = Platform::bluegene_p_effective();
    let tile = PhantomMat {
        rows: N / grid.rows,
        cols: N / grid.cols,
    };
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0));
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(&plan));
    let net = SimNet::new(grid.size(), platform.net);
    let out = SimWorld::run_with(net, platform.gamma, false, &opts, |comm| {
        summa_overlap(comm, grid, N, &tile, &tile, &cfg()).map(|_| ())
    });

    let err = out.results[1]
        .as_ref()
        .expect_err("rank 1's dropped broadcast must surface as an error");
    match err {
        CommError::Timeout { edge, .. } => {
            assert_eq!(edge.rank, 1, "the error is reported by the stalled rank");
            assert_eq!(edge.peer, 0, "the edge names the expected sender");
            assert!(
                edge.tag >= COLLECTIVE_TAG_FLOOR,
                "the stalled tag must be collective-class, got {:#x}",
                edge.tag
            );
        }
        other => panic!("expected Timeout naming the stalled edge, got: {other}"),
    }
    // And the rendered message carries the edge for humans reading logs.
    let msg = err.to_string();
    assert!(
        msg.contains("rank 1") && msg.contains("rank 0"),
        "display must name both endpoints: {msg}"
    );
}
