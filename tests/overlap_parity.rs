//! Parity checks for the pipelined (nonblocking-collective) HSUMMA.
//!
//! The double-buffered pivot pipeline reorders *when* panels move, but
//! it must not change *what* moves or *what* is computed:
//!
//! 1. the threaded runtime and the simulator must emit identical
//!    per-rank `(src, dst, bytes)` send multisets for the pipelined
//!    schedule (the same one-schedule-two-substrates identity the
//!    blocking algorithms satisfy);
//! 2. the pipelined schedule must move exactly the wire bytes of the
//!    blocking reference with flat broadcasts (`ibcast_shared`'s
//!    fan-out is flat by design — a relay inside a nonblocking start
//!    would be a hidden blocking receive);
//! 3. the product must be bit-identical to the blocking reference —
//!    same gemm accumulation order, so not just close: equal.

use hsumma_repro::core::{
    hsumma, hsumma_overlap, hsumma_overlap_lookahead, HsummaConfig, PhantomMat,
};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_repro::netsim::{Platform, SimNet};
use hsumma_repro::runtime::{BcastAlgorithm, Comm, Runtime};
use hsumma_repro::trace::{Trace, Tracer};

/// Runs the threaded runtime with a tracer attached and returns the
/// trace (split-protocol control messages carry 0 payload bytes, so the
/// payload multisets below are multiply-phase traffic only).
fn real_trace(p: usize, run: impl Fn(&Comm) + Send + Sync) -> Trace {
    let tracer = Tracer::new(p);
    Runtime::run_traced(p, &tracer, |comm| run(comm));
    tracer.collect()
}

/// Runs the *same generic algorithm* over simulated clocks with phantom
/// payloads and a tracer attached, returning the trace.
fn sim_trace(p: usize, f: impl Fn(&hsumma_repro::netsim::spmd::SimComm) + Sync) -> Trace {
    let tracer = Tracer::new(p);
    let mut net = SimNet::new(p, Platform::grid5000().net);
    net.attach_tracer(&tracer);
    let _ = hsumma_repro::netsim::spmd::SimWorld::run(net, 0.0, false, f);
    tracer.collect()
}

/// A pipelined-HSUMMA config: flat broadcast fields are what the
/// blocking reference must use to match the nonblocking fan-out.
fn cfg(groups: GridShape, bb: usize, bs: usize) -> HsummaConfig {
    HsummaConfig {
        outer_block: bb,
        inner_block: bs,
        outer_bcast: BcastAlgorithm::Flat,
        inner_bcast: BcastAlgorithm::Flat,
        kernel: GemmKernel::Blocked,
        groups,
    }
}

fn scattered(grid: GridShape, n: usize, seed: u64) -> Vec<Matrix> {
    BlockDist::new(grid, n, n).scatter(&seeded_uniform(n, n, seed))
}

/// Substrate parity for the pipelined schedule itself: real threads
/// moving `Arc<Matrix>` panels and the simulator moving `PhantomMat`
/// stand-ins must send the same per-rank `(src, dst, bytes)` multiset.
#[test]
fn real_and_sim_pipelined_hsumma_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let c = cfg(groups, bb, bs);
    let at = scattered(grid, n, 1);
    let bt = scattered(grid, n, 2);
    let (th, tw) = (n / grid.rows, n / grid.cols);

    let real = real_trace(grid.size(), |comm| {
        let _ = hsumma_overlap(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: th, cols: tw };
        let _ = hsumma_overlap(comm, grid, n, &t, &t, &c);
    });
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "pipelined HSUMMA: real and simulated schedules moved different messages"
    );
}

/// Same identity on a config with a deeper inner pipeline (4 inner
/// steps per outer step) and asymmetric grouping, where the adaptive
/// cross-boundary handoff takes both of its branches.
#[test]
fn real_and_sim_pipelined_hsumma_parity_deep_inner_pipeline() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(4, 1);
    let (n, bb, bs) = (32usize, 8usize, 2usize);
    let c = cfg(groups, bb, bs);
    let at = scattered(grid, n, 3);
    let bt = scattered(grid, n, 4);
    let (th, tw) = (n / grid.rows, n / grid.cols);

    let real = real_trace(grid.size(), |comm| {
        let _ = hsumma_overlap(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: th, cols: tw };
        let _ = hsumma_overlap(comm, grid, n, &t, &t, &c);
    });
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "pipelined HSUMMA (4x1 groups, deep inner): substrates moved different messages"
    );
}

/// Wire-multiset invariance across schedules: pipelining changes when
/// panels move, never what moves. Against the blocking reference with
/// flat broadcasts on both levels, every rank's payload send multiset
/// must be identical.
#[test]
fn pipelined_hsumma_moves_the_same_wire_bytes_as_blocking() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let c = cfg(groups, bb, bs);
    let at = scattered(grid, n, 5);
    let bt = scattered(grid, n, 6);

    let pipelined = real_trace(grid.size(), |comm| {
        let _ = hsumma_overlap(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c);
    });
    let blocking = real_trace(grid.size(), |comm| {
        let _ = hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &c,
        );
    });
    assert_eq!(
        pipelined.per_rank_send_multisets(),
        blocking.per_rank_send_multisets(),
        "pipelining must reorder messages, not change them"
    );
}

/// The lookahead variant (one-step pipeline) moves the same wire bytes
/// too — all three schedules are permutations of one message multiset.
#[test]
fn lookahead_hsumma_moves_the_same_wire_bytes_as_pipelined() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let c = cfg(groups, bb, bs);
    let at = scattered(grid, n, 7);
    let bt = scattered(grid, n, 8);

    let pipelined = real_trace(grid.size(), |comm| {
        let _ = hsumma_overlap(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c);
    });
    let lookahead = real_trace(grid.size(), |comm| {
        let _ = hsumma_overlap_lookahead(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c);
    });
    assert_eq!(
        pipelined.per_rank_send_multisets(),
        lookahead.per_rank_send_multisets(),
        "lookahead and double-buffered schedules must move the same messages"
    );
}

/// Bit-identity end to end on the threaded runtime: the pipelined
/// product equals the blocking reference exactly (same accumulation
/// order per rank), tile by tile.
#[test]
fn pipelined_hsumma_is_bit_identical_to_blocking_reference() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let c = cfg(groups, bb, bs);
    let at = scattered(grid, n, 9);
    let bt = scattered(grid, n, 10);

    let pipelined: Vec<Matrix> = Runtime::run(grid.size(), |comm| {
        hsumma_overlap(comm, grid, n, &at[comm.rank()], &bt[comm.rank()], &c).unwrap()
    });
    let blocking: Vec<Matrix> = Runtime::run(grid.size(), |comm| {
        hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &c,
        )
        .unwrap()
    });
    assert_eq!(
        pipelined, blocking,
        "pipelined HSUMMA must reproduce the blocking product bit for bit"
    );
}
