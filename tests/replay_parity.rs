//! Golden parity between the two simulation engines, in the style of
//! `sim_golden_parity.rs`: for every dense schedule, the record-and-
//! replay engine (`RecordComm` → `EventLoopSim`) must produce
//!
//! 1. a [`SimReport`] **bit-identical** (`f64::to_bits`) to the
//!    thread-per-rank `SimComm` run, and
//! 2. identical per-rank `(src, dst, bytes)` send multisets through the
//!    same tracer hooks,
//!
//! at p ≤ 256, faults and deadlines included. This is the load-bearing
//! anchor of the schedule-as-data refactor: it is what licenses running
//! the planner's G sweeps and the p = 2²⁰ Fig. 10 validation on the
//! threadless engine and attributing the numbers to the same simulator
//! the rest of the test suite pins.

use hsumma_repro::core::simdrive::{self as sd, cosma_program, replay_on, SimEngine};
use hsumma_repro::core::{BrickDecomp, CosmaConfig, SummaConfig, TwoDotFiveConfig};
use hsumma_repro::matrix::GridShape;
use hsumma_repro::netsim::{
    EventLoopSim, NoiseModel, Platform, RecordedProgram, SimBcast, SimNet, SimReport,
    SimRunOptions, SimWorld,
};
use hsumma_repro::trace::{
    CommError, CommErrorKind, FaultPlan, TagClass, Tracer, COLLECTIVE_TAG_FLOOR,
};
use std::sync::Arc;

fn platform() -> Platform {
    Platform::grid5000()
}

fn bits(r: &SimReport) -> (u64, u64, u64, u64, u64) {
    (
        r.total_time.to_bits(),
        r.comm_time.to_bits(),
        r.comp_time.to_bits(),
        r.msgs,
        r.bytes,
    )
}

type Multisets = Vec<Vec<(usize, usize, u64)>>;

/// Runs `f` over a tracer-attached fresh network and returns the report
/// plus the per-rank send multisets (asserting the tracer kept every
/// event — a dropped event would make the comparison vacuous).
fn traced(
    p: usize,
    f: impl FnOnce(&mut SimNet) -> SimReport,
) -> ((u64, u64, u64, u64, u64), Multisets) {
    let tracer = Tracer::with_capacity(p, 1 << 16);
    let mut net = SimNet::new(p, platform().net);
    net.attach_tracer(&tracer);
    let report = f(&mut net);
    let trace = tracer.collect();
    assert_eq!(trace.dropped, 0, "tracer overflow");
    (bits(&report), trace.per_rank_send_multisets())
}

/// Asserts the threaded run and the replay of `prog` agree bit-for-bit
/// on the report and exactly on every rank's send multiset.
fn assert_engine_parity(
    label: &str,
    p: usize,
    prog: &RecordedProgram,
    threaded: impl FnOnce(&mut SimNet) -> SimReport,
) {
    let gamma = platform().gamma;
    let (t_report, t_sets) = traced(p, threaded);
    let (r_report, r_sets) = traced(p, |net| replay_on(net, gamma, prog));
    assert_eq!(t_report, r_report, "{label}: reports diverged");
    assert_eq!(t_sets, r_sets, "{label}: per-rank send multisets diverged");
}

#[test]
fn summa_replay_is_bit_identical() {
    let grid = GridShape::new(8, 8);
    let (n, b) = (128, 16);
    for step_sync in [false, true] {
        let prog = sd::record_summa(grid, n, b, SimBcast::Binomial, step_sync);
        assert_engine_parity("summa", grid.size(), &prog, |net| {
            sd::sim_summa_on(
                net,
                platform().gamma,
                grid,
                n,
                b,
                SimBcast::Binomial,
                step_sync,
            )
        });
    }
}

#[test]
fn summa_replay_matches_at_p_256() {
    let grid = GridShape::new(16, 16);
    let (n, b) = (256, 16);
    let prog = sd::record_summa(grid, n, b, SimBcast::ScatterAllgather, false);
    assert_engine_parity("summa-256", grid.size(), &prog, |net| {
        sd::sim_summa_on(
            net,
            platform().gamma,
            grid,
            n,
            b,
            SimBcast::ScatterAllgather,
            false,
        )
    });
}

#[test]
fn hsumma_replay_is_bit_identical() {
    let grid = GridShape::new(8, 8);
    let groups = GridShape::new(4, 2);
    let (n, ob, ib) = (128, 16, 16);
    for (obc, ibc) in [
        (SimBcast::Binomial, SimBcast::Binomial),
        (SimBcast::Pipelined { segments: 3 }, SimBcast::Ring),
    ] {
        let prog = sd::record_hsumma(grid, groups, n, ob, ib, obc, ibc, false);
        assert_engine_parity("hsumma", grid.size(), &prog, |net| {
            sd::sim_hsumma_on(
                net,
                platform().gamma,
                grid,
                groups,
                n,
                ob,
                ib,
                obc,
                ibc,
                false,
            )
        });
    }
}

#[test]
fn cannon_replay_is_bit_identical() {
    let (q, n) = (8, 64);
    let prog = sd::record_cannon(q, n, false);
    assert_engine_parity("cannon", q * q, &prog, |net| {
        sd::sim_cannon_on(net, platform().gamma, q, n, false)
    });
}

#[test]
fn fox_replay_is_bit_identical() {
    let (q, n) = (8, 64);
    let prog = sd::record_fox(q, n, SimBcast::Binomial, false);
    assert_engine_parity("fox", q * q, &prog, |net| {
        sd::sim_fox_on(net, platform().gamma, q, n, SimBcast::Binomial, false)
    });
}

#[test]
fn overlap_replay_is_bit_identical() {
    // summa_overlap's two-slot pipeline starts and waits its broadcasts
    // through the default (timing-independent) ibcast path, so it
    // records; its message schedule includes in-flight collective-band
    // traffic none of the blocking schedules exercise.
    let grid = GridShape::new(4, 4);
    let (n, b) = (64, 8);
    let prog = sd::record_overlap(grid, n, b, SimBcast::Flat);
    assert_engine_parity("overlap", grid.size(), &prog, |net| {
        sd::sim_overlap_on(net, platform().gamma, grid, n, b, SimBcast::Flat)
    });
}

#[test]
fn twodotfive_replay_is_bit_identical() {
    let cfg = TwoDotFiveConfig {
        q: 4,
        c: 4,
        summa: SummaConfig {
            block: 8,
            ..Default::default()
        },
    };
    let n = 64;
    let prog = sd::record_twodotfive(n, &cfg);
    assert_engine_parity("2.5d", cfg.q * cfg.q * cfg.c, &prog, |net| {
        sd::sim_twodotfive_on(net, platform().gamma, n, &cfg)
    });
}

#[test]
fn cosma_replay_is_bit_identical() {
    let (p, m, n, k) = (64, 256, 256, 256);
    let cfg = CosmaConfig::for_problem(p, m, n, k);
    let prog = sd::record_cosma(p, m, n, k, &cfg);
    assert_engine_parity("cosma", p, &prog, |net| {
        sd::sim_cosma_on(net, platform().gamma, m, n, k, &cfg)
    });
}

#[test]
fn cosma_replay_matches_on_awkward_shapes_with_idle_ranks() {
    // A prime rank count over non-dividing extents: the decomposition
    // uses fewer ranks than the world, so the recording must capture the
    // idle ranks' singleton splits for the rendezvous to line up.
    let (p, m, n, k) = (13, 96, 80, 72);
    let cfg = CosmaConfig::for_problem(p, m, n, k);
    let prog = sd::record_cosma(p, m, n, k, &cfg);
    assert_engine_parity("cosma-13", p, &prog, |net| {
        sd::sim_cosma_on(net, platform().gamma, m, n, k, &cfg)
    });
}

#[test]
fn replay_parity_holds_under_noise() {
    // Noise draws are keyed by (sender, per-sender sequence), both of
    // which the recording preserves — jittered runs must still match to
    // the bit.
    let grid = GridShape::new(4, 4);
    let (n, b) = (64, 8);
    let gamma = platform().gamma;
    let mut tnet = SimNet::new(grid.size(), platform().net);
    tnet.set_noise(NoiseModel::new(7, 0.25));
    let threaded = sd::sim_summa_on(&mut tnet, gamma, grid, n, b, SimBcast::Binomial, false);
    let mut rnet = SimNet::new(grid.size(), platform().net);
    rnet.set_noise(NoiseModel::new(7, 0.25));
    let prog = sd::record_summa(grid, n, b, SimBcast::Binomial, false);
    let replayed = replay_on(&mut rnet, gamma, &prog);
    assert_eq!(bits(&threaded), bits(&replayed));
}

#[test]
fn engine_selector_agrees_with_direct_calls() {
    let grid = GridShape::new(4, 4);
    let plat = platform();
    let t = sd::sim_summa_engine(SimEngine::Threads, &plat, grid, 64, 8, SimBcast::Binomial);
    let r = sd::sim_summa_engine(SimEngine::Replay, &plat, grid, 64, 8, SimBcast::Binomial);
    assert_eq!(bits(&t), bits(&r));
}

// ---------------------------------------------------------------------
// Faults and deadlines: the same FaultPlan driven through both engines
// must produce the same per-rank outcomes, the same stalled edge, the
// same injected-fault count, and bit-identical reports.
// ---------------------------------------------------------------------

/// A pure-replication cosma fiber (p = 4 as 1·1·4 bricks): the only
/// traffic is the reduce-scatter ring plus the gather, so the dropped
/// collective fragment lands on a ring edge — the same scenario
/// `fault_parity.rs` pins between real threads and the simulator.
fn fiber_cfg() -> CosmaConfig {
    CosmaConfig {
        decomp: BrickDecomp::new(1, 1, 4),
        ..CosmaConfig::for_problem(4, 8, 8, 8)
    }
}

fn fault_opts(plan: &Arc<FaultPlan>) -> SimRunOptions {
    SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(plan))
}

#[test]
fn dropped_collective_fragment_names_the_same_edge_on_both_engines() {
    let cfg = fiber_cfg();
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(1), Some(2), TagClass::Collective, 0));
    let plat = Platform::bluegene_p_effective();

    // Thread-per-rank engine.
    let net = SimNet::new(4, plat.net);
    let out = SimWorld::run_with(net, plat.gamma, false, &fault_opts(&plan), |comm| {
        cosma_program(comm, 8, 8, 8, &cfg)
    });
    let threaded_kinds: Vec<Option<CommErrorKind>> = out
        .results
        .iter()
        .map(|r| r.as_ref().err().map(CommError::kind))
        .collect();

    // Record clean, replay under the same options.
    let prog = sd::record_cosma(4, 8, 8, 8, &cfg);
    let rnet = SimNet::new(4, plat.net);
    let rout = EventLoopSim::new(rnet, plat.gamma).run(&prog, &fault_opts(&plan));
    let replay_kinds: Vec<Option<CommErrorKind>> = rout
        .errors
        .iter()
        .map(|e| e.as_ref().map(CommError::kind))
        .collect();

    assert_eq!(
        threaded_kinds, replay_kinds,
        "per-rank outcome kinds diverged"
    );
    assert_eq!(
        threaded_kinds,
        vec![
            Some(CommErrorKind::Timeout),
            None,
            Some(CommErrorKind::Timeout),
            Some(CommErrorKind::Timeout),
        ],
        "the stall must walk the ring's dependents and spare the dropper"
    );
    assert_eq!(out.faults_injected, 1);
    assert_eq!(rout.faults_injected, 1);
    assert_eq!(
        bits(&out.net.report()),
        bits(&rout.net.report()),
        "faulted reports diverged"
    );

    // Both engines must name the *same* stalled edge: rank 2 waiting on
    // its ring predecessor 1, on a collective-band tag. (Context ids are
    // scheduling-dependent on the threaded engine and deliberately not
    // compared.)
    let edge_of = |e: &CommError| match e {
        CommError::Timeout { edge, op } => (edge.rank, edge.peer, edge.tag, *op),
        other => panic!("expected Timeout, got {other:?}"),
    };
    let t_err = out.results[2].as_ref().expect_err("rank 2 stalls");
    let r_err = rout.errors[2].as_ref().expect("rank 2 stalls");
    let (t_rank, t_peer, t_tag, t_op) = edge_of(t_err);
    let (r_rank, r_peer, r_tag, r_op) = edge_of(r_err);
    assert_eq!((t_rank, t_peer, t_op), (2, 1, "recv"));
    assert_eq!((r_rank, r_peer, r_op), (2, 1, "recv"));
    assert_eq!(t_tag, r_tag, "the stalled wire tag must agree");
    assert!(
        t_tag >= COLLECTIVE_TAG_FLOOR,
        "the stalled tag must be collective-class, got {t_tag:#x}"
    );
}

#[test]
fn killed_rank_parity_between_engines() {
    let cfg = fiber_cfg();
    let plan = Arc::new(FaultPlan::new().kill_rank(1, 0));
    let plat = Platform::bluegene_p_effective();

    let net = SimNet::new(4, plat.net);
    let out = SimWorld::run_with(net, plat.gamma, false, &fault_opts(&plan), |comm| {
        cosma_program(comm, 8, 8, 8, &cfg)
    });
    let prog = sd::record_cosma(4, 8, 8, 8, &cfg);
    let rout =
        EventLoopSim::new(SimNet::new(4, plat.net), plat.gamma).run(&prog, &fault_opts(&plan));

    let t_kinds: Vec<_> = out
        .results
        .iter()
        .map(|r| r.as_ref().err().map(CommError::kind))
        .collect();
    let r_kinds: Vec<_> = rout
        .errors
        .iter()
        .map(|e| e.as_ref().map(CommError::kind))
        .collect();
    assert_eq!(t_kinds, r_kinds);
    assert_eq!(t_kinds[1], Some(CommErrorKind::Shutdown));
    assert_eq!(out.faults_injected, rout.faults_injected);
    assert_eq!(bits(&out.net.report()), bits(&rout.net.report()));
}
