//! Substrate and model parity for the COSMA brick schedule.
//!
//! The schedule (fiber splits, sliced brick broadcasts, reduce-scatter
//! ring, gather) is one generic function over `Communicator`, so:
//!
//! 1. the threaded runtime and the simulator must emit identical
//!    per-rank `(src, dst, bytes)` send multisets — for pure brick
//!    layouts *and* through the checkerboard↔brick redistribution path
//!    of `run_planned_gemm`;
//! 2. the simulator's total wire bytes must agree with the analytic
//!    [`hsumma_model::cosma_volume`] — exactly when the decomposition
//!    divides every extent, and within a fraction of a percent on
//!    awkward shapes (the only inexact term is the gather of uneven
//!    reduce-scatter fragments).

use hsumma_repro::core::{
    cosma, run_planned_gemm, sim_cosma, BrickDecomp, CosmaConfig, Distribution, MatLike,
    PhantomMat, PlannedAlgo,
};
use hsumma_repro::matrix::{seeded_uniform, GridShape, Matrix};
use hsumma_repro::model::{cosma_volume, BrickShape};
use hsumma_repro::netsim::{Platform, SimNet};
use hsumma_repro::runtime::{Comm, Runtime};
use hsumma_repro::trace::{Trace, Tracer};

fn real_trace(p: usize, run: impl Fn(&Comm) + Send + Sync) -> Trace {
    let tracer = Tracer::new(p);
    Runtime::run_traced(p, &tracer, |comm| run(comm));
    tracer.collect()
}

fn sim_trace(p: usize, f: impl Fn(&hsumma_repro::netsim::spmd::SimComm) + Sync) -> Trace {
    let tracer = Tracer::new(p);
    let mut net = SimNet::new(p, Platform::grid5000().net);
    net.attach_tracer(&tracer);
    let _ = hsumma_repro::netsim::spmd::SimWorld::run(net, 0.0, false, f);
    tracer.collect()
}

/// Runs cosma on both substrates over the same brick layouts (dealt by
/// the same `Distribution` descriptors — real matrices on one side,
/// shape-only phantoms on the other) and asserts multiset equality.
fn assert_brick_parity(p: usize, m: usize, n: usize, k: usize, cfg: CosmaConfig) {
    let d = cfg.decomp;
    let at = d.a_distribution(m, k, p).scatter(&seeded_uniform(m, k, 41));
    let bt = d.b_distribution(k, n, p).scatter(&seeded_uniform(k, n, 42));
    let pat = d.a_distribution(m, k, p).scatter(&PhantomMat::zeros(m, k));
    let pbt = d.b_distribution(k, n, p).scatter(&PhantomMat::zeros(k, n));

    let real = real_trace(p, |comm| {
        let _ = cosma(comm, m, n, k, &at[comm.rank()], &bt[comm.rank()], &cfg);
    });
    let sim = sim_trace(p, |comm| {
        let _ = cosma(comm, m, n, k, &pat[comm.rank()], &pbt[comm.rank()], &cfg);
    });
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "cosma {:?} p={p} ({m}x{k})·({k}x{n}): substrates moved different messages",
        cfg.decomp
    );
}

#[test]
fn real_and_sim_cosma_emit_identical_payload_multisets() {
    // Replicated decomposition on uneven extents: all three fiber kinds
    // and the reduce-scatter ring are live.
    let cfg = CosmaConfig {
        decomp: BrickDecomp::new(2, 2, 2),
        steps: 2,
        ..CosmaConfig::for_problem(8, 12, 10, 14)
    };
    assert_brick_parity(8, 12, 10, 14, cfg);
}

#[test]
fn cosma_parity_with_idle_ranks_on_awkward_p() {
    // p = 6 but only 2·2·1 = 4 active ranks: the idle remainder must
    // take the same (empty) schedule on both substrates.
    let cfg = CosmaConfig {
        decomp: BrickDecomp::new(2, 2, 1),
        ..CosmaConfig::for_problem(6, 9, 7, 11)
    };
    assert_brick_parity(6, 9, 7, 11, cfg);
}

#[test]
fn cosma_parity_through_the_redistribution_path() {
    // The full planner dispatch: checkerboard tiles in, redistribute to
    // bricks, run, redistribute back. Messages include the REDIST band.
    let grid = GridShape::new(2, 2);
    let (m, n, k) = (7usize, 5usize, 9usize);
    let p = grid.size();
    let plan = PlannedAlgo::Cosma(CosmaConfig::for_problem(p, m, n, k));
    let at = Distribution::grid2d(grid, m, k).scatter(&seeded_uniform(m, k, 51));
    let bt = Distribution::grid2d(grid, k, n).scatter(&seeded_uniform(k, n, 52));
    let pat = Distribution::grid2d(grid, m, k).scatter(&PhantomMat::zeros(m, k));
    let pbt = Distribution::grid2d(grid, k, n).scatter(&PhantomMat::zeros(k, n));

    let real = real_trace(p, |comm| {
        let _ = run_planned_gemm(
            comm,
            grid,
            m,
            n,
            k,
            &at[comm.rank()],
            &bt[comm.rank()],
            &plan,
        );
    });
    let sim = sim_trace(p, |comm| {
        let _ = run_planned_gemm(
            comm,
            grid,
            m,
            n,
            k,
            &pat[comm.rank()],
            &pbt[comm.rank()],
            &plan,
        );
    });
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "planned cosma with redistribution: substrates moved different messages"
    );
}

#[test]
fn sim_wire_bytes_match_the_analytic_volume_exactly_when_divisible() {
    // 64 ranks as a 4×4×4 brick cube over a 64³ problem: every brick
    // and every reduce-scatter fragment divides evenly, so the closed
    // form is exact to the byte.
    let (p, m, n, k) = (64usize, 64usize, 64usize, 64usize);
    let d = BrickDecomp::new(4, 4, 4);
    let cfg = CosmaConfig {
        decomp: d,
        ..CosmaConfig::for_problem(p, m, n, k)
    };
    let report = sim_cosma(&Platform::grid5000(), p, m, n, k, &cfg);
    let predicted = cosma_volume(
        BrickShape {
            a: d.a,
            b: d.b,
            c: d.c,
        },
        m as f64,
        n as f64,
        k as f64,
    );
    assert_eq!(
        report.bytes as f64, predicted,
        "sim moved {} bytes, model predicts {predicted}",
        report.bytes
    );
}

#[test]
fn sim_wire_bytes_track_the_analytic_volume_on_awkward_shapes() {
    // Prime p, prime-ish extents: bricks and fragments are uneven. The
    // broadcast and reduce-scatter terms telescope exactly over any
    // exact-cover dealing; only the gather term (root's owned fragment)
    // deviates, bounded well under a percent at these sizes.
    for (p, m, n, k) in [(13usize, 37usize, 29usize, 41usize), (12, 33, 45, 27)] {
        let cfg = CosmaConfig::for_problem(p, m, n, k);
        let d = cfg.decomp;
        let report = sim_cosma(&Platform::grid5000(), p, m, n, k, &cfg);
        let predicted = cosma_volume(
            BrickShape {
                a: d.a,
                b: d.b,
                c: d.c,
            },
            m as f64,
            n as f64,
            k as f64,
        );
        let rel = (report.bytes as f64 - predicted).abs() / predicted.max(1.0);
        assert!(
            rel < 0.02,
            "p={p} ({m}x{k})·({k}x{n}) decomp {d:?}: sim {} vs model {predicted} (rel {rel})",
            report.bytes
        );
    }
}

#[test]
fn cosma_product_is_correct_through_both_substrate_drivers() {
    // The real run must also be *numerically* right on uneven bricks:
    // gather the l = 0 layer's C bricks and compare with the serial
    // reference.
    let (p, m, n, k) = (8usize, 12usize, 10usize, 14usize);
    let cfg = CosmaConfig {
        decomp: BrickDecomp::new(2, 2, 2),
        ..CosmaConfig::for_problem(p, m, n, k)
    };
    let d = cfg.decomp;
    let a = seeded_uniform(m, k, 61);
    let b = seeded_uniform(k, n, 62);
    let at = d.a_distribution(m, k, p).scatter(&a);
    let bt = d.b_distribution(k, n, p).scatter(&b);
    let outs: Vec<Option<Matrix>> = Runtime::run(p, |comm| {
        cosma(comm, m, n, k, &at[comm.rank()], &bt[comm.rank()], &cfg).unwrap()
    });
    let tiles: Vec<Matrix> = outs
        .into_iter()
        .map(|o| o.unwrap_or_else(|| Matrix::zeros(0, 0)))
        .collect();
    let got = d.c_distribution(m, n, p).gather(&tiles);
    let mut want = Matrix::zeros(m, n);
    hsumma_repro::matrix::gemm(hsumma_repro::matrix::GemmKernel::Naive, &a, &b, &mut want);
    assert!(
        got.approx_eq(&want, 1e-9),
        "cosma product wrong: err {}",
        got.max_abs_diff(&want)
    );
}
