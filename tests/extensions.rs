//! Integration tests for the future-work extensions (§VI) through the
//! public façade: block-cyclic SUMMA, overlap variants, 2.5D, and the
//! hierarchical block LU.

use hsumma_repro::core::cyclic::summa_cyclic;
use hsumma_repro::core::lu::{block_lu, LuConfig};
use hsumma_repro::core::overlap::{hsumma_overlap, summa_overlap};
use hsumma_repro::core::testutil::{distributed_product, reference_product};
use hsumma_repro::core::twodotfive::{coords_3d, twodotfive, TwoDotFiveConfig};
use hsumma_repro::core::{HsummaConfig, SummaConfig};
use hsumma_repro::matrix::factor::{seeded_diag_dominant, unpack_lower_unit, unpack_upper};
use hsumma_repro::matrix::{
    gemm, seeded_uniform, BlockCyclicDist, BlockDist, GemmKernel, GridShape, Matrix,
};
use hsumma_repro::runtime::Runtime;

#[test]
fn cyclic_summa_matches_serial_through_facade() {
    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let want = reference_product(&a, &b);
    let cfg = SummaConfig {
        block: 2,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    let dist = BlockCyclicDist::new(grid, n, n, 2);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let ct = Runtime::run(grid.size(), |comm| {
        summa_cyclic(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        )
        .unwrap()
    });
    assert!(dist.gather(&ct).approx_eq(&want, 1e-9));
}

#[test]
fn overlap_variants_match_their_blocking_counterparts() {
    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_uniform(n, n, 3);
    let b = seeded_uniform(n, n, 4);
    let want = reference_product(&a, &b);

    let scfg = SummaConfig {
        block: 4,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        summa_overlap(comm, grid, n, &at, &bt, &scfg).unwrap()
    });
    assert!(got.approx_eq(&want, 1e-9));

    let hcfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
    };
    let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
        hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
    });
    assert!(got.approx_eq(&want, 1e-9));
}

#[test]
fn twodotfive_matches_serial_through_facade() {
    let (q, c, n) = (2usize, 2usize, 16usize);
    let grid = GridShape::new(q, q);
    let a = seeded_uniform(n, n, 5);
    let b = seeded_uniform(n, n, 6);
    let want = reference_product(&a, &b);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let cfg = TwoDotFiveConfig {
        q,
        c,
        summa: SummaConfig {
            block: 4,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        },
    };
    let out = Runtime::run(q * q * c, |comm| {
        let (layer, i, j) = coords_3d(comm.rank(), q);
        let (ai, bi) = if layer == 0 {
            (at[grid.rank(i, j)].clone(), bt[grid.rank(i, j)].clone())
        } else {
            let (th, tw) = dist.tile_shape();
            (Matrix::zeros(th, tw), Matrix::zeros(th, tw))
        };
        twodotfive(comm, n, &ai, &bi, &cfg).unwrap()
    });
    let tiles: Vec<Matrix> = (0..q * q)
        .map(|r| out[r].clone().expect("layer 0"))
        .collect();
    assert!(dist.gather(&tiles).approx_eq(&want, 1e-9));
}

#[test]
fn block_lu_solves_a_linear_system_end_to_end() {
    // The downstream use-case: factor A once, then solve A·x = rhs by
    // forward/back substitution with the gathered factors.
    use hsumma_repro::matrix::factor::{trsm_left_lower_unit, trsm_right_upper};

    let grid = GridShape::new(2, 2);
    let n = 16;
    let a = seeded_diag_dominant(n, 11);
    let dist = BlockDist::new(grid, n, n);
    let tiles = dist.scatter(&a);
    let cfg = LuConfig {
        block: 4,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    let out = Runtime::run(grid.size(), |comm| {
        block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
    });
    let packed = dist.gather(&out);
    let l = unpack_lower_unit(&packed);
    let u = unpack_upper(&packed);

    // Solve A x = rhs: L y = rhs, then x U = ... (we solve Uᵀ-free via
    // x: first y from L, then x from U using the right-solve on a row
    // vector is awkward — use the identity (U x = y) ⇔ (xᵀ Uᵀ = yᵀ);
    // simpler: verify L·U ≈ A and residual of the reconstructed solve.
    let x_true = seeded_uniform(n, 1, 12);
    let mut rhs = Matrix::zeros(n, 1);
    gemm(GemmKernel::Blocked, &a, &x_true, &mut rhs);

    // Forward substitution with L.
    let mut y = rhs.clone();
    trsm_left_lower_unit(&l, &mut y);
    // Back substitution with U (column-vector form of the right solve):
    // solve U x = y directly.
    let mut x = Matrix::zeros(n, 1);
    for i in (0..n).rev() {
        let mut v = y.get(i, 0);
        for k in i + 1..n {
            v -= u.get(i, k) * x.get(k, 0);
        }
        x.set(i, 0, v / u.get(i, i));
    }
    assert!(
        x.approx_eq(&x_true, 1e-6),
        "solve via distributed LU diverged: {}",
        x.max_abs_diff(&x_true)
    );
    let _ = trsm_right_upper; // referenced for symmetry with the docs
}

#[test]
fn hierarchical_lu_reconstructs_through_facade() {
    let grid = GridShape::new(4, 4);
    let n = 32;
    let a = seeded_diag_dominant(n, 21);
    let dist = BlockDist::new(grid, n, n);
    let tiles = dist.scatter(&a);
    let cfg = LuConfig {
        block: 4,
        kernel: GemmKernel::Blocked,
        groups: Some(GridShape::new(2, 2)),
        ..Default::default()
    };
    let out = Runtime::run(grid.size(), |comm| {
        block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
    });
    let packed = dist.gather(&out);
    let mut rebuilt = Matrix::zeros(n, n);
    gemm(
        GemmKernel::Blocked,
        &unpack_lower_unit(&packed),
        &unpack_upper(&packed),
        &mut rebuilt,
    );
    assert!(rebuilt.approx_eq(&a, 1e-7));
}
