//! Substrate parity for the sparse subsystem.
//!
//! The sparse schedules extend the repo's organizing identity — one
//! schedule, two substrates — to nnz-*dependent* message sizes, which is
//! exactly what makes the parity non-trivial: the simulator never sees
//! the CSR buffers, only wire byte counts, yet must move byte-for-byte
//! the messages the threaded runtime moves.
//!
//! 1. `spgemm_2d` on real threads (`Arc<CsrMatrix>` panels priced by the
//!    `WirePayload` hook) and on the simulator (`PhantomSparse` panels
//!    reconstructed from wire bytes via the invertible CSR format) must
//!    emit identical per-rank `(src, dst, bytes)` send multisets;
//! 2. likewise `sddmm_2d` (dense pivot panels; `S` never travels);
//! 3. the wire bytes must actually *depend on nnz*: same shapes,
//!    different fill → different multisets (the dense stack could never
//!    express this — every `n × b` panel cost the same);
//! 4. a `FaultPlan` dropping an in-flight sparse panel broadcast must
//!    produce the same per-rank outcome kinds and injected-fault count
//!    on both substrates (sparse panels travel under user-level
//!    step-index tags, so `TagClass::App` rules reach them).

use hsumma_repro::core::PhantomMat;
use hsumma_repro::matrix::sparse::{seeded_sparse, CsrMatrix};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GridShape, Matrix};
use hsumma_repro::netsim::spmd::{SimComm, SimWorld};
use hsumma_repro::netsim::{Platform, SimNet, SimRunOptions};
use hsumma_repro::runtime::{Comm, JobOptions, Runtime};
use hsumma_repro::sparse::{scatter_csr, sddmm_2d, spgemm_2d, PhantomSparse, SparseConfig};
use hsumma_repro::trace::{CommErrorKind, FaultPlan, TagClass, Trace, Tracer};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 16;

fn grid() -> GridShape {
    GridShape::new(2, 2)
}

fn cfg() -> SparseConfig {
    SparseConfig {
        block: 4,
        ..SparseConfig::default()
    }
}

/// Threaded runtime with a tracer attached; returns the trace.
fn real_trace(p: usize, run: impl Fn(&Comm) + Send + Sync) -> Trace {
    let tracer = Tracer::new(p);
    Runtime::run_traced(p, &tracer, |comm| run(comm));
    tracer.collect()
}

/// The same generic algorithm over simulated clocks, traced.
fn sim_trace(p: usize, f: impl Fn(&SimComm) + Sync) -> Trace {
    let tracer = Tracer::new(p);
    let mut net = SimNet::new(p, Platform::grid5000().net);
    net.attach_tracer(&tracer);
    let _ = SimWorld::run(net, 0.0, false, f);
    tracer.collect()
}

/// Real-side spgemm trace for the given operands.
fn spgemm_real(a: &CsrMatrix, b: &CsrMatrix) -> Trace {
    let grid = grid();
    let at: Vec<Arc<CsrMatrix>> = scatter_csr(grid, a).into_iter().map(Arc::new).collect();
    let bt: Vec<Arc<CsrMatrix>> = scatter_csr(grid, b).into_iter().map(Arc::new).collect();
    real_trace(grid.size(), move |comm| {
        let r = comm.rank();
        spgemm_2d(comm, grid, N, &at[r], &bt[r], &cfg()).unwrap();
    })
}

/// Sim-side spgemm trace for the *same* operands, as patterned phantoms.
fn spgemm_sim(a: &CsrMatrix, b: &CsrMatrix) -> Trace {
    let grid = grid();
    let at: Vec<PhantomSparse> = scatter_csr(grid, a)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let bt: Vec<PhantomSparse> = scatter_csr(grid, b)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    sim_trace(grid.size(), move |comm| {
        let r = comm.rank();
        spgemm_2d(comm, grid, N, &at[r], &bt[r], &cfg()).unwrap();
    })
}

#[test]
fn real_and_sim_spgemm_emit_identical_payload_multisets() {
    let a = seeded_sparse(N, N, 0.2, 401);
    let b = seeded_sparse(N, N, 0.3, 402);
    let real = spgemm_real(&a, &b);
    let sim = spgemm_sim(&a, &b);
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "spgemm_2d: real and simulated schedules moved different messages"
    );
}

#[test]
fn real_and_sim_sddmm_emit_identical_payload_multisets() {
    let grid = grid();
    let s = seeded_sparse(N, N, 0.25, 403);
    let a = seeded_uniform(N, N, 404);
    let b = seeded_uniform(N, N, 405);
    let st: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &s).into_iter().map(Arc::new).collect();
    let dist = BlockDist::new(grid, N, N);
    let at: Vec<Matrix> = dist.scatter(&a);
    let bt: Vec<Matrix> = dist.scatter(&b);
    let real = real_trace(grid.size(), move |comm| {
        let r = comm.rank();
        sddmm_2d(comm, grid, N, &st[r], &at[r], &bt[r], &cfg()).unwrap();
    });

    let sp: Vec<PhantomSparse> = scatter_csr(grid, &s)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let (th, tw) = (N / grid.rows, N / grid.cols);
    let sim = sim_trace(grid.size(), move |comm| {
        let r = comm.rank();
        let tile = PhantomMat { rows: th, cols: tw };
        sddmm_2d(comm, grid, N, &sp[r], &tile, &tile, &cfg()).unwrap();
    });
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "sddmm_2d: real and simulated schedules moved different messages"
    );
}

/// The acceptance criterion the dense stack could never express: two
/// operand sets of the *same shape* but different fill must move
/// different wire bytes — on the real substrate (the `WirePayload` hook
/// prices each CSR panel at its serialized size) and equally on the
/// simulator (parity with the real trace transfers the property).
#[test]
fn wire_bytes_depend_on_nnz_not_just_shape() {
    let lo_a = seeded_sparse(N, N, 0.1, 406);
    let lo_b = seeded_sparse(N, N, 0.1, 407);
    let hi_a = seeded_sparse(N, N, 0.7, 406);
    let hi_b = seeded_sparse(N, N, 0.7, 407);

    let lo = spgemm_real(&lo_a, &lo_b);
    let hi = spgemm_real(&hi_a, &hi_b);
    let lo_sets = lo.per_rank_send_multisets();
    let hi_sets = hi.per_rank_send_multisets();
    assert_ne!(lo_sets, hi_sets, "fill must change the wire bytes");
    // Same schedule: message counts agree; only the sizes moved.
    let count = |sets: &[Vec<(usize, usize, u64)>]| -> usize { sets.iter().map(Vec::len).sum() };
    assert_eq!(count(&lo_sets), count(&hi_sets));
    let bytes = |sets: &[Vec<(usize, usize, u64)>]| -> u64 {
        sets.iter().flatten().map(|&(_, _, b)| b).sum()
    };
    assert!(bytes(&hi_sets) > bytes(&lo_sets));
}

/// Per-rank outcome kinds plus total injected faults.
type Replay = (Vec<Option<CommErrorKind>>, u64);

/// Replays `plan` through `spgemm_2d` on the threaded runtime.
fn replay_threaded(plan: &Arc<FaultPlan>) -> Replay {
    let grid = grid();
    let a = seeded_sparse(N, N, 0.3, 408);
    let b = seeded_sparse(N, N, 0.3, 409);
    let at: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &a).into_iter().map(Arc::new).collect();
    let bt: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &b).into_iter().map(Arc::new).collect();
    let opts = JobOptions::default()
        .with_deadline(Duration::from_millis(300))
        .with_faults(Arc::clone(plan));
    let per_rank = Runtime::try_run_opts(grid.size(), &Tracer::disabled(), &opts, |comm| {
        let r = comm.rank();
        (
            spgemm_2d(comm, grid, N, &at[r], &bt[r], &cfg())
                .map(|_| ())
                .map_err(|e| e.kind()),
            comm.stats().faults_injected,
        )
    })
    .expect("faults surface as Err results, not rank panics");
    let kinds = per_rank
        .iter()
        .map(|(r, _)| r.as_ref().err().copied())
        .collect();
    let injected = per_rank.iter().map(|(_, n)| n).sum();
    (kinds, injected)
}

/// Replays `plan` through the *same* `spgemm_2d` source on the simulator.
fn replay_sim(plan: &Arc<FaultPlan>) -> Replay {
    let grid = grid();
    let a = seeded_sparse(N, N, 0.3, 408);
    let b = seeded_sparse(N, N, 0.3, 409);
    let at: Vec<PhantomSparse> = scatter_csr(grid, &a)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let bt: Vec<PhantomSparse> = scatter_csr(grid, &b)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(Arc::clone(plan));
    let net = SimNet::new(grid.size(), Platform::bluegene_p_effective().net);
    let out = SimWorld::run_with(net, 0.0, false, &opts, |comm| {
        let r = comm.rank();
        spgemm_2d(comm, grid, N, &at[r], &bt[r], &cfg())
            .map(|_| ())
            .map_err(|e| e.kind())
    });
    let kinds = out
        .results
        .iter()
        .map(|r| r.as_ref().err().copied())
        .collect();
    (kinds, out.faults_injected)
}

#[test]
fn dropped_sparse_panel_fails_identically_on_both_substrates() {
    // Drop the first user-level (App-tagged) message rank 0 sends to
    // rank 1: the step-0 A-panel broadcast on row communicator {0, 1}.
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
    let threaded = replay_threaded(&plan);
    let sim = replay_sim(&plan);
    assert_eq!(
        threaded, sim,
        "the same dropped sparse panel must fail the same ranks the same way"
    );
    assert_eq!(threaded.1, 1, "exactly the one planned drop injected");
    assert!(
        threaded.0.iter().any(Option::is_some),
        "at least the starved rank must fail"
    );
}

#[test]
fn clean_sparse_replay_succeeds_on_both_substrates() {
    // Control: an empty plan injects nothing and nobody fails.
    let plan = Arc::new(FaultPlan::new());
    let threaded = replay_threaded(&plan);
    let sim = replay_sim(&plan);
    assert_eq!(threaded, sim);
    assert_eq!(threaded.1, 0);
    assert!(threaded.0.iter().all(Option::is_none));
}
