//! Property-based invariants spanning crates: randomized configurations
//! of the simulator and the executable algorithms must uphold the
//! paper's structural guarantees.

use hsumma_repro::core::grid::HierGrid;
use hsumma_repro::core::simdrive::{sim_hsumma_sync, sim_summa_sync};
use hsumma_repro::core::testutil::{distributed_product, reference_product};
use hsumma_repro::core::{hsumma, HsummaConfig};
use hsumma_repro::matrix::{seeded_uniform, GemmKernel, GridShape};
use hsumma_repro::netsim::{Hockney, Platform, SimBcast};
use proptest::prelude::*;

const BCASTS: [SimBcast; 4] = [
    SimBcast::Flat,
    SimBcast::Binomial,
    SimBcast::Binary,
    SimBcast::ScatterAllgather,
];

fn arb_platform(alpha_exp: i32, beta_exp: i32) -> Platform {
    Platform {
        name: "random",
        net: Hockney::new(10f64.powi(alpha_exp), 10f64.powi(beta_exp)),
        gamma: 1e-10,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// "HSUMMA can never be worse than SUMMA" (§V-A): across random
    /// platforms, broadcast algorithms and grids, the best grouping is
    /// at most SUMMA (G = 1 is always a candidate).
    #[test]
    fn hsumma_never_loses_anywhere(
        side_pow in 1u32..4,
        alpha_exp in -7i32..-2,
        beta_exp in -12i32..-8,
        bcast_ix in 0usize..4,
    ) {
        let side = 1usize << side_pow;
        let grid = GridShape::new(side, side);
        let platform = arb_platform(alpha_exp, beta_exp);
        let bcast = BCASTS[bcast_ix];
        let n = side * 8;
        let b = 4;
        let summa = sim_summa_sync(&platform, grid, n, b, bcast);
        let best = HierGrid::valid_group_counts(grid)
            .iter()
            .map(|&(_, groups)| {
                sim_hsumma_sync(&platform, grid, groups, n, b, b, bcast, bcast).comm_time
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            best <= summa.comm_time * (1.0 + 1e-9),
            "best {best} > SUMMA {} on {platform:?} {bcast:?}",
            summa.comm_time
        );
    }

    /// Simulated time is invariant to the broadcast *data* (phantom
    /// payloads): two sweeps with identical parameters agree exactly.
    #[test]
    fn simulation_is_configuration_deterministic(
        side_pow in 1u32..4,
        bcast_ix in 0usize..4,
        g_seed in 0usize..100,
    ) {
        let side = 1usize << side_pow;
        let grid = GridShape::new(side, side);
        let counts = HierGrid::valid_group_counts(grid);
        let (_, groups) = counts[g_seed % counts.len()];
        let platform = Platform::bluegene_p();
        let bcast = BCASTS[bcast_ix];
        let a = sim_hsumma_sync(&platform, grid, groups, side * 8, 4, 4, bcast, bcast);
        let b = sim_hsumma_sync(&platform, grid, groups, side * 8, 4, 4, bcast, bcast);
        prop_assert_eq!(a, b);
    }

    /// Compute time and moved bytes are functions of (n, p) only — never
    /// of the grouping or the broadcast algorithm (for tree broadcasts).
    #[test]
    fn work_and_volume_are_grouping_invariant(
        side_pow in 1u32..4,
        g_seed in 0usize..100,
        bcast_ix in 0usize..3, // tree broadcasts only (vdG splits payloads)
    ) {
        let side = 1usize << side_pow;
        let grid = GridShape::new(side, side);
        let counts = HierGrid::valid_group_counts(grid);
        let (_, groups) = counts[g_seed % counts.len()];
        let platform = Platform::grid5000();
        let bcast = BCASTS[bcast_ix];
        let n = side * 8;
        let summa = sim_summa_sync(&platform, grid, n, 4, bcast);
        let h = sim_hsumma_sync(&platform, grid, groups, n, 4, 4, bcast, bcast);
        prop_assert!((h.comp_time - summa.comp_time).abs() < 1e-12 * summa.comp_time.max(1e-30));
        prop_assert_eq!(h.bytes, summa.bytes);
    }

    /// The executable HSUMMA is correct for random square problems and
    /// random groupings (the cross-crate end-to-end property).
    #[test]
    fn executable_hsumma_random_configs(
        side in 1usize..4,
        tiles in 1usize..3,
        g_seed in 0usize..50,
        seed in 0u64..500,
    ) {
        let grid = GridShape::new(side, side);
        let counts = HierGrid::valid_group_counts(grid);
        let (_, groups) = counts[g_seed % counts.len()];
        let n = side * tiles * 2;
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed.wrapping_add(1));
        let want = reference_product(&a, &b);
        let cfg = HsummaConfig {
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(groups, 1)
        };
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
        });
        prop_assert!(got.approx_eq(&want, 1e-9));
    }
}
