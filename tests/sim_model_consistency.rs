//! Cross-validation of the three layers of the reproduction:
//!
//! 1. the *executable* algorithms (threads, real data),
//! 2. the *timing simulator* (message-level schedule replay),
//! 3. the *analytic model* (the paper's closed forms).
//!
//! Each pair must agree where their assumptions overlap. This is the
//! strongest evidence that the simulated BlueGene/P figures are replaying
//! the same schedule the real implementation executes.

use hsumma_repro::core::simdrive::{sim_hsumma, sim_hsumma_on, sim_summa, sim_summa_on};
use hsumma_repro::core::{hsumma, summa, HsummaConfig, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape};
use hsumma_repro::model::{hsumma_cost, summa_cost, BcastModel, ModelParams};
use hsumma_repro::netsim::{Platform, SimBcast, SimNet};
use hsumma_repro::runtime::{BcastAlgorithm, Comm, Runtime};
use hsumma_repro::trace::{Trace, Tracer};

/// Counts messages the executable algorithm sends during the multiply
/// phase (excluding the fixed communicator-split protocol).
fn real_multiply_msgs(
    grid: GridShape,
    n: usize,
    run: impl Fn(&hsumma_repro::runtime::Comm) + Send + Sync,
    split_msgs: u64,
) -> u64 {
    let total: u64 = Runtime::run(grid.size(), |comm| {
        comm.reset_stats();
        run(comm);
        comm.stats().msgs_sent
    })
    .iter()
    .sum();
    let _ = n;
    total - split_msgs
}

/// Messages a split of `p` ranks costs: flat gather (p−1) + binomial
/// broadcast of the table (p−1).
fn split_cost(p: usize) -> u64 {
    2 * (p as u64 - 1)
}

/// Runs the executable algorithm with a tracer attached and returns the
/// trace (split-protocol control messages carry 0 payload bytes, so the
/// payload multisets below are multiply-phase traffic only).
fn real_trace(grid: GridShape, run: impl Fn(&Comm) + Send + Sync) -> Trace {
    real_trace_p(grid.size(), run)
}

/// [`real_trace`] for rank counts that are not a 2-D grid (2.5D, TSQR).
fn real_trace_p(p: usize, run: impl Fn(&Comm) + Send + Sync) -> Trace {
    let tracer = Tracer::new(p);
    Runtime::run_traced(p, &tracer, |comm| run(comm));
    tracer.collect()
}

/// Runs the *same generic algorithm* over simulated clocks with phantom
/// payloads and a tracer attached, returning the trace.
fn sim_trace(p: usize, f: impl Fn(&hsumma_repro::netsim::spmd::SimComm) + Sync) -> Trace {
    let tracer = Tracer::new(p);
    let mut net = SimNet::new(p, Platform::grid5000().net);
    net.attach_tracer(&tracer);
    let _ = hsumma_repro::netsim::spmd::SimWorld::run(net, 0.0, false, f);
    tracer.collect()
}

/// The multiset identity both substrates must satisfy: every rank sends
/// the same `(src, dst, bytes)` multiset (zero-byte control messages
/// excluded) whether the schedule moves real data or phantom payloads.
fn assert_same_sends(real: &Trace, sim: &Trace, what: &str) {
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "{what}: real and simulated schedules moved different messages"
    );
}

/// The strongest cross-substrate check: the real runtime and the
/// simulator must emit *identical per-rank `(src, dst, bytes)` message
/// multisets* for the same SUMMA configuration — not just equal counts.
#[test]
fn real_and_sim_summa_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let (n, b) = (32usize, 4usize);
    let a = seeded_uniform(n, n, 1);
    let bm = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);
    let cfg = SummaConfig {
        block: b,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    let real = real_trace(grid, |comm| {
        let _ = summa(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        );
    });

    let tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), Platform::grid5000().net);
    net.attach_tracer(&tracer);
    sim_summa_on(&mut net, 0.0, grid, n, b, SimBcast::Binomial, false);
    let sim = tracer.collect();

    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "every rank must send the same (src, dst, bytes) multiset on both substrates"
    );
}

/// Same multiset identity for HSUMMA with a nontrivial grouping and
/// distinct inner/outer blocks.
#[test]
fn real_and_sim_hsumma_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let (n, bb, bs) = (32usize, 8usize, 4usize);
    let a = seeded_uniform(n, n, 3);
    let bm = seeded_uniform(n, n, 4);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);
    let cfg = HsummaConfig {
        outer_block: bb,
        inner_block: bs,
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(groups, bb)
    };
    let real = real_trace(grid, |comm| {
        let _ = hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &cfg,
        );
    });

    let tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), Platform::grid5000().net);
    net.attach_tracer(&tracer);
    sim_hsumma_on(
        &mut net,
        0.0,
        grid,
        groups,
        n,
        bb,
        bs,
        SimBcast::Binomial,
        SimBcast::Binomial,
        false,
    );
    let sim = tracer.collect();

    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "every rank must send the same (src, dst, bytes) multiset on both substrates"
    );
}

// ---------------------------------------------------------------------
// Per-rank multiset parity for every algorithm in the crate. Each test
// runs the *same generic function* on both substrates — real `Matrix`
// payloads over threads, `PhantomMat` over simulated clocks — and
// demands identical per-rank `(src, dst, bytes)` send multisets.
// Broadcasts are pinned to Binomial where configurable: relayed trees
// move the same wire bytes on both substrates, while scatter-allgather's
// real segmentation differs from the simulator's subtree accounting.
// ---------------------------------------------------------------------

use hsumma_repro::core::{
    block_lu, cannon, fox, hier_bcast, summa_cyclic, summa_overlap, summa_rect, tsqr, twodotfive,
    LuConfig, MatMulDims, PhantomMat, TwoDotFiveConfig,
};
use hsumma_repro::matrix::{factor::seeded_diag_dominant, BlockCyclicDist, Matrix};

#[test]
fn real_and_sim_cannon_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let (n, ts) = (32usize, 8usize);
    let tiles: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(ts, ts, 100 + r as u64))
        .collect();
    let real = real_trace(grid, |comm| {
        let t = &tiles[comm.rank()];
        let _ = cannon(comm, grid, n, t, t, GemmKernel::Blocked);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: ts, cols: ts };
        let _ = cannon(comm, grid, n, &t, &t, GemmKernel::Blocked);
    });
    assert_same_sends(&real, &sim, "cannon");
}

#[test]
fn real_and_sim_fox_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let (n, ts) = (32usize, 8usize);
    let tiles: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(ts, ts, 200 + r as u64))
        .collect();
    let real = real_trace(grid, |comm| {
        let t = &tiles[comm.rank()];
        let _ = fox(comm, grid, n, t, t, GemmKernel::Blocked);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: ts, cols: ts };
        let _ = fox(comm, grid, n, &t, &t, GemmKernel::Blocked);
    });
    assert_same_sends(&real, &sim, "fox");
}

#[test]
fn real_and_sim_cyclic_summa_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let (n, b) = (32usize, 4usize);
    let dist = BlockCyclicDist::new(grid, n, n, b);
    let (th, tw) = dist.tile_shape();
    let cfg = SummaConfig {
        block: b,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    let tiles: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(th, tw, 300 + r as u64))
        .collect();
    let real = real_trace(grid, |comm| {
        let t = &tiles[comm.rank()];
        let _ = summa_cyclic(comm, grid, n, t, t, &cfg);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: th, cols: tw };
        let _ = summa_cyclic(comm, grid, n, &t, &t, &cfg);
    });
    assert_same_sends(&real, &sim, "cyclic summa");
}

#[test]
fn real_and_sim_overlap_emit_identical_payload_multisets() {
    let grid = GridShape::new(4, 4);
    let (n, ts) = (32usize, 8usize);
    let cfg = SummaConfig {
        block: 4,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    let tiles: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(ts, ts, 400 + r as u64))
        .collect();
    let real = real_trace(grid, |comm| {
        let t = &tiles[comm.rank()];
        let _ = summa_overlap(comm, grid, n, t, t, &cfg);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: ts, cols: ts };
        let _ = summa_overlap(comm, grid, n, &t, &t, &cfg);
    });
    assert_same_sends(&real, &sim, "overlapped summa");
}

#[test]
fn real_and_sim_rect_summa_emit_identical_payload_multisets() {
    // Rectangular shapes exercise the m/l/n bookkeeping: A tiles are
    // 4×8, B tiles 8×4 on a 2×2 grid.
    let grid = GridShape::new(2, 2);
    let dims = MatMulDims { m: 8, l: 16, n: 8 };
    let cfg = SummaConfig {
        block: 2,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    let (ah, aw) = (dims.m / grid.rows, dims.l / grid.cols);
    let (bh, bw) = (dims.l / grid.rows, dims.n / grid.cols);
    let ats: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(ah, aw, 500 + r as u64))
        .collect();
    let bts: Vec<Matrix> = (0..grid.size())
        .map(|r| seeded_uniform(bh, bw, 600 + r as u64))
        .collect();
    let real = real_trace(grid, |comm| {
        let _ = summa_rect(comm, grid, dims, &ats[comm.rank()], &bts[comm.rank()], &cfg);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let a = PhantomMat { rows: ah, cols: aw };
        let b = PhantomMat { rows: bh, cols: bw };
        let _ = summa_rect(comm, grid, dims, &a, &b, &cfg);
    });
    assert_same_sends(&real, &sim, "rectangular summa");
}

#[test]
fn real_and_sim_lu_emit_identical_payload_multisets() {
    // Hierarchical panel broadcasts (groups = 2×2) on both substrates.
    // LU needs nonzero pivots on the real side, hence diag-dominant data.
    let grid = GridShape::new(4, 4);
    let (n, bs) = (16usize, 2usize);
    let cfg = LuConfig {
        block: bs,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
        groups: Some(GridShape::new(2, 2)),
    };
    let a = seeded_diag_dominant(n, 9);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let real = real_trace(grid, |comm| {
        let _ = block_lu(comm, grid, n, &at[comm.rank()].clone(), &cfg);
    });
    let sim = sim_trace(grid.size(), |comm| {
        let t = PhantomMat { rows: 4, cols: 4 };
        let _ = block_lu(comm, grid, n, &t, &cfg);
    });
    assert_same_sends(&real, &sim, "block LU");
}

#[test]
fn real_and_sim_twodotfive_emit_identical_payload_multisets() {
    // q = 2, c = 2: replication broadcasts, layer-local partial SUMMA,
    // and the depth reduction all have to line up across substrates.
    let cfg = TwoDotFiveConfig {
        q: 2,
        c: 2,
        summa: SummaConfig {
            block: 2,
            bcast: BcastAlgorithm::Binomial,
            kernel: GemmKernel::Blocked,
        },
    };
    let (n, ts, p) = (8usize, 4usize, 8usize);
    let tiles: Vec<Matrix> = (0..p)
        .map(|r| seeded_uniform(ts, ts, 700 + r as u64))
        .collect();
    let real = real_trace_p(p, |comm| {
        let t = &tiles[comm.rank()];
        let _ = twodotfive(comm, n, t, t, &cfg);
    });
    let sim = sim_trace(p, |comm| {
        let t = PhantomMat { rows: ts, cols: ts };
        let _ = twodotfive(comm, n, &t, &t, &cfg);
    });
    assert_same_sends(&real, &sim, "2.5D");
}

#[test]
fn real_and_sim_tsqr_emit_identical_payload_multisets() {
    // Tree reduction + downward sweep + final R broadcast. QR needs
    // full-rank local blocks on the real side, hence random data.
    let (p, rows, ncols) = (4usize, 8usize, 3usize);
    let blocks: Vec<Matrix> = (0..p)
        .map(|r| seeded_uniform(rows, ncols, 800 + r as u64))
        .collect();
    let real = real_trace_p(p, |comm| {
        let _ = tsqr(comm, &blocks[comm.rank()]);
    });
    let sim = sim_trace(p, |comm| {
        let block = PhantomMat { rows, cols: ncols };
        let _ = tsqr(comm, &block);
    });
    assert_same_sends(&real, &sim, "TSQR");
}

#[test]
fn real_and_sim_hier_bcast_emit_identical_payload_multisets() {
    // Multi-level broadcast with a non-leader root (rank 5, levels 2×4):
    // the leader relay and the subgroup broadcasts must pair identically.
    let p = 8usize;
    let root = 5usize;
    let real = real_trace_p(p, |comm| {
        let mut m = if comm.rank() == root {
            seeded_uniform(2, 4, 9)
        } else {
            Matrix::zeros(2, 4)
        };
        hier_bcast(comm, BcastAlgorithm::Binomial, root, &mut m, &[2, 4]).unwrap();
    });
    let sim = sim_trace(p, |comm| {
        let mut m = PhantomMat { rows: 2, cols: 4 };
        hier_bcast(comm, BcastAlgorithm::Binomial, root, &mut m, &[2, 4]).unwrap();
    });
    assert_same_sends(&real, &sim, "hierarchical broadcast");
}

#[test]
fn real_summa_message_count_matches_simulated_schedule() {
    let grid = GridShape::new(4, 4);
    let n = 32;
    let b = 4;
    let a = seeded_uniform(n, n, 1);
    let bm = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);

    let cfg = SummaConfig {
        block: b,
        bcast: BcastAlgorithm::Binomial,
        kernel: GemmKernel::Blocked,
    };
    // SUMMA makes 2 splits: row comms (4 splits of 4 ranks happen as ONE
    // split call over 16 ranks) and column comms.
    let real = real_multiply_msgs(
        grid,
        n,
        |comm| {
            let _ = summa(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            );
        },
        2 * split_cost(grid.size()),
    );

    let sim = sim_summa(&Platform::grid5000(), grid, n, b, SimBcast::Binomial);
    assert_eq!(
        real, sim.msgs,
        "real schedule must match simulated schedule"
    );
}

#[test]
fn real_hsumma_message_count_matches_simulated_schedule() {
    let grid = GridShape::new(4, 4);
    let groups = GridShape::new(2, 2);
    let n = 32;
    let b = 4;
    let a = seeded_uniform(n, n, 3);
    let bm = seeded_uniform(n, n, 4);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&bm);

    let cfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(groups, b)
    };
    let real = real_multiply_msgs(
        grid,
        n,
        |comm| {
            let _ = hsumma(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            );
        },
        4 * split_cost(grid.size()), // HSUMMA builds four communicators
    );

    let sim = sim_hsumma(
        &Platform::grid5000(),
        grid,
        groups,
        n,
        b,
        b,
        SimBcast::Binomial,
        SimBcast::Binomial,
    );
    assert_eq!(
        real, sim.msgs,
        "real schedule must match simulated schedule"
    );
}

#[test]
fn simulated_summa_matches_analytic_model_binomial_square_grid() {
    // On a square power-of-two grid with binomial broadcast the simulated
    // clocks re-synchronize each phase, so simulation and closed form
    // agree to rounding.
    let platform = Platform::bluegene_p();
    let params = ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: platform.gamma,
    };
    for (side, n, b) in [(4usize, 64usize, 8usize), (8, 128, 16)] {
        let grid = GridShape::new(side, side);
        let sim = sim_summa(&platform, grid, n, b, SimBcast::Binomial);
        let model = summa_cost(
            &params,
            BcastModel::Binomial,
            n as f64,
            (side * side) as f64,
            b as f64,
        );
        let rel = (sim.comm_time - model.comm()).abs() / model.comm();
        assert!(
            rel < 1e-9,
            "side={side}: sim {} vs model {} (rel {rel})",
            sim.comm_time,
            model.comm()
        );
        let relc = (sim.comp_time - model.compute).abs() / model.compute;
        assert!(
            relc < 1e-9,
            "compute mismatch: {} vs {}",
            sim.comp_time,
            model.compute
        );
    }
}

#[test]
fn simulated_hsumma_matches_analytic_model_binomial() {
    let platform = Platform::bluegene_p();
    let params = ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: platform.gamma,
    };
    let grid = GridShape::new(8, 8);
    let groups = GridShape::new(2, 2);
    let (n, b) = (128usize, 16usize);
    let sim = sim_hsumma(
        &platform,
        grid,
        groups,
        n,
        b,
        b,
        SimBcast::Binomial,
        SimBcast::Binomial,
    );
    let model = hsumma_cost(
        &params,
        BcastModel::Binomial,
        BcastModel::Binomial,
        n as f64,
        64.0,
        4.0,
        b as f64,
        b as f64,
    );
    let rel = (sim.comm_time - model.comm()).abs() / model.comm();
    assert!(
        rel < 1e-9,
        "sim {} vs model {}",
        sim.comm_time,
        model.comm()
    );
}

#[test]
fn simulated_vdg_tracks_model_within_tolerance() {
    // Van de Geijn chains do not fully resynchronize, so allow a few
    // percent between simulation and the closed form.
    let platform = Platform::grid5000();
    let params = ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: 0.0,
    };
    let grid = GridShape::new(8, 8);
    let (n, b) = (256usize, 32usize);
    let mut sim = sim_summa(&platform, grid, n, b, SimBcast::ScatterAllgather);
    sim.comp_time = 0.0;
    let model = summa_cost(&params, BcastModel::VanDeGeijn, n as f64, 64.0, b as f64);
    let rel = (sim.total_time - model.comm()).abs() / model.comm();
    assert!(
        rel < 0.25,
        "sim {} vs model {} (rel {rel})",
        sim.total_time,
        model.comm()
    );
}

#[test]
fn model_and_simulator_agree_on_who_wins() {
    // For each platform, the sign of (SUMMA − best HSUMMA) must agree
    // between the analytic sweep and the simulated sweep.
    use hsumma_repro::core::tuning::{best_by_comm, power_of_two_gs, sweep_groups};
    use hsumma_repro::model::predict;

    let platform = Platform::bluegene_p();
    let grid = GridShape::new(16, 16);
    let (n, b) = (1024usize, 64usize);
    let p = grid.size();

    let sim_summa_r = sim_summa(&platform, grid, n, b, SimBcast::ScatterAllgather);
    let sweep = sweep_groups(
        &platform,
        grid,
        n,
        b,
        b,
        SimBcast::ScatterAllgather,
        SimBcast::ScatterAllgather,
        &power_of_two_gs(p),
    );
    let sim_best = best_by_comm(&sweep);
    let sim_hsumma_wins = sim_best.report.comm_time < sim_summa_r.comm_time * 0.999;

    let params = ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: platform.gamma,
    };
    let gs: Vec<f64> = power_of_two_gs(p).iter().map(|&g| g as f64).collect();
    let msweep = predict::sweep_groups(
        &params,
        BcastModel::VanDeGeijn,
        n as f64,
        p as f64,
        b as f64,
        &gs,
    );
    let mbest = predict::best_point(&msweep);
    let model_hsumma_wins = mbest.hsumma.comm() < mbest.summa.comm() * 0.999;

    assert_eq!(
        sim_hsumma_wins, model_hsumma_wins,
        "simulator (win={sim_hsumma_wins}) and model (win={model_hsumma_wins}) disagree"
    );
}
