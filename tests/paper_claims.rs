//! The paper's claims, as executable assertions.
//!
//! Each test names the claim (§ reference) and checks it against the
//! reproduction at a scale the test suite can afford; `EXPERIMENTS.md`
//! records the full-scale numbers from the bench binaries.

use hsumma_repro::core::grid::HierGrid;
use hsumma_repro::core::simdrive::{sim_hsumma_sync, sim_summa_sync};
use hsumma_repro::core::tuning::{best_by_comm, power_of_two_gs, sweep_groups_with};
use hsumma_repro::matrix::GridShape;
use hsumma_repro::model::{classify_regime, Regime};
use hsumma_repro::netsim::{Platform, SimBcast};

/// §III: "It is clear that SUMMA is a special case of HSUMMA when the
/// number of groups equals to one or to the total number of processors."
#[test]
fn claim_summa_is_special_case_at_endpoints() {
    let platform = Platform::bluegene_p_effective();
    let grid = GridShape::new(8, 8);
    let (n, b) = (256usize, 32usize);
    for bcast in [
        SimBcast::Flat,
        SimBcast::Binomial,
        SimBcast::ScatterAllgather,
    ] {
        let s = sim_summa_sync(&platform, grid, n, b, bcast);
        for groups in [GridShape::new(1, 1), GridShape::new(8, 8)] {
            let h = sim_hsumma_sync(&platform, grid, groups, n, b, b, bcast, bcast);
            let rel = (h.comm_time - s.comm_time).abs() / s.comm_time;
            assert!(
                rel < 1e-9,
                "{bcast:?} {groups:?}: {} vs {}",
                h.comm_time,
                s.comm_time
            );
        }
    }
}

/// §IV-C / §V: "HSUMMA will either outperform SUMMA or be at least
/// equally fast" — over every valid grouping, min(HSUMMA) ≤ SUMMA.
#[test]
fn claim_hsumma_never_loses() {
    for platform in [
        Platform::grid5000(),
        Platform::grid5000_effective(),
        Platform::bluegene_p(),
        Platform::bluegene_p_effective(),
    ] {
        for bcast in [
            SimBcast::Binomial,
            SimBcast::ScatterAllgather,
            SimBcast::Flat,
        ] {
            let grid = GridShape::new(8, 8);
            let (n, b) = (256usize, 32usize);
            let s = sim_summa_sync(&platform, grid, n, b, bcast);
            let gs: Vec<usize> = HierGrid::valid_group_counts(grid)
                .iter()
                .map(|c| c.0)
                .collect();
            let sweep = sweep_groups_with(&platform, grid, n, b, b, bcast, bcast, &gs, true);
            let best = best_by_comm(&sweep);
            assert!(
                best.report.comm_time <= s.comm_time * (1.0 + 1e-9),
                "{} {bcast:?}: best HSUMMA {} > SUMMA {}",
                platform.name,
                best.report.comm_time,
                s.comm_time
            );
        }
    }
}

/// Abstract / §V-B: the communication gain grows with the processor
/// count (2.08× at 2048 → 5.89× at 16384 in the paper's measurements).
/// Scaled-down check: the gain at p=256 exceeds the gain at p=64.
#[test]
fn claim_gain_grows_with_processor_count() {
    let platform = Platform::bluegene_p_effective();
    let bcast = SimBcast::Flat;
    let (n, b) = (2048usize, 32usize);
    let mut gains = Vec::new();
    for side in [8usize, 16] {
        let grid = GridShape::new(side, side);
        let s = sim_summa_sync(&platform, grid, n, b, bcast);
        let sweep = sweep_groups_with(
            &platform,
            grid,
            n,
            b,
            b,
            bcast,
            bcast,
            &power_of_two_gs(grid.size()),
            true,
        );
        let best = best_by_comm(&sweep);
        gains.push(s.comm_time / best.report.comm_time);
    }
    assert!(gains[1] > gains[0], "gain should grow with p: {gains:?}");
}

/// §V-A.1 / §V-B.1 / §V-C: the model-validation inequality α/β > 2nb/p
/// holds on all three platforms with the paper's parameters.
#[test]
fn claim_regime_condition_holds_on_all_platforms() {
    let cases = [
        (Platform::grid5000(), 8192.0, 128.0, 64.0),
        (Platform::bluegene_p(), 65536.0, 16384.0, 256.0),
        (
            Platform::exascale(),
            (1u64 << 22) as f64,
            (1u64 << 20) as f64,
            256.0,
        ),
    ];
    for (platform, n, p, b) in cases {
        assert_eq!(
            classify_regime(platform.net.alpha, platform.net.beta, n, p, b),
            Regime::InteriorMinimum,
            "{} should be latency-dominated",
            platform.name
        );
    }
}

/// §V-B (Fig. 8 shape): on the measured-effective BlueGene/P profile the
/// comm-vs-G curve is U-shaped — endpoints worst, interior minimum, and
/// the interior minimum is a multiple-fold improvement.
#[test]
fn claim_u_shape_with_interior_minimum_on_bluegene() {
    let platform = Platform::bluegene_p_effective();
    let grid = GridShape::new(16, 16);
    let (n, b) = (1024usize, 32usize);
    let sweep = sweep_groups_with(
        &platform,
        grid,
        n,
        b,
        b,
        SimBcast::Flat,
        SimBcast::Flat,
        &power_of_two_gs(grid.size()),
        true,
    );
    let best = best_by_comm(&sweep);
    let first = sweep.first().expect("sweep non-empty");
    let last = sweep.last().expect("sweep non-empty");
    assert!(
        best.g > 1 && best.g < grid.size(),
        "minimum must be interior, got {}",
        best.g
    );
    assert!(
        best.report.comm_time < first.report.comm_time / 2.0,
        "multiple-fold win at best G"
    );
    let rel = (first.report.comm_time - last.report.comm_time).abs() / first.report.comm_time;
    assert!(
        rel < 1e-9,
        "endpoints must match each other (both are SUMMA)"
    );
}

/// §VI (future work, implemented here): with a latency-heavy broadcast,
/// three hierarchy levels improve on two, which improve on one.
#[test]
fn claim_deeper_hierarchies_can_help_further() {
    use hsumma_repro::core::multilevel::sim_summa_hier;
    let platform = Platform {
        name: "latency-heavy",
        net: hsumma_repro::netsim::Hockney::new(1e-2, 1e-12),
        gamma: 0.0,
    };
    let grid = GridShape::new(16, 16);
    let (n, b) = (256usize, 16usize);
    let algo = SimBcast::ScatterAllgather;
    let one = sim_summa_hier(&platform, grid, n, b, algo, &[16]);
    let two = sim_summa_hier(&platform, grid, n, b, algo, &[4, 4]);
    let three = sim_summa_hier(&platform, grid, n, b, algo, &[2, 2, 4]);
    assert!(
        two.comm_time < one.comm_time,
        "2 levels {} < 1 level {}",
        two.comm_time,
        one.comm_time
    );
    assert!(
        three.comm_time < two.comm_time,
        "3 levels {} < 2 levels {}",
        three.comm_time,
        two.comm_time
    );
}
