//! Golden-parity tests for the simulator refactor.
//!
//! These `SimReport` values were captured bit-for-bit from the
//! pre-refactor `simdrive` replay engine (the hand-written per-algorithm
//! schedules) on the paper's Grid5000 and BlueGene/P platform models.
//! The generic `Communicator`-driven simulator must reproduce them
//! exactly: same virtual times to the last ulp, same message and byte
//! counts. Any divergence means the single-source schedule no longer
//! matches what the paper-model validation in `simdrive` was built on.
//!
//! Configs are chosen so panel sizes divide evenly among every group the
//! schedule broadcasts over, keeping byte-chunked and element-chunked
//! segmentation identical.

use hsumma_core::simdrive::{sim_cannon, sim_fox, sim_hsumma, sim_summa};
use hsumma_matrix::GridShape;
use hsumma_netsim::{Platform, SimBcast, SimReport};

/// (label, total_time bits, comm_time bits, comp_time bits, msgs, bytes)
type Golden = (&'static str, u64, u64, u64, u64, u64);

const GOLDENS: &[Golden] = &[
    (
        "summa-binomial-g5k",
        0x3f83f9e901e51c1e,
        0x3f83c2ef42316ca3,
        0x3f1b7cdfd9d7bdbc,
        1792,
        7340032,
    ),
    (
        "summa-sag-g5k",
        0x3fa073ce55795e66,
        0x3fa0660fe58c7286,
        0x3f1b7cdfd9d7bdbc,
        16128,
        8912896,
    ),
    (
        "summa-ring-g5k",
        0x3f784ed49a0dc237,
        0x3f77e0e11aa66341,
        0x3f1b7cdfd9d7bdbc,
        1792,
        7340032,
    ),
    (
        "summa-pipe4-g5k",
        0x3f8fcb5875bb5799,
        0x3f8f945eb607a81d,
        0x3f1b7cdfd9d7bdbc,
        7168,
        7340032,
    ),
    (
        "hsumma-binomial-g5k",
        0x3f80b30ca48193b3,
        0x3f807c12e4cde439,
        0x3f1b7cdfd9d7bdbc,
        1664,
        7340032,
    ),
    (
        "cannon-g5k",
        0x3f5f82dc7bb1f62e,
        0x3f5dcb0e7e147a55,
        0x3f1b7cdfd9d7bdba,
        1136,
        9306112,
    ),
    (
        "fox-g5k",
        0x3f6b5782198b9c71,
        0x3f6a7b9b1abcde83,
        0x3f1b7cdfd9d7bdba,
        960,
        7864320,
    ),
    (
        "summa-binomial-bgp",
        0x3f41eb745e9fe92f,
        0x3f361878d053f380,
        0x3f2b7cdfd9d7bdbc,
        1792,
        7340032,
    ),
    (
        "summa-sag-bgp",
        0x3f53a266753e9660,
        0x3f5032ca7a039e95,
        0x3f2b7cdfd9d7bdbc,
        16128,
        8912896,
    ),
    (
        "summa-ring-bgp",
        0x3f3b17e39573eca7,
        0x3f2ab2e751101b90,
        0x3f2b7cdfd9d7bdbc,
        1792,
        7340032,
    ),
    (
        "summa-pipe4-bgp",
        0x3f46a81c9b148e9c,
        0x3f3f91c9493d3e54,
        0x3f2b7cdfd9d7bdbc,
        7168,
        7340032,
    ),
    (
        "hsumma-binomial-bgp",
        0x3f4058cd278edae8,
        0x3f32f32a6231d6f1,
        0x3f2b7cdfd9d7bdbc,
        1664,
        7340032,
    ),
    (
        "cannon-bgp",
        0x3f327da4ff24fa0d,
        0x3f12fcd448e46cc9,
        0x3f2b7cdfd9d7bdba,
        1136,
        9306112,
    ),
    (
        "fox-bgp",
        0x3f362ece4634f2c0,
        0x3f20e0bcb29227cb,
        0x3f2b7cdfd9d7bdba,
        960,
        7864320,
    ),
];

fn run(label: &str) -> SimReport {
    let (algo, plat) = label.rsplit_once('-').unwrap();
    let plat = match plat {
        "g5k" => Platform::grid5000(),
        "bgp" => Platform::bluegene_p(),
        other => panic!("unknown platform tag {other}"),
    };
    let grid = GridShape::new(8, 8);
    match algo {
        "summa-binomial" => sim_summa(&plat, grid, 256, 16, SimBcast::Binomial),
        "summa-sag" => sim_summa(&plat, grid, 256, 16, SimBcast::ScatterAllgather),
        "summa-ring" => sim_summa(&plat, grid, 256, 16, SimBcast::Ring),
        "summa-pipe4" => sim_summa(&plat, grid, 256, 16, SimBcast::Pipelined { segments: 4 }),
        "hsumma-binomial" => sim_hsumma(
            &plat,
            grid,
            GridShape::new(2, 2),
            256,
            32,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        ),
        "cannon" => sim_cannon(&plat, 8, 256, false),
        "fox" => sim_fox(&plat, 8, 256, SimBcast::Binomial, false),
        other => panic!("unknown algorithm tag {other}"),
    }
}

#[test]
fn simulated_reports_match_pre_refactor_goldens_bit_for_bit() {
    for &(label, total, comm, comp, msgs, bytes) in GOLDENS {
        let r = run(label);
        assert_eq!(
            r.total_time.to_bits(),
            total,
            "{label}: total_time {:.17e} != golden {:.17e}",
            r.total_time,
            f64::from_bits(total)
        );
        assert_eq!(
            r.comm_time.to_bits(),
            comm,
            "{label}: comm_time {:.17e} != golden {:.17e}",
            r.comm_time,
            f64::from_bits(comm)
        );
        assert_eq!(
            r.comp_time.to_bits(),
            comp,
            "{label}: comp_time {:.17e} != golden {:.17e}",
            r.comp_time,
            f64::from_bits(comp)
        );
        assert_eq!(r.msgs, msgs, "{label}: message count drifted");
        assert_eq!(r.bytes, bytes, "{label}: byte volume drifted");
    }
}
