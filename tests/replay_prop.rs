//! Property-based engine parity: for *random* (algorithm, p, n, G,
//! broadcast) configurations, the recorded op-program replay must
//! reproduce the thread-per-rank run exactly — bit-identical reports and
//! identical per-rank `(src, dst, bytes)` send multisets — and a random
//! dropped collective fragment must stall the same edge on both engines.
//! The deterministic golden cases live in `replay_parity.rs`; this file
//! walks the configuration space around them.

use hsumma_repro::core::simdrive::{self as sd, cosma_program, replay_on};
use hsumma_repro::core::{BrickDecomp, CosmaConfig, HierGrid};
use hsumma_repro::matrix::GridShape;
use hsumma_repro::netsim::{
    EventLoopSim, Platform, RecordedProgram, SimBcast, SimNet, SimReport, SimRunOptions, SimWorld,
};
use hsumma_repro::trace::{CommError, CommErrorKind, FaultPlan, TagClass, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

const BCASTS: [SimBcast; 4] = [
    SimBcast::Flat,
    SimBcast::Binomial,
    SimBcast::Ring,
    SimBcast::ScatterAllgather,
];

fn platform() -> Platform {
    Platform::grid5000()
}

type ReportBits = (u64, u64, u64, u64, u64);
type SendMultisets = Vec<Vec<(usize, usize, u64)>>;

fn bits(r: &SimReport) -> ReportBits {
    (
        r.total_time.to_bits(),
        r.comm_time.to_bits(),
        r.comp_time.to_bits(),
        r.msgs,
        r.bytes,
    )
}

fn traced(p: usize, f: impl FnOnce(&mut SimNet) -> SimReport) -> (ReportBits, SendMultisets) {
    let tracer = Tracer::with_capacity(p, 1 << 16);
    let mut net = SimNet::new(p, platform().net);
    net.attach_tracer(&tracer);
    let report = f(&mut net);
    let trace = tracer.collect();
    assert_eq!(trace.dropped, 0, "tracer overflow");
    (bits(&report), trace.per_rank_send_multisets())
}

/// The engine-parity oracle shared by every case below.
fn check(
    label: &str,
    p: usize,
    prog: &RecordedProgram,
    threaded: impl FnOnce(&mut SimNet) -> SimReport,
) {
    let gamma = platform().gamma;
    let (t_report, t_sets) = traced(p, threaded);
    let (r_report, r_sets) = traced(p, |net| replay_on(net, gamma, prog));
    assert_eq!(t_report, r_report, "{label}: reports diverged");
    assert_eq!(t_sets, r_sets, "{label}: multisets diverged");
}

/// Every error collapses to a schedule-meaningful signature: kind, the
/// stalled edge's endpoints and wire tag, and the operation. Context ids
/// are deliberately excluded — they are assigned in thread-scheduling
/// order on the threaded engine and are not part of the contract.
fn sig(e: &CommError) -> (CommErrorKind, usize, usize, u64, &'static str) {
    match e {
        CommError::Timeout { edge, op }
        | CommError::Cancelled { edge, op }
        | CommError::PeerDead { edge, op } => (e.kind(), edge.rank, edge.peer, edge.tag, *op),
        CommError::Shutdown { rank, .. } => (e.kind(), *rank, *rank, 0, "shutdown"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recorded_replay_matches_threaded_for_random_schedules(
        algo_ix in 0usize..4,
        side_pow in 1u32..4,
        n_mult in 1usize..4,
        g_pow in 0u32..4,
        bcast_ix in 0usize..4,
    ) {
        let q = 1usize << side_pow;
        let grid = GridShape::new(q, q);
        let n = q * 8 * n_mult;
        let b = 4;
        let bcast = BCASTS[bcast_ix];
        let gamma = platform().gamma;
        match algo_ix {
            0 => {
                let prog = sd::record_summa(grid, n, b, bcast, false);
                check("summa", grid.size(), &prog, |net| {
                    sd::sim_summa_on(net, gamma, grid, n, b, bcast, false)
                });
            }
            1 => {
                // Clamp the random G to one the grid can factor.
                let g = (1usize << g_pow).min(grid.size());
                let groups = HierGrid::factor_groups(grid, g)
                    .unwrap_or_else(|| GridShape::new(1, 1));
                let prog = sd::record_hsumma(grid, groups, n, b, b, bcast, bcast, false);
                check("hsumma", grid.size(), &prog, |net| {
                    sd::sim_hsumma_on(net, gamma, grid, groups, n, b, b, bcast, bcast, false)
                });
            }
            2 => {
                let prog = sd::record_cannon(q, n, false);
                check("cannon", q * q, &prog, |net| {
                    sd::sim_cannon_on(net, gamma, q, n, false)
                });
            }
            _ => {
                let prog = sd::record_fox(q, n, bcast, false);
                check("fox", q * q, &prog, |net| {
                    sd::sim_fox_on(net, gamma, q, n, bcast, false)
                });
            }
        }
    }

    /// A dropped collective fragment at a random ring position must
    /// produce the same per-rank error signatures — same kinds, same
    /// stalled edges, same wire tags — on both engines.
    #[test]
    fn random_dropped_fragment_names_the_same_edge_on_both_engines(
        victim in 0usize..4,
        nth in 0u64..3,
    ) {
        let p = 4;
        let cfg = CosmaConfig {
            decomp: BrickDecomp::new(1, 1, p),
            ..CosmaConfig::for_problem(p, 8, 8, 8)
        };
        let dst = (victim + 1) % p;
        let plan = Arc::new(
            FaultPlan::new().drop_nth(Some(victim), Some(dst), TagClass::Collective, nth),
        );
        let opts = SimRunOptions::unbounded()
            .with_deadline(1.0)
            .with_faults(Arc::clone(&plan));
        let plat = Platform::bluegene_p_effective();

        let out = SimWorld::run_with(SimNet::new(p, plat.net), plat.gamma, false, &opts, |comm| {
            cosma_program(comm, 8, 8, 8, &cfg)
        });
        let prog = sd::record_cosma(p, 8, 8, 8, &cfg);
        let rout = EventLoopSim::new(SimNet::new(p, plat.net), plat.gamma).run(&prog, &opts);

        let t_sigs: Vec<_> = out
            .results
            .iter()
            .map(|r| r.as_ref().err().map(sig))
            .collect();
        let r_sigs: Vec<_> = rout.errors.iter().map(|e| e.as_ref().map(sig)).collect();
        prop_assert_eq!(&t_sigs, &r_sigs, "error signatures diverged");
        prop_assert_eq!(out.faults_injected, rout.faults_injected);
        prop_assert_eq!(bits(&out.net.report()), bits(&rout.net.report()));
    }
}
