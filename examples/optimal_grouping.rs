//! Choosing the number of groups for a target machine — the workflow §VI
//! of the paper sketches ("the optimal number of groups ... can be easily
//! automated ... by using few iterations of HSUMMA").
//!
//! Sweeps every valid grouping of a 2048-core BlueGene/P-like platform in
//! the timing simulator, reports the best one, and compares it with the
//! analytic `G = √p` rule of thumb.
//!
//! ```sh
//! cargo run --release --example optimal_grouping
//! ```

use hsumma_repro::core::simdrive::sim_summa_sync;
use hsumma_repro::core::tuning::{best_by_comm, power_of_two_gs, sweep_groups_with};
use hsumma_repro::matrix::GridShape;
use hsumma_repro::netsim::{Platform, SimBcast};

fn main() {
    let platform = Platform::bluegene_p_effective();
    let grid = GridShape::new(32, 64); // 2048 cores
    let (n, b) = (32768usize, 256usize);
    let bcast = SimBcast::Flat;

    println!(
        "Tuning HSUMMA groups for {} ({} cores), n = {n}, b = B = {b}",
        platform.name,
        grid.size()
    );

    let summa = sim_summa_sync(&platform, grid, n, b, bcast);
    println!(
        "SUMMA baseline: total {:.3} s, comm {:.3} s\n",
        summa.total_time, summa.comm_time
    );

    let sweep = sweep_groups_with(
        &platform,
        grid,
        n,
        b,
        b,
        bcast,
        bcast,
        &power_of_two_gs(grid.size()),
        true,
    );
    println!(
        "{:>6}  {:>7}  {:>12}  {:>12}",
        "G", "I x J", "total (s)", "comm (s)"
    );
    for pt in &sweep {
        println!(
            "{:>6}  {:>3}x{:<3}  {:>12.3}  {:>12.3}",
            pt.g, pt.groups.rows, pt.groups.cols, pt.report.total_time, pt.report.comm_time
        );
    }

    let best = best_by_comm(&sweep);
    let sqrt_p = (grid.size() as f64).sqrt().round() as usize;
    let near_sqrt = sweep
        .iter()
        .min_by_key(|pt| pt.g.abs_diff(sqrt_p))
        .expect("sweep not empty");
    println!(
        "\nbest grouping: G = {} ({}x{}) -> {:.3} s comm ({:.2}x less than SUMMA)",
        best.g,
        best.groups.rows,
        best.groups.cols,
        best.report.comm_time,
        summa.comm_time / best.report.comm_time
    );
    println!(
        "rule of thumb G = sqrt(p) = {sqrt_p}: G = {} -> {:.3} s comm ({:.1}% off the sweep optimum)",
        near_sqrt.g,
        near_sqrt.report.comm_time,
        100.0 * (near_sqrt.report.comm_time / best.report.comm_time - 1.0)
    );
}
