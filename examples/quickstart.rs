//! Quickstart: multiply two matrices with HSUMMA on a 4×4 grid of rank
//! threads and check the result against a serial product.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hsumma_repro::core::testutil::reference_product;
use hsumma_repro::core::{hsumma, HsummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GridShape};
use hsumma_repro::runtime::Runtime;

fn main() {
    // Problem: C = A·B with 256×256 operands on a 4×4 processor grid,
    // arranged as 2×2 groups of 2×2 processors (G = 4).
    let n = 256;
    let grid = GridShape::new(4, 4);
    let cfg = HsummaConfig::uniform(GridShape::new(2, 2), 32);

    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);

    // Distribute the operands block-checkerboard over the grid.
    let dist = BlockDist::new(grid, n, n);
    let a_tiles = dist.scatter(&a);
    let b_tiles = dist.scatter(&b);

    // SPMD: every rank runs HSUMMA on its tiles.
    let results = Runtime::run(grid.size(), |comm| {
        let at = a_tiles[comm.rank()].clone();
        let bt = b_tiles[comm.rank()].clone();
        let c_tile = hsumma(comm, grid, n, &at, &bt, &cfg).unwrap();
        (c_tile, comm.stats())
    });

    // Reassemble and verify.
    let c_tiles: Vec<_> = results.iter().map(|(c, _)| c.clone()).collect();
    let c = dist.gather(&c_tiles);
    let want = reference_product(&a, &b);
    let err = c.max_abs_diff(&want);
    println!(
        "HSUMMA on {} ranks, n = {n}, G = {}",
        grid.size(),
        cfg.groups.size()
    );
    println!(
        "max |C - A*B| = {err:.3e}  ({})",
        if err < 1e-9 { "OK" } else { "FAILED" }
    );

    // Per-rank communication/computation split, like the paper reports.
    let total_msgs: u64 = results.iter().map(|(_, s)| s.msgs_sent).sum();
    let max_comm = results
        .iter()
        .map(|(_, s)| s.comm_seconds)
        .fold(0.0, f64::max);
    let max_comp = results
        .iter()
        .map(|(_, s)| s.comp_seconds)
        .fold(0.0, f64::max);
    println!("messages sent (all ranks): {total_msgs}");
    println!("slowest rank: {max_comm:.4} s communicating, {max_comp:.4} s computing");
    assert!(
        err < 1e-9,
        "distributed result diverged from serial reference"
    );
}
