//! §VI's closing remark, as a running program: "At the moment, we select
//! the optimal number of groups sampling over valid values. However, it
//! can be easily automated and incorporated into the implementation by
//! using few iterations of HSUMMA."
//!
//! `tuned_hsumma` samples each candidate grouping on a short prefix of
//! the computation, lets the ranks agree on the slowest-rank cost, and
//! runs the full multiply with the winner — all inside one SPMD call.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use hsumma_repro::core::testutil::reference_product;
use hsumma_repro::core::tuning::tuned_hsumma;
use hsumma_repro::core::HierGrid;
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GridShape};
use hsumma_repro::runtime::Runtime;

fn main() {
    let n = 512;
    let grid = GridShape::new(4, 4);
    let block = 32;
    let candidates: Vec<usize> = HierGrid::valid_group_counts(grid)
        .iter()
        .map(|c| c.0)
        .collect();

    println!(
        "auto-tuning HSUMMA: n = {n}, {} ranks, candidates G in {:?}",
        grid.size(),
        candidates
    );

    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);

    let t0 = std::time::Instant::now();
    let out = Runtime::run(grid.size(), |comm| {
        let (c, groups) = tuned_hsumma(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            block,
            &candidates,
            2,
        )
        .unwrap();
        (c, (groups.rows, groups.cols))
    });
    let wall = t0.elapsed().as_secs_f64();

    let tiles: Vec<_> = out.iter().map(|(c, _)| c.clone()).collect();
    let err = dist.gather(&tiles).max_abs_diff(&reference_product(&a, &b));
    let (gi, gj) = out[0].1;
    assert!(out.iter().all(|(_, g)| *g == (gi, gj)), "ranks must agree");

    println!("chosen grouping: {gi}x{gj} (G = {})", gi * gj);
    println!("sample + full multiply wall time: {wall:.3} s");
    println!(
        "max |C - A*B| = {err:.2e} ({})",
        if err < 1e-9 { "OK" } else { "FAILED" }
    );
    assert!(err < 1e-9);
}
