//! Domain scenario: solve a dense linear system `A·x = rhs` end to end
//! with the distributed kernels — the workload LU factorization exists
//! for. `A` here is the dense collocation matrix of an integral-equation
//! discretization (boundary-element-style kernel `1/(1+|i−j|/n)` plus a
//! dominant diagonal), the classic source of large dense systems in HPC.
//!
//! Pipeline: distribute A → hierarchical block LU on 16 ranks →
//! gather packed factors → forward/back substitution → residual check.
//!
//! ```sh
//! cargo run --release --example linear_solver
//! ```

use hsumma_repro::core::lu::{block_lu, LuConfig};
use hsumma_repro::matrix::factor::{trsm_left_lower_unit, unpack_lower_unit, unpack_upper};
use hsumma_repro::matrix::{gemm, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_repro::runtime::Runtime;

fn main() {
    let n = 512;
    let grid = GridShape::new(4, 4);

    // Dense kernel matrix with a dominant diagonal (well conditioned, so
    // unpivoted LU is safe — see hsumma_matrix::factor docs).
    let a = Matrix::from_fn(n, n, |i, j| {
        let base = 1.0 / (1.0 + (i as f64 - j as f64).abs() / n as f64);
        if i == j {
            base + n as f64 / 4.0
        } else {
            base
        }
    });
    let x_true = Matrix::from_fn(n, 1, |i, _| (i as f64 / n as f64).sin());
    let mut rhs = Matrix::zeros(n, 1);
    gemm(GemmKernel::Parallel, &a, &x_true, &mut rhs);

    // Distributed hierarchical LU.
    let dist = BlockDist::new(grid, n, n);
    let tiles = dist.scatter(&a);
    let cfg = LuConfig {
        block: 32,
        groups: Some(GridShape::new(2, 2)),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let out = Runtime::run(grid.size(), |comm| {
        block_lu(comm, grid, n, &tiles[comm.rank()].clone(), &cfg).unwrap()
    });
    let factor_time = t0.elapsed().as_secs_f64();
    let packed = dist.gather(&out);

    // Solve with the factors: L y = rhs, then U x = y.
    let l = unpack_lower_unit(&packed);
    let u = unpack_upper(&packed);
    let mut y = rhs.clone();
    trsm_left_lower_unit(&l, &mut y);
    let mut x = Matrix::zeros(n, 1);
    for i in (0..n).rev() {
        let mut v = y.get(i, 0);
        for k in i + 1..n {
            v -= u.get(i, k) * x.get(k, 0);
        }
        x.set(i, 0, v / u.get(i, i));
    }

    // Residual and solution error.
    let mut ax = Matrix::zeros(n, 1);
    gemm(GemmKernel::Parallel, &a, &x, &mut ax);
    let residual = ax.max_abs_diff(&rhs);
    let error = x.max_abs_diff(&x_true);

    println!("dense collocation system, n = {n}, 16 ranks, hierarchical LU (G = 4)");
    println!("factorization wall time   {factor_time:.3} s");
    println!("residual |Ax - rhs|_inf   {residual:.3e}");
    println!("error    |x - x_true|_inf {error:.3e}");
    assert!(error < 1e-8, "solver diverged");
    println!("solution verified.");
}
