//! Serving quickstart: a 4×4 rank pool answering a burst of multiply
//! jobs, with per-job reports and aggregate throughput.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use hsumma_matrix::{seeded_uniform, GridShape};
use hsumma_serve::{GemmServer, JobSpec, ServerConfig};
use std::time::Instant;

fn main() {
    // One pool of 16 rank threads, created here and reused by every job.
    let grid = GridShape::new(4, 4);
    let server = GemmServer::new(ServerConfig::new(grid)).expect("spawn rank pool");
    println!(
        "serving on a {}x{} grid ({} pooled ranks)\n",
        grid.rows,
        grid.cols,
        grid.size()
    );

    // A burst of jobs: two sizes, several of each. The planner runs once
    // per shape class; later jobs of the same class hit the plan cache.
    let sizes = [128usize, 128, 256, 128, 256, 256, 128, 256];
    let t0 = Instant::now();
    let handles: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let a = seeded_uniform(n, n, 2 * i as u64);
            let b = seeded_uniform(n, n, 2 * i as u64 + 1);
            server
                .submit(JobSpec::square(n), a, b)
                .expect("burst fits the default queue")
        })
        .collect();

    println!("job    n  plan                        cached   wall (ms)   sent (MiB)");
    for (h, &n) in handles.iter().zip(&sizes) {
        let out = h.wait().expect("job succeeds");
        let r = &out.report;
        let sent: u64 = r.stats.iter().map(|s| s.bytes_sent).sum();
        println!(
            "{:>3}  {:>3}  {:<26}  {:<6}  {:>9.2}   {:>9.2}",
            r.job_id,
            n,
            r.plan_desc,
            r.plan_cached,
            r.wall.as_secs_f64() * 1e3,
            sent as f64 / (1024.0 * 1024.0),
        );
    }
    let total = t0.elapsed().as_secs_f64();

    let planner = server.planner_stats();
    println!(
        "\n{} jobs in {:.3}s ({:.1} jobs/s) — planner: {} misses, {} hits, {} simulator runs",
        sizes.len(),
        total,
        sizes.len() as f64 / total,
        planner.misses,
        planner.hits,
        planner.sims_run,
    );
}
