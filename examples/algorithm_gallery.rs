//! Gallery: run every distributed multiplication algorithm in the crate —
//! Cannon (1969), Fox (1987), SUMMA (1997) and HSUMMA (2013, the paper) —
//! on the same 4×4 grid and the same operands, verify they agree, and
//! compare their measured communication behaviour.
//!
//! ```sh
//! cargo run --release --example algorithm_gallery
//! ```

use hsumma_repro::core::testutil::reference_product;
use hsumma_repro::core::{cannon, fox, hsumma, summa, HsummaConfig, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GemmKernel, GridShape, Matrix};
use hsumma_repro::runtime::{Comm, CommStats, Runtime};

fn run_algo(
    name: &str,
    grid: GridShape,
    n: usize,
    a: &Matrix,
    b: &Matrix,
    want: &Matrix,
    algo: impl Fn(&Comm, Matrix, Matrix) -> Matrix + Send + Sync,
) {
    let dist = BlockDist::new(grid, n, n);
    let a_tiles = dist.scatter(a);
    let b_tiles = dist.scatter(b);
    let out = Runtime::run(grid.size(), |comm| {
        let at = a_tiles[comm.rank()].clone();
        let bt = b_tiles[comm.rank()].clone();
        comm.reset_stats();
        let c = algo(comm, at, bt);
        (c, comm.stats())
    });
    let tiles: Vec<Matrix> = out.iter().map(|(c, _)| c.clone()).collect();
    let c = dist.gather(&tiles);
    let err = c.max_abs_diff(want);
    let stats = out
        .iter()
        .map(|(_, s)| s.clone())
        .fold(CommStats::default(), |acc, s| acc.max_times(&s));
    println!(
        "{name:>8}: max err {err:.2e}  msgs {:>5}  comm {:.4} s  comp {:.4} s",
        stats.msgs_sent, stats.comm_seconds, stats.comp_seconds
    );
    assert!(err < 1e-9, "{name} diverged");
}

fn main() {
    let n = 512;
    let grid = GridShape::new(4, 4);
    let a = seeded_uniform(n, n, 11);
    let b = seeded_uniform(n, n, 22);
    let want = reference_product(&a, &b);
    println!("C = A*B, n = {n}, 16 ranks on a 4x4 grid\n");

    run_algo("cannon", grid, n, &a, &b, &want, |comm, at, bt| {
        cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
    });
    run_algo("fox", grid, n, &a, &b, &want, |comm, at, bt| {
        fox(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
    });
    let scfg = SummaConfig {
        block: 32,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };
    run_algo("summa", grid, n, &a, &b, &want, move |comm, at, bt| {
        summa(comm, grid, n, &at, &bt, &scfg).unwrap()
    });
    let hcfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(2, 2), 32)
    };
    run_algo("hsumma", grid, n, &a, &b, &want, move |comm, at, bt| {
        hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
    });

    println!("\nall four algorithms agree with the serial reference.");
}
