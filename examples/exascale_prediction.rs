//! What-if analysis for a machine you describe on the command line —
//! the §V-C exascale prediction generalized into a tool.
//!
//! ```sh
//! cargo run --release --example exascale_prediction -- \
//!     [alpha_s] [beta_s_per_byte] [n] [p] [b]
//! ```
//!
//! With no arguments, uses the paper's exascale roadmap parameters
//! (`α = 500 ns`, 100 GB/s links, `n = 2²²`, `p = 2²⁰`, `b = 256`).

use hsumma_repro::model::predict::{best_point, power_of_two_gs, sweep_groups};
use hsumma_repro::model::{classify_regime, BcastModel, ModelParams, Regime};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("arguments must be numbers"))
        .collect();
    let defaults = ModelParams::exascale();
    let alpha = args.first().copied().unwrap_or(defaults.alpha);
    let beta = args.get(1).copied().unwrap_or(defaults.beta);
    let n = args.get(2).copied().unwrap_or((1u64 << 22) as f64);
    let p = args.get(3).copied().unwrap_or((1u64 << 20) as f64);
    let b = args.get(4).copied().unwrap_or(256.0);
    let params = ModelParams {
        alpha,
        beta,
        gamma: defaults.gamma,
    };

    println!("Machine: alpha = {alpha:.3e} s, beta = {beta:.3e} s/B");
    println!("Problem: n = {n}, p = {p}, b = B = {b}\n");

    // Step 1: which regime are we in? (Eqs. 10/11)
    let regime = classify_regime(alpha, beta, n, p, b);
    match regime {
        Regime::InteriorMinimum => println!(
            "alpha/beta > 2nb/p: latency-dominated -> HSUMMA should beat SUMMA, optimum near G = sqrt(p) = {:.0}",
            p.sqrt()
        ),
        Regime::InteriorMaximum => println!(
            "alpha/beta < 2nb/p: bandwidth-dominated -> run HSUMMA with G = 1 or G = p (ties SUMMA, never loses)"
        ),
        Regime::Degenerate => println!("exactly on the regime boundary: G does not matter"),
    }

    // Step 2: quantify over the sweep.
    let sweep = sweep_groups(
        &params,
        BcastModel::VanDeGeijn,
        n,
        p,
        b,
        &power_of_two_gs(p),
    );
    println!(
        "\n{:>10}  {:>14}  {:>14}",
        "G", "HSUMMA comm(s)", "SUMMA comm(s)"
    );
    for pt in sweep.iter().step_by(2) {
        println!(
            "{:>10}  {:>14.4}  {:>14.4}",
            pt.g,
            pt.hsumma.comm(),
            pt.summa.comm()
        );
    }
    let best = best_point(&sweep);
    println!(
        "\npredicted best: G = {} -> {:.4} s comm vs SUMMA {:.4} s ({:.2}x)",
        best.g,
        best.hsumma.comm(),
        best.summa.comm(),
        best.summa.comm() / best.hsumma.comm()
    );
}
