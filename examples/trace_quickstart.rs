//! Tracing quickstart: run HSUMMA on 16 rank threads (G = 4) with the
//! tracer attached, export a Chrome-trace timeline, and print the
//! critical path and per-pivot-step breakdown.
//!
//! ```sh
//! cargo run --release --example trace_quickstart
//! ```
//!
//! Open `hsumma-trace.json` at `chrome://tracing` or
//! <https://ui.perfetto.dev> to see one track per rank, nested
//! collective/step spans, and flow arrows for every message.

use hsumma_repro::core::{hsumma, HsummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockDist, GridShape};
use hsumma_repro::runtime::Runtime;
use hsumma_repro::trace::{render_breakdown, Tracer};

fn main() {
    // Problem: C = A·B with 256×256 operands on a 4×4 grid of rank
    // threads, arranged as 2×2 groups of 2×2 processors (G = 4).
    let n = 256;
    let grid = GridShape::new(4, 4);
    let cfg = HsummaConfig::uniform(GridShape::new(2, 2), 32);

    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let dist = BlockDist::new(grid, n, n);
    let a_tiles = dist.scatter(&a);
    let b_tiles = dist.scatter(&b);

    // One ring buffer per rank; `Runtime::run` without a tracer is the
    // zero-overhead untraced path.
    let tracer = Tracer::new(grid.size());
    Runtime::run_traced(grid.size(), &tracer, |comm| {
        let at = a_tiles[comm.rank()].clone();
        let bt = b_tiles[comm.rank()].clone();
        hsumma(comm, grid, n, &at, &bt, &cfg).unwrap()
    });

    let trace = tracer.collect();
    println!(
        "collected {} events from {} ranks ({} dropped)",
        trace.events.len(),
        trace.ranks,
        trace.dropped
    );

    // The longest dependency chain through compute spans and messages:
    // where the run's makespan actually went.
    println!("{}", trace.critical_path().render());

    // Per-pivot-step communication/computation split across ranks.
    println!("{}", render_breakdown(&trace.step_breakdown()));

    let path = "hsumma-trace.json";
    std::fs::write(path, trace.to_chrome_json()).expect("write trace");
    println!("timeline written to {path} — open at https://ui.perfetto.dev");
}
