//! The paper's §VI future-work list, implemented and demonstrated:
//!
//! 1. **block-cyclic distribution** — `summa_cyclic` runs on ScaLAPACK-
//!    style cyclically dealt tiles and its rotating pivot owners overlap
//!    consecutive steps better (quantified in simulation);
//! 2. **communication/computation overlap** — `summa_overlap` and
//!    `hsumma_overlap` prefetch panels one step ahead;
//! 3. **more than two hierarchy levels** — `sim_summa_hier` sweeps the
//!    hierarchy depth.
//!
//! ```sh
//! cargo run --release --example future_work
//! ```

use hsumma_repro::core::cyclic::{sim_summa_cyclic, summa_cyclic};
use hsumma_repro::core::multilevel::sim_summa_hier_with;
use hsumma_repro::core::overlap::{hsumma_overlap, summa_overlap};
use hsumma_repro::core::simdrive::{sim_summa, sim_summa_sync};
use hsumma_repro::core::testutil::{distributed_product, reference_product};
use hsumma_repro::core::{HsummaConfig, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, BlockCyclicDist, GemmKernel, GridShape};
use hsumma_repro::netsim::{Platform, SimBcast};
use hsumma_repro::runtime::Runtime;

fn main() {
    let n = 256;
    let grid = GridShape::new(4, 4);
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let want = reference_product(&a, &b);
    let scfg = SummaConfig {
        block: 32,
        kernel: GemmKernel::Blocked,
        ..Default::default()
    };

    // --- 1. block-cyclic SUMMA, executable -----------------------------
    let dist = BlockCyclicDist::new(grid, n, n, 32);
    let at = dist.scatter(&a);
    let bt = dist.scatter(&b);
    let ct = Runtime::run(grid.size(), |comm| {
        summa_cyclic(
            comm,
            grid,
            n,
            &at[comm.rank()].clone(),
            &bt[comm.rank()].clone(),
            &scfg,
        )
        .unwrap()
    });
    let err = dist.gather(&ct).max_abs_diff(&want);
    println!("1. block-cyclic SUMMA          max err {err:.2e}");

    // ...and its overlap benefit at scale, in simulation.
    let platform = Platform::bluegene_p_effective();
    let sim_grid = GridShape::new(16, 16);
    let blocked = sim_summa(&platform, sim_grid, 2048, 64, SimBcast::Flat);
    let cyclic = sim_summa_cyclic(&platform, sim_grid, 2048, 64, SimBcast::Flat, false);
    println!(
        "   rotating pivot owners (256 simulated cores): {:.3} s -> {:.3} s makespan ({:.1}% better)",
        blocked.total_time,
        cyclic.total_time,
        100.0 * (1.0 - cyclic.total_time / blocked.total_time)
    );

    // --- 2. overlap -------------------------------------------------------
    let by_overlap = distributed_product(grid, n, &a, &b, |comm, a_t, b_t| {
        summa_overlap(comm, grid, n, &a_t, &b_t, &scfg).unwrap()
    });
    println!(
        "2. lookahead SUMMA             max err {:.2e}",
        by_overlap.max_abs_diff(&want)
    );
    let hcfg = HsummaConfig {
        kernel: GemmKernel::Blocked,
        ..HsummaConfig::uniform(GridShape::new(2, 2), 32)
    };
    let by_hoverlap = distributed_product(grid, n, &a, &b, |comm, a_t, b_t| {
        hsumma_overlap(comm, grid, n, &a_t, &b_t, &hcfg).unwrap()
    });
    println!(
        "   lookahead HSUMMA            max err {:.2e}",
        by_hoverlap.max_abs_diff(&want)
    );
    let free = sim_summa(&platform, sim_grid, 2048, 64, SimBcast::Flat);
    let sync = sim_summa_sync(&platform, sim_grid, 2048, 64, SimBcast::Flat);
    println!(
        "   simulated overlap benefit: {:.3} s blocking -> {:.3} s overlapped ({:.1}% hidden)",
        sync.total_time,
        free.total_time,
        100.0 * (1.0 - free.total_time / sync.total_time)
    );

    // --- 3. deeper hierarchies -------------------------------------------
    println!("3. hierarchy depth sweep (256 simulated cores, measured profile):");
    for (label, levels) in [
        ("1 level ", vec![16usize]),
        ("2 levels", vec![4, 4]),
        ("3 levels", vec![2, 2, 4]),
        ("4 levels", vec![2, 2, 2, 2]),
    ] {
        let r = sim_summa_hier_with(&platform, sim_grid, 2048, 64, SimBcast::Flat, &levels, true);
        println!("   {label} {:?}: comm {:.3} s", levels, r.comm_time);
    }
}
