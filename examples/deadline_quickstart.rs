//! Quickstart for the failure path: deadlines, fault injection, and the
//! diagnosed errors they produce — on the GEMM service, the raw threaded
//! runtime, and the network simulator (same plan, same outcome).
//!
//! ```sh
//! cargo run --release --example deadline_quickstart
//! ```

use hsumma_repro::core::{summa, PhantomMat, SummaConfig};
use hsumma_repro::matrix::{seeded_uniform, GemmKernel, GridShape};
use hsumma_repro::netsim::{Platform, SimNet, SimRunOptions, SimWorld};
use hsumma_repro::trace::{FaultPlan, TagClass};
use hsumma_serve::{GemmServer, JobError, JobSpec, PlanHint, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let grid = GridShape::new(2, 2);
    let n = 64;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);

    // --- 1. a healthy job under a deadline: pay-as-you-go ---------------
    let server = GemmServer::new(ServerConfig::new(grid)).unwrap();
    let out = server
        .submit(
            JobSpec::square(n).with_deadline(Duration::from_secs(10)),
            a.clone(),
            b.clone(),
        )
        .unwrap()
        .wait()
        .expect("a healthy job beats a 10 s deadline");
    println!(
        "1. healthy job:   {:?} in {:.1} ms (timeouts {}, faults {})",
        out.report.outcome,
        out.report.wall.as_secs_f64() * 1e3,
        out.report.timeouts,
        out.report.faults_injected
    );

    // --- 2. the same job with a dropped broadcast -----------------------
    // Drop the first collective-class message rank 0 sends to rank 1: the
    // step-0 A-panel broadcast. Rank 1 stalls; the 200 ms deadline turns
    // the stall into a diagnosed timeout naming the stalled edge, and the
    // pool survives to serve the next job.
    let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0));
    let cfg = SummaConfig {
        block: 16,
        kernel: GemmKernel::Naive,
        ..SummaConfig::default()
    };
    let hint = PlanHint::Force(hsumma_repro::core::PlannedAlgo::Summa(cfg));
    let err = server
        .submit(
            JobSpec::square(n)
                .with_hint(hint)
                .with_deadline(Duration::from_millis(200))
                .with_faults(Arc::clone(&plan)),
            a.clone(),
            b.clone(),
        )
        .unwrap()
        .wait()
        .expect_err("the dropped broadcast must fail the job");
    match &err {
        JobError::Timeout { detail, report } => {
            println!("2. dropped bcast: Timeout — {detail}");
            println!(
                "   report: outcome {:?}, {} rank(s) timed out, {} fault(s) injected",
                report.outcome, report.timeouts, report.faults_injected
            );
        }
        other => println!("2. unexpected failure shape: {other:?}"),
    }

    // ...and the pool keeps serving.
    let again = server
        .submit(JobSpec::square(n), a, b)
        .unwrap()
        .wait()
        .expect("the pool survives a timed-out job");
    println!(
        "3. next job:      {:?} — pool still serving",
        again.report.outcome
    );
    server.shutdown();

    // --- 3. the same plan replayed on the simulator ---------------------
    // Fault plans are portable across substrates: virtual clocks hit the
    // same per-rank outcome kinds as the wall clock above.
    let platform = Platform::bluegene_p_effective();
    let tile = PhantomMat {
        rows: n / grid.rows,
        cols: n / grid.cols,
    };
    let opts = SimRunOptions::unbounded()
        .with_deadline(1.0)
        .with_faults(plan);
    let sim = SimWorld::run_with(
        SimNet::new(grid.size(), platform.net),
        platform.gamma,
        false,
        &opts,
        |comm| {
            summa(
                comm,
                grid,
                n,
                &tile,
                &tile,
                &SummaConfig {
                    block: 16,
                    ..SummaConfig::default()
                },
            )
            .map(|_| ())
        },
    );
    println!(
        "4. same plan, simulated ranks ({} fault injected):",
        sim.faults_injected
    );
    for (rank, r) in sim.results.iter().enumerate() {
        match r {
            Ok(()) => println!("   rank {rank}: completed"),
            Err(e) => println!("   rank {rank}: {e}"),
        }
    }
}
