//! Sparse quickstart: the distributed sparse subsystem end to end —
//! CSR operands multiplied by the generic 2-D SpGEMM schedule on both
//! substrates, priced by the nnz-aware scoreboard, and served as jobs.
//!
//! ```sh
//! cargo run --release --example sparse_quickstart
//! ```

use hsumma_repro::matrix::sparse::{seeded_sparse, spgemm, CsrMatrix};
use hsumma_repro::matrix::GridShape;
use hsumma_repro::model::advise_sparse;
use hsumma_repro::netsim::spmd::SimWorld;
use hsumma_repro::netsim::{Platform, SimNet};
use hsumma_repro::runtime::Runtime;
use hsumma_repro::sparse::{scatter_csr, spgemm_2d, PhantomSparse, SparseConfig};
use hsumma_repro::trace::{Trace, Tracer};
use hsumma_serve::{sparsity_profile, GemmServer, JobSpec, ServerConfig};
use std::sync::Arc;

fn main() {
    let grid = GridShape::new(2, 2);
    let n = 64;
    let cfg = SparseConfig {
        block: 16,
        ..SparseConfig::default()
    };

    // Two 5%-filled operands and the serial Gustavson reference.
    let a = seeded_sparse(n, n, 0.05, 1);
    let b = seeded_sparse(n, n, 0.05, 2);
    let want = spgemm(&a, &b);
    println!(
        "operands: {n}x{n} CSR, nnz(A)={}, nnz(B)={}, reference nnz(C)={}",
        a.nnz(),
        b.nnz(),
        want.nnz()
    );

    // 1. The real substrate: CSR tiles on 4 rank threads, the A and B
    //    pivot panels broadcast at their exact serialized wire size.
    let at: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &a).into_iter().map(Arc::new).collect();
    let bt: Vec<Arc<CsrMatrix>> = scatter_csr(grid, &b).into_iter().map(Arc::new).collect();
    let tracer = Tracer::new(grid.size());
    let tiles = {
        let (at, bt, cfg) = (&at, &bt, &cfg);
        Runtime::run_traced(grid.size(), &tracer, move |comm| {
            let r = comm.rank();
            spgemm_2d(comm, grid, n, &at[r], &bt[r], cfg).unwrap()
        })
    };
    let real: Trace = tracer.collect();
    let c = hsumma_repro::sparse::gather_csr(
        grid,
        &tiles
            .into_iter()
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()))
            .collect::<Vec<_>>(),
    );
    println!(
        "threaded spgemm_2d: max |C - ref| = {:.2e}",
        c.max_abs_diff(&want)
    );

    // 2. The simulated substrate: the *same* schedule over virtual
    //    clocks, holding only the nonzero patterns (`PhantomSparse`) —
    //    yet moving byte-for-byte the messages the real run moved.
    let ap: Vec<PhantomSparse> = scatter_csr(grid, &a)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let bp: Vec<PhantomSparse> = scatter_csr(grid, &b)
        .iter()
        .map(PhantomSparse::from_csr)
        .collect();
    let sim_tracer = Tracer::new(grid.size());
    let mut net = SimNet::new(grid.size(), Platform::grid5000().net);
    net.attach_tracer(&sim_tracer);
    let (net, _) = {
        let (ap, bp, cfg) = (&ap, &bp, &cfg);
        SimWorld::run(net, Platform::grid5000().gamma, false, move |comm| {
            let r = comm.rank();
            spgemm_2d(comm, grid, n, &ap[r], &bp[r], cfg).unwrap();
        })
    };
    let elapsed = net.elapsed();
    let sim: Trace = sim_tracer.collect();
    assert_eq!(
        real.per_rank_send_multisets(),
        sim.per_rank_send_multisets(),
        "substrate parity"
    );
    println!(
        "simulated spgemm_2d on Grid'5000: {:.3} ms virtual, identical \
         per-rank (src, dst, bytes) multisets",
        elapsed * 1e3
    );

    // 3. The nnz-aware scoreboard: at 5% fill the CSR schedule wins; at
    //    full density the dense SUMMA schedule should.
    let params = hsumma_repro::model::ModelParams {
        alpha: Platform::grid5000().net.alpha,
        beta: Platform::grid5000().net.beta,
        gamma: Platform::grid5000().gamma,
    };
    for density in [0.05, 1.0] {
        let sa = seeded_sparse(n, n, density, 3);
        let sb = seeded_sparse(n, n, density, 4);
        let advice = advise_sparse(
            &params,
            n as f64,
            grid.size() as f64,
            cfg.block as f64,
            &sparsity_profile(&sa, 64),
            &sparsity_profile(&sb, 64),
        );
        println!(
            "scoreboard at density {density:.2}: {:?} (spgemm {:.2e}s vs dense {:.2e}s)",
            advice.choice,
            advice.spgemm.total(),
            advice.dense.total()
        );
    }

    // 4. The service face: an SpGEMM job through the same pool,
    //    planner, deadline and fault machinery dense jobs use.
    let server = GemmServer::new(ServerConfig::new(grid)).expect("spawn rank pool");
    let out = server
        .submit_spgemm(JobSpec::spgemm(n), a, b)
        .expect("queue accepts")
        .wait()
        .expect("job succeeds");
    println!(
        "served job {}: plan {}, wall {:.2} ms, max |C - ref| = {:.2e}",
        out.report.job_id,
        out.report.plan_desc,
        out.report.wall.as_secs_f64() * 1e3,
        out.c.sparse().max_abs_diff(&want)
    );
}
