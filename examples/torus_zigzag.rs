//! The "zigzags" of Fig. 8: group layouts interact with the torus.
//!
//! The paper observes non-monotone bumps in HSUMMA's time-vs-G curve on
//! BlueGene/P and attributes them to "mapping communication layouts to
//! network hardware" (citing Balaji et al.), noting the bumps "can be
//! eliminated by taking platform parameters into account while grouping".
//!
//! This example reproduces the mechanism on the simulator's 3-D torus:
//!
//! * sweep G with a *chain* (neighbour-to-neighbour) broadcast, whose
//!   cost directly reflects how far apart communicator members sit on
//!   the torus — different group shapes produce visibly different hop
//!   penalties (the zigzag);
//! * rerun the same sweep with a *scrambled* rank→torus mapping, showing
//!   that a bad mapping inflates exactly the same algorithm.
//!
//! ```sh
//! cargo run --release --example torus_zigzag
//! ```

use hsumma_repro::core::grid::HierGrid;
use hsumma_repro::core::simdrive::sim_hsumma_on;
use hsumma_repro::matrix::GridShape;
use hsumma_repro::netsim::topology::Topology;
use hsumma_repro::netsim::{Platform, SimBcast, SimNet, Torus3D};

/// A torus seen through a deterministic pseudo-random rank permutation —
/// the "job scheduler gave us scattered nodes" scenario.
struct ScrambledTorus {
    torus: Torus3D,
    perm: Vec<usize>,
}

impl ScrambledTorus {
    fn new(torus: Torus3D) -> Self {
        let p = torus.size();
        let mut perm: Vec<usize> = (0..p).collect();
        // Deterministic LCG-ish shuffle: enough to destroy locality.
        let mut state = 0x2545f491u64;
        for i in (1..p).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        ScrambledTorus { torus, perm }
    }
}

impl Topology for ScrambledTorus {
    fn extra_latency(&self, src: usize, dst: usize) -> f64 {
        self.torus.extra_latency(self.perm[src], self.perm[dst])
    }

    fn size(&self) -> usize {
        self.torus.size()
    }
}

fn main() {
    let platform = Platform::bluegene_p();
    let grid = GridShape::new(32, 32); // 1024 cores -> one BG/P rack
    let (n, b) = (16384usize, 128usize);
    let bcast = SimBcast::Ring; // chain: cost tracks neighbour distance
    let hop = 1.5e-6; // per-hop latency, same order as alpha

    println!(
        "HSUMMA G sweep on {} cores: flat vs torus vs scrambled-torus (chain bcast)",
        grid.size()
    );
    println!(
        "{:>6}  {:>7}  {:>12}  {:>12}  {:>12}",
        "G", "I x J", "flat (s)", "torus (s)", "scrambled (s)"
    );

    let mut torus_ratios = Vec::new();
    for g in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let Some(groups) = HierGrid::factor_groups(grid, g) else {
            continue;
        };
        let run = |net: &mut SimNet| {
            sim_hsumma_on(
                net,
                platform.gamma,
                grid,
                groups,
                n,
                b,
                b,
                bcast,
                bcast,
                true,
            )
        };
        let flat = run(&mut SimNet::new(grid.size(), platform.net));
        let torus = run(&mut SimNet::with_topology(
            grid.size(),
            platform.net,
            Box::new(Torus3D::cubic(grid.size(), hop)),
        ));
        let scrambled = run(&mut SimNet::with_topology(
            grid.size(),
            platform.net,
            Box::new(ScrambledTorus::new(Torus3D::cubic(grid.size(), hop))),
        ));
        torus_ratios.push(torus.comm_time / flat.comm_time);
        println!(
            "{:>6}  {:>3}x{:<3}  {:>12.4}  {:>12.4}  {:>12.4}",
            g, groups.rows, groups.cols, flat.comm_time, torus.comm_time, scrambled.comm_time
        );
    }

    let min = torus_ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max = torus_ratios.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\ntorus/flat overhead ranges {:.2}x..{:.2}x across group shapes -> the",
        min, max
    );
    println!("layout-dependent bumps behind the paper's zigzags; a scrambled mapping");
    println!("(bad node allocation) inflates every shape further.");
}
