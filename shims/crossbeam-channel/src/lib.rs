//! Std-only stand-in for `crossbeam-channel`.
//!
//! The runtime only needs an unbounded channel with cloneable senders and
//! a blocking/non-blocking receiver — exactly what `std::sync::mpsc`
//! provides (its `Sender` has been `Sync` since Rust 1.72). This shim
//! re-exports that surface under crossbeam's names so the offline build
//! needs no external crate.

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half of an unbounded channel; cloneable, never blocks.
pub struct Sender<T> {
    inner: std::sync::mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Deposits a value. Errors only when the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: std::sync::mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives (or all senders disconnect).
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Returns immediately with whatever is available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Blocks until a value arrives, the timeout elapses, or all senders
    /// disconnect.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }
}

/// Creates an unbounded channel pair.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn try_recv_empty_then_full() {
        let (tx, rx) = unbounded::<u8>();
        assert!(rx.try_recv().is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1u8).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(100)),
            Ok(7)
        );
    }
}
