//! Std-only stand-in for `criterion`.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and running
//! without network access. The statistical machinery is replaced by a
//! fixed-sample mean/min report on stderr-free stdout: each benchmark is
//! warmed up once and then timed for `sample_size` iterations. Good
//! enough to eyeball regressions locally; the real perf record for this
//! repo is written by the `kernel_shootout` bin, not these targets.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    min_secs: f64,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one
    /// warm-up call) and records mean/min seconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            total += dt;
            min = min.min(dt);
        }
        self.mean_secs = total / self.samples as f64;
        self.min_secs = min;
    }
}

/// Throughput annotation; reported as elements or bytes per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_secs: 0.0,
            min_secs: 0.0,
        };
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_secs: 0.0,
            min_secs: 0.0,
        };
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_secs > 0.0 => {
                format!("  {:>12.3} Melem/s", n as f64 / b.mean_secs / 1e6)
            }
            Some(Throughput::Bytes(n)) if b.mean_secs > 0.0 => {
                format!(
                    "  {:>12.3} MiB/s",
                    n as f64 / b.mean_secs / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} mean {:>12.3} µs   min {:>12.3} µs{}",
            self.name,
            id.id,
            b.mean_secs * 1e6,
            b.min_secs * 1e6,
            rate
        );
        self.criterion.benchmarks_run += 1;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// CLI-args hook kept for API parity; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 30,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        // one warmup + three samples
        assert_eq!(runs, 4);
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
    }
}
