//! Std-only stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace-local
//! shim provides the exact subset of the `rand 0.8` API the repository
//! uses: `StdRng::seed_from_u64` and `Rng::gen_range` over primitive
//! ranges. The generator is SplitMix64 — statistically fine for test-data
//! generation, deterministic across platforms (which the integration
//! tests rely on), and obviously *not* cryptographic.

use std::ops::Range;

/// Sampling support for `Rng::gen_range`, implemented for the primitive
/// half-open ranges the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small test ranges used
                // here (span ≪ 2^64).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Random-number generator interface: a 64-bit word source plus the
/// derived sampling helpers.
pub trait Rng {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (`rand`'s `gen_range`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seedable construction (`rand`'s `SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for
    /// `rand::rngs::StdRng`; same seed → same stream, on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let i: i32 = rng.gen_range(-7i32..-2);
            assert!((-7..-2).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
