//! Std-only stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`proptest!`] macro over integer/float range strategies,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are sampled from a deterministic per-test generator (seeded by
//! the test's module path and name), so failures reproduce exactly across
//! runs and machines. There is no shrinking: the failing case's sampled
//! values are reported via the assertion message instead.

use std::ops::Range;

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // fast while still sweeping each range well.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 stream seeded from the test's fully qualified name —
    /// deterministic, so every run replays the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies: ranges (half-open and inclusive)
    //! and tuples of strategies.

    use super::test_runner::TestRng;
    use super::Range;
    use std::ops::RangeInclusive;

    /// A source of values for one property argument.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;

    /// Strategy yielding `Vec`s of `element`-drawn values with a length
    /// sampled from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface (`use proptest::prelude::*`).
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop::` path alias real proptest's prelude provides.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property-test entry point. Each contained `#[test] fn name(arg in
/// strategy, ...) { body }` expands to a normal test that samples its
/// arguments `cases` times from deterministic ranges and runs the body
/// for each case. Failing assertions report the sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let mut __case_desc = String::new();
                $(__case_desc.push_str(&format!("{} = {:?} ", stringify!($arg), $arg));)+
                let __run = || -> () { $body };
                // Let the sampled arguments reach the panic message of any
                // failing assertion inside the body.
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {} of {} failed for: {}",
                        __case + 1, __cfg.cases, __case_desc
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that participates in the property-test protocol.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that participates in the property-test protocol.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("x::z");
        let _ = c.next_u64(); // different name, different stream (overwhelmingly)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, s in -5i32..-1, x in 0.0f64..2.5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-5..-1).contains(&s));
            prop_assert!((0.0..2.5).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn configured_case_count_runs(a in 0u64..10, b in 0u64..10) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn inclusive_tuple_and_vec_strategies(
            pairs in prop::collection::vec((0usize..4, -2i8..=2), 0..10),
            hi in 7u32..=7,
        ) {
            prop_assert!(pairs.len() < 10);
            for (i, v) in pairs {
                prop_assert!(i < 4 && (-2..=2).contains(&v));
            }
            prop_assert_eq!(hi, 7); // single-point inclusive range
        }
    }
}
