//! Std-only stand-in for `rayon`.
//!
//! Implements the slice-parallelism subset the GEMM kernels use —
//! `par_chunks_mut(..).enumerate().for_each(..)` — with `std::thread::scope`
//! instead of a work-stealing pool. Chunks are dealt round-robin to one
//! scoped thread per available core, which is an even split for the
//! near-uniform chunk costs the kernels produce. No global pool, no
//! dependencies.

use std::thread;

/// Number of worker threads parallel operations fan out to (rayon's
/// `current_num_threads`): the machine's available parallelism.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel iterator over mutable, non-overlapping slice chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

/// [`ParChunksMut`] with the chunk index attached, mirroring
/// `rayon`'s `enumerate()` adapter.
pub struct EnumerateParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

/// Deals `items` round-robin to up to [`current_num_threads`] scoped
/// threads and applies `f`. Runs inline when only one worker is useful.
fn drive<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let mut queues: Vec<Vec<I>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].push(item);
    }
    let f = &f;
    thread::scope(|s| {
        for queue in queues {
            s.spawn(move || {
                for item in queue {
                    f(item);
                }
            });
        }
    });
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attaches the chunk index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { inner: self }
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        drive(self.slice.chunks_mut(self.chunk).collect(), f);
    }
}

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let items: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk)
            .enumerate()
            .collect();
        drive(items, f);
    }
}

/// Extension trait adding `par_chunks_mut` to slices (rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into non-overlapping chunks of `chunk` elements
    /// (last may be shorter) to be processed in parallel.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk }
    }
}

pub mod prelude {
    //! Glob-import surface (`use rayon::prelude::*`).
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_touches_every_chunk() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_gives_chunk_indices() {
        let mut v = vec![0usize; 257];
        v.par_chunks_mut(32).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        for (pos, &x) in v.iter().enumerate() {
            assert_eq!(x, pos / 32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = [1.0f64; 8];
        v.par_chunks_mut(100).for_each(|c| c[0] = 2.0);
        assert_eq!(v[0], 2.0);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
