//! Spawning and joining rank threads.

use crate::comm::Comm;
use crate::error::RuntimeError;
use crate::message::{Envelope, JobCtl, Mailbox, MailboxSender, POISON_CTX};
use hsumma_trace::{FaultPlan, FaultState, Tracer};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Per-job failure policy for a world launch: an optional wall-clock
/// budget (measured from launch; every blocking wait observes it) and an
/// optional deterministic [`FaultPlan`] injected at every rank's send
/// path. `JobOptions::default()` is the clean unbounded run.
#[derive(Clone, Default)]
pub struct JobOptions {
    /// Wall-clock budget for the whole job. A rank still blocked when it
    /// expires gets `CommError::Timeout` naming the stalled edge.
    pub deadline: Option<Duration>,
    /// Fault plan replayed at the send path of every rank.
    pub faults: Option<Arc<FaultPlan>>,
}

impl JobOptions {
    /// Clean, unbounded options.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Sets the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Delivers a poison envelope (at `epoch`) to every peer of `rank`, so
/// ranks blocked in a receive on it fail fast instead of hanging.
pub(crate) fn poison_peers(senders: &[MailboxSender], rank: usize, epoch: u64) {
    let members: Vec<usize> = (0..senders.len()).collect();
    poison_members(senders, &members, rank, epoch);
}

/// Like [`poison_peers`] but scoped to a member subset: a rank dying
/// inside a carved sub-pool poisons only its *own job's* members, so a
/// sibling sub-pool's concurrently running job never even sees a stale
/// envelope from the failure (isolation by construction, not just by
/// epoch filtering).
pub(crate) fn poison_members(
    senders: &[MailboxSender],
    members: &[usize],
    rank: usize,
    epoch: u64,
) {
    for &peer in members {
        if peer != rank {
            senders[peer].deliver(Envelope {
                ctx: POISON_CTX,
                src: rank,
                tag: 0,
                epoch,
                not_before: None,
                payload: Box::new(()),
            });
        }
    }
}

/// Picks the most informative panic out of a crashed world: the first
/// failure that is not a secondary poison cascade — neither the legacy
/// "peer panicked" message nor an unwrapped `CommError::PeerDead`
/// (whose Display says "died while rank …"; an `unwrap` shows the Debug
/// form, `PeerDead { … }`).
pub(crate) fn primary_panic(panics: &[(usize, String)]) -> (usize, String) {
    panics
        .iter()
        .find(|(_, m)| {
            !m.contains("panicked while this rank was communicating")
                && !m.contains("died while rank")
                && !m.contains("PeerDead")
        })
        .unwrap_or(&panics[0])
        .clone()
}

/// Stringifies a panic payload for error reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
        .to_owned()
}

/// Entry point of the runtime: maps `p` ranks onto `p` OS threads.
///
/// This plays the role of `mpirun`: it wires every rank's mailbox to every
/// other rank, runs the same function on all ranks (SPMD), and collects
/// their return values in rank order.
pub struct Runtime;

impl Runtime {
    /// Runs `f` on `p` ranks and returns their results indexed by rank.
    ///
    /// ```
    /// use hsumma_runtime::Runtime;
    ///
    /// // A 4-rank ring: everyone learns its left neighbour's rank.
    /// let out = Runtime::run(4, |comm| {
    ///     let next = (comm.rank() + 1) % comm.size();
    ///     let prev = (comm.rank() + comm.size() - 1) % comm.size();
    ///     comm.send(next, 0, comm.rank()).unwrap();
    ///     comm.recv::<usize>(prev, 0).unwrap()
    /// });
    /// assert_eq!(out, vec![3, 0, 1, 2]);
    /// ```
    ///
    /// If any rank panics, the panic is propagated to the caller after all
    /// surviving ranks have been joined, so a failed assertion inside an
    /// algorithm fails the enclosing test instead of deadlocking it.
    ///
    /// # Panics
    /// Panics if `p == 0`, or re-raises the first rank panic observed.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::run_traced(p, &Tracer::disabled(), f)
    }

    /// Like [`Runtime::run`], recording every rank's communication and
    /// computation into `tracer` (one ring buffer per rank; see
    /// `hsumma-trace`). Pass [`Tracer::disabled`] — or call
    /// [`Runtime::run`] — for the zero-overhead untraced path.
    ///
    /// # Panics
    /// Panics if the tracer is enabled for fewer than `p` ranks.
    pub fn run_traced<R, F>(p: usize, tracer: &Tracer, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        match Self::try_run_traced(p, tracer, f) {
            Ok(out) => out,
            Err(RuntimeError::RankPanicked { rank, message }) => {
                panic!("rank {rank} panicked: {message}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Runtime::run`], but surfaces launch and rank failures as a
    /// [`RuntimeError`] instead of panicking: a refused thread spawn
    /// returns [`RuntimeError::Spawn`] (after poisoning and joining the
    /// ranks already launched, so none is leaked), and a rank panic
    /// returns [`RuntimeError::RankPanicked`] carrying the originating
    /// failure. This is the entry point a long-lived caller (the serving
    /// layer) uses to fail one request, not the process.
    pub fn try_run<R, F>(p: usize, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::try_run_traced(p, &Tracer::disabled(), f)
    }

    /// Fallible form of [`Runtime::run_traced`]; see [`Runtime::try_run`].
    pub fn try_run_traced<R, F>(p: usize, tracer: &Tracer, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::try_run_opts(p, tracer, &JobOptions::default(), f)
    }

    /// Like [`Runtime::try_run_traced`] with a per-job failure policy: a
    /// wall-clock deadline every blocking wait observes, and/or a
    /// deterministic [`FaultPlan`] replayed at every rank's send path.
    /// This is the one-shot twin of the pool's `run_opts`, used to check
    /// that a fault plan produces the same outcome on a fresh world as on
    /// pooled ranks and on the simulator.
    ///
    /// The job closure typically returns `Result<_, CommError>`; a rank
    /// that times out or loses a peer then unwinds cleanly (no panic, no
    /// poison) and its error lands in the caller's result vector.
    pub fn try_run_opts<R, F>(
        p: usize,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        assert!(p > 0, "need at least one rank");
        // One absolute deadline for the whole world, fixed at launch.
        let ctl = JobCtl::with_timeout(opts.deadline);
        assert!(
            !tracer.enabled() || tracer.ranks() >= p,
            "tracer sized for {} ranks, runtime needs {p}",
            tracer.ranks()
        );
        let mut senders = Vec::with_capacity(p);
        let mut mailboxes = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = Mailbox::new();
            senders.push(tx);
            mailboxes.push(rx);
        }
        let senders = Arc::new(senders);
        let f = &f;

        let (results, spawn_err): (Vec<thread::Result<R>>, Option<RuntimeError>) =
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p);
                let mut spawn_err = None;
                for (rank, mailbox) in mailboxes.into_iter().enumerate() {
                    let senders_for_rank = Arc::clone(&senders);
                    let sink = tracer.sink(rank);
                    let ctl = ctl.clone();
                    let faults = opts
                        .faults
                        .as_ref()
                        .map(|plan| FaultState::new(Arc::clone(plan), rank));
                    let spawned = thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let mut comm = Comm::world_opts(
                                    Arc::clone(&senders_for_rank),
                                    mailbox,
                                    rank,
                                    sink,
                                    0,
                                    ctl,
                                    faults,
                                );
                                f(&mut comm)
                            }));
                            match result {
                                Ok(v) => v,
                                Err(payload) => {
                                    // Poison every peer so ranks blocked on
                                    // this one fail fast instead of hanging.
                                    poison_peers(&senders_for_rank, rank, 0);
                                    resume_unwind(payload);
                                }
                            }
                        });
                    match spawned {
                        Ok(h) => handles.push(h),
                        Err(source) => {
                            // Unblock the ranks already running, then stop
                            // launching: the world is not viable.
                            poison_peers(&senders[..rank], p, 0);
                            spawn_err = Some(RuntimeError::Spawn { rank, source });
                            break;
                        }
                    }
                }
                (handles.into_iter().map(|h| h.join()).collect(), spawn_err)
            });

        let mut out = Vec::with_capacity(p);
        let mut panics: Vec<(usize, String)> = Vec::new();
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => panics.push((rank, panic_message(payload.as_ref()))),
            }
        }
        if let Some(e) = spawn_err {
            // The launch failure is the primary fault; panics among the
            // survivors are poison cascades it induced.
            return Err(e);
        }
        if !panics.is_empty() {
            // Prefer reporting the originating failure over the secondary
            // "peer rank panicked" poison cascades it triggers.
            let (rank, message) = primary_panic(&panics);
            return Err(RuntimeError::RankPanicked { rank, message });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;
    use hsumma_trace::{CommError, FaultPlan, TagClass};

    #[test]
    fn ranks_see_their_own_rank_and_size() {
        let out = Runtime::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = Runtime::run(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass_reaches_everyone() {
        let p = 8;
        let out = Runtime::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, 1, comm.rank() as u64).unwrap();
            comm.recv::<u64>(prev, 1).unwrap()
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + p - 1) % p);
        }
    }

    #[test]
    fn exchange_does_not_deadlock() {
        // Both ranks send before receiving; eager sends make this safe.
        let out = Runtime::run(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 9, vec![comm.rank() as f64; 1000]).unwrap();
            let got: Vec<f64> = comm.recv(peer, 9).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_is_propagated() {
        // Ranks that wait on the panicking rank must not hang forever: the
        // mailbox channel disconnects when rank 2 dies, turning their recv
        // into a panic, and the runtime reports the original failure.
        let _ = Runtime::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn try_run_returns_results_on_success() {
        let out = Runtime::try_run(3, |comm| comm.rank() * 2).expect("healthy world");
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn try_run_surfaces_rank_panic_as_error() {
        let err = Runtime::try_run(4, |comm| {
            if comm.rank() == 1 {
                panic!("job-level failure");
            }
            comm.rank()
        })
        .expect_err("rank 1 panicked");
        match err {
            RuntimeError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("job-level failure"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn try_run_reports_originating_rank_not_poison_cascade() {
        // Every other rank blocks on rank 2; its panic poisons them. The
        // unwrapped `PeerDead` cascades are filtered out and the error
        // must still name rank 2.
        let err = Runtime::try_run(4, |comm| {
            if comm.rank() == 2 {
                panic!("origin");
            }
            comm.recv::<u8>(2, 1).unwrap()
        })
        .expect_err("world crashed");
        match err {
            RuntimeError::RankPanicked { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("origin"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn split_partitions_by_color() {
        let out = Runtime::run(6, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, comm.rank() as i64).unwrap();
            (sub.rank(), sub.size(), sub.world_rank_of(0))
        });
        // Evens form one comm {0,2,4}, odds the other {1,3,5}.
        assert_eq!(out[0], (0, 3, 0));
        assert_eq!(out[2], (1, 3, 0));
        assert_eq!(out[4], (2, 3, 0));
        assert_eq!(out[1], (0, 3, 1));
        assert_eq!(out[3], (1, 3, 1));
        assert_eq!(out[5], (2, 3, 1));
    }

    #[test]
    fn split_orders_by_key_then_parent_rank() {
        let out = Runtime::run(4, |comm| {
            // Reverse the ordering via keys.
            let sub = comm.split(0, -(comm.rank() as i64)).unwrap();
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn nested_splits_are_isolated() {
        // 2x2 grid: row comms and column comms coexist; messages on one
        // must not be received on the other even with identical tags.
        let out = Runtime::run(4, |comm| {
            let row = comm
                .split((comm.rank() / 2) as u64, comm.rank() as i64)
                .unwrap();
            let col = comm
                .split((comm.rank() % 2) as u64, comm.rank() as i64)
                .unwrap();
            let peer_row = 1 - row.rank();
            let peer_col = 1 - col.rank();
            row.send(peer_row, 5, format!("row-from-{}", comm.rank()))
                .unwrap();
            col.send(peer_col, 5, format!("col-from-{}", comm.rank()))
                .unwrap();
            let from_row: String = row.recv(peer_row, 5).unwrap();
            let from_col: String = col.recv(peer_col, 5).unwrap();
            (from_row, from_col)
        });
        assert_eq!(out[0], ("row-from-1".into(), "col-from-2".into()));
        assert_eq!(out[3], ("row-from-2".into(), "col-from-1".into()));
    }

    #[test]
    fn collectives_on_overlapping_split_comms_do_not_interfere() {
        use crate::collectives::{allreduce, bcast_f64, BcastAlgorithm};
        // 4x4 grid: every rank is in one row comm and one col comm; run a
        // broadcast on each back-to-back and an allreduce over the world.
        let out = Runtime::run(16, |comm| {
            let (i, j) = (comm.rank() / 4, comm.rank() % 4);
            let row = comm.split(i as u64, j as i64).unwrap();
            let col = comm.split((4 + j) as u64, i as i64).unwrap();
            let mut rbuf = if row.rank() == 0 {
                vec![i as f64; 8]
            } else {
                vec![0.0; 8]
            };
            bcast_f64(&row, BcastAlgorithm::ScatterAllgather, 0, &mut rbuf).unwrap();
            let mut cbuf = if col.rank() == 0 {
                vec![j as f64; 8]
            } else {
                vec![0.0; 8]
            };
            bcast_f64(&col, BcastAlgorithm::Binomial, 0, &mut cbuf).unwrap();
            let sum = allreduce(comm, rbuf[0] + cbuf[0], |a, b| a + b).unwrap();
            (rbuf[7], cbuf[7], sum)
        });
        for (rank, (r, c, sum)) in out.iter().enumerate() {
            assert_eq!(*r, (rank / 4) as f64, "row bcast leaked");
            assert_eq!(*c, (rank % 4) as f64, "col bcast leaked");
            // Σ over all ranks of (i + j) = 2 · 4 · (0+1+2+3) = 48.
            assert_eq!(*sum, 48.0);
        }
    }

    #[test]
    fn split_of_split_reaches_singletons() {
        // Repeated halving down to singleton comms must stay consistent.
        let out = Runtime::run(8, |comm| {
            let mut c = comm.clone();
            let mut colors = Vec::new();
            while c.size() > 1 {
                let color = (c.rank() % 2) as u64;
                colors.push(color);
                c = c.split(color, c.rank() as i64).unwrap();
            }
            (c.size(), colors.len())
        });
        for (size, depth) in out {
            assert_eq!(size, 1);
            assert_eq!(depth, 3); // log2(8) halvings
        }
    }

    #[test]
    fn dup_creates_independent_context() {
        let out = Runtime::run(2, |comm| {
            let dup = comm.dup();
            let peer = 1 - comm.rank();
            comm.send(peer, 3, 111u32).unwrap();
            dup.send(peer, 3, 222u32).unwrap();
            let on_dup: u32 = dup.recv(peer, 3).unwrap();
            let on_orig: u32 = comm.recv(peer, 3).unwrap();
            (on_orig, on_dup)
        });
        assert_eq!(out, vec![(111, 222), (111, 222)]);
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let out = Runtime::run(2, |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: poll must return None immediately.
                let early: Option<u32> = comm.try_recv(1, 5).unwrap();
                assert!(early.is_none());
                // Tell rank 1 to send, then poll until it lands.
                comm.send(1, 6, ()).unwrap();
                loop {
                    if let Some(v) = comm.try_recv::<u32>(1, 5).unwrap() {
                        return v;
                    }
                    std::thread::yield_now();
                }
            } else {
                comm.recv::<()>(0, 6).unwrap();
                comm.send(0, 5, 77u32).unwrap();
                77
            }
        });
        assert_eq!(out, vec![77, 77]);
    }

    #[test]
    fn try_recv_buffers_non_matching_messages() {
        let out = Runtime::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u8).unwrap();
                comm.send(1, 2, 20u8).unwrap();
                0u8
            } else {
                // Wait for both to arrive, polling for the second tag:
                // the first message must be parked, not lost.
                let twenty = loop {
                    if let Some(v) = comm.try_recv::<u8>(0, 2).unwrap() {
                        break v;
                    }
                    std::thread::yield_now();
                };
                let ten: u8 = comm.recv(0, 1).unwrap();
                ten + twenty
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn stats_track_messages() {
        let out = Runtime::run(2, |comm| {
            comm.reset_stats();
            let peer = 1 - comm.rank();
            comm.send(peer, 1, 1u8).unwrap();
            let _: u8 = comm.recv(peer, 1).unwrap();
            comm.stats()
        });
        assert_eq!(out[0].msgs_sent, 1);
        assert!(out[0].comm_seconds > 0.0);
    }

    #[test]
    fn deadline_times_out_a_stuck_receive() {
        // Rank 1 never sends: rank 0's blocking wait must give up at the
        // deadline with the stalled edge named, not hang or spin.
        let opts = JobOptions::default().with_deadline(Duration::from_millis(100));
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &opts, |comm| {
            if comm.rank() == 0 {
                comm.recv::<u8>(1, 9).map(|_| ())
            } else {
                Ok(())
            }
        })
        .expect("no rank panicked");
        match &out[0] {
            Err(CommError::Timeout { edge, .. }) => {
                assert_eq!((edge.rank, edge.peer, edge.tag), (0, 1, 9));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(out[1].is_ok());
    }

    #[test]
    fn dropped_message_surfaces_as_timeout_on_the_receiver() {
        // Drop the first app-tagged message 0 -> 1; rank 1 then waits until
        // its deadline and reports the exact missing edge.
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(100))
            .with_faults(plan);
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 42u8)?;
                Ok(0)
            } else {
                comm.recv::<u8>(0, 4)
            }
        })
        .expect("no rank panicked");
        assert!(out[0].is_ok());
        match &out[1] {
            Err(CommError::Timeout { edge, .. }) => {
                assert_eq!((edge.rank, edge.peer, edge.tag), (1, 0, 4));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn killed_rank_shuts_down_and_peers_time_out() {
        // Rank 0 is killed at its first eligible send; it returns
        // `Shutdown` itself while rank 1, waiting on it, times out.
        let plan = Arc::new(FaultPlan::new().kill_rank(0, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(100))
            .with_faults(plan);
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 1u8)?;
                Ok(0u8)
            } else {
                comm.recv::<u8>(0, 4)
            }
        })
        .expect("no rank panicked");
        assert!(
            matches!(&out[0], Err(CommError::Shutdown { rank: 0, .. })),
            "{:?}",
            out[0]
        );
        assert!(
            matches!(&out[1], Err(CommError::Timeout { .. })),
            "{:?}",
            out[1]
        );
    }

    #[test]
    fn delayed_message_still_arrives() {
        // A 20 ms delay fault holds the message back, but the receive
        // (deadline 500 ms) picks it up once it becomes due — by waiting,
        // not polling.
        let plan = Arc::new(FaultPlan::new().delay_nth(Some(0), Some(1), TagClass::App, 0, 0.02));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(500))
            .with_faults(plan);
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 7u8)?;
                Ok(0)
            } else {
                comm.recv::<u8>(0, 4)
            }
        })
        .expect("no rank panicked");
        assert_eq!(out[1].as_ref().copied().unwrap(), 7);
    }

    #[test]
    fn duplicate_fault_is_absorbed_without_disturbing_matching() {
        // The duplicated message's ghost copy travels on a reserved tag no
        // receive ever matches; both ranks complete and ledgers ignore it.
        let plan = Arc::new(FaultPlan::new().duplicate_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(500))
            .with_faults(plan);
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, 9u8)?;
                comm.send(1, 4, 10u8)?;
                Ok::<_, CommError>((0usize, comm.stats()))
            } else {
                let a = comm.recv::<u8>(0, 4)?;
                let b = comm.recv::<u8>(0, 4)?;
                Ok((a as usize * 100 + b as usize, comm.stats()))
            }
        })
        .expect("no rank panicked");
        let (val, ref sender_stats) = *out[0].as_ref().unwrap();
        assert_eq!(val, 0);
        assert_eq!(sender_stats.faults_injected, 1);
        // The duplicate does not inflate the send ledger.
        assert_eq!(sender_stats.msgs_sent, 2);
        assert_eq!(out[1].as_ref().unwrap().0, 910);
    }

    #[test]
    fn cancellation_unwinds_a_blocked_rank() {
        // Rank 1 cancels the job (shared flag) and pokes rank 0 awake;
        // rank 0's blocking wait returns `Cancelled` instead of hanging.
        let out = Runtime::try_run_opts(2, &Tracer::disabled(), &JobOptions::default(), |comm| {
            if comm.rank() == 0 {
                comm.recv::<u8>(1, 3).map(|_| ())
            } else {
                comm.cancel_job();
                Ok(())
            }
        })
        .expect("no rank panicked");
        match &out[0] {
            Err(CommError::Cancelled { edge, .. }) => assert_eq!(edge.rank, 0),
            other => panic!("expected cancelled, got {other:?}"),
        }
    }
}
