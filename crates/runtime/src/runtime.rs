//! Spawning and joining rank threads.

use crate::comm::Comm;
use crate::error::RuntimeError;
use crate::message::{Envelope, Mailbox, MailboxSender, POISON_CTX};
use hsumma_trace::Tracer;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

/// Delivers a poison envelope (at `epoch`) to every peer of `rank`, so
/// ranks blocked in a receive on it fail fast instead of hanging.
pub(crate) fn poison_peers(senders: &[MailboxSender], rank: usize, epoch: u64) {
    for (peer, tx) in senders.iter().enumerate() {
        if peer != rank {
            tx.deliver(Envelope {
                ctx: POISON_CTX,
                src: rank,
                tag: 0,
                epoch,
                payload: Box::new(()),
            });
        }
    }
}

/// Picks the most informative panic out of a crashed world: the first
/// failure that is not a secondary "peer rank panicked" poison cascade.
pub(crate) fn primary_panic(panics: &[(usize, String)]) -> (usize, String) {
    panics
        .iter()
        .find(|(_, m)| !m.contains("panicked while this rank was communicating"))
        .unwrap_or(&panics[0])
        .clone()
}

/// Stringifies a panic payload for error reporting.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
        .to_owned()
}

/// Entry point of the runtime: maps `p` ranks onto `p` OS threads.
///
/// This plays the role of `mpirun`: it wires every rank's mailbox to every
/// other rank, runs the same function on all ranks (SPMD), and collects
/// their return values in rank order.
pub struct Runtime;

impl Runtime {
    /// Runs `f` on `p` ranks and returns their results indexed by rank.
    ///
    /// ```
    /// use hsumma_runtime::Runtime;
    ///
    /// // A 4-rank ring: everyone learns its left neighbour's rank.
    /// let out = Runtime::run(4, |comm| {
    ///     let next = (comm.rank() + 1) % comm.size();
    ///     let prev = (comm.rank() + comm.size() - 1) % comm.size();
    ///     comm.send(next, 0, comm.rank());
    ///     comm.recv::<usize>(prev, 0)
    /// });
    /// assert_eq!(out, vec![3, 0, 1, 2]);
    /// ```
    ///
    /// If any rank panics, the panic is propagated to the caller after all
    /// surviving ranks have been joined, so a failed assertion inside an
    /// algorithm fails the enclosing test instead of deadlocking it.
    ///
    /// # Panics
    /// Panics if `p == 0`, or re-raises the first rank panic observed.
    pub fn run<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::run_traced(p, &Tracer::disabled(), f)
    }

    /// Like [`Runtime::run`], recording every rank's communication and
    /// computation into `tracer` (one ring buffer per rank; see
    /// `hsumma-trace`). Pass [`Tracer::disabled`] — or call
    /// [`Runtime::run`] — for the zero-overhead untraced path.
    ///
    /// # Panics
    /// Panics if the tracer is enabled for fewer than `p` ranks.
    pub fn run_traced<R, F>(p: usize, tracer: &Tracer, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        match Self::try_run_traced(p, tracer, f) {
            Ok(out) => out,
            Err(RuntimeError::RankPanicked { rank, message }) => {
                panic!("rank {rank} panicked: {message}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Runtime::run`], but surfaces launch and rank failures as a
    /// [`RuntimeError`] instead of panicking: a refused thread spawn
    /// returns [`RuntimeError::Spawn`] (after poisoning and joining the
    /// ranks already launched, so none is leaked), and a rank panic
    /// returns [`RuntimeError::RankPanicked`] carrying the originating
    /// failure. This is the entry point a long-lived caller (the serving
    /// layer) uses to fail one request, not the process.
    pub fn try_run<R, F>(p: usize, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::try_run_traced(p, &Tracer::disabled(), f)
    }

    /// Fallible form of [`Runtime::run_traced`]; see [`Runtime::try_run`].
    pub fn try_run_traced<R, F>(p: usize, tracer: &Tracer, f: F) -> Result<Vec<R>, RuntimeError>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        assert!(p > 0, "need at least one rank");
        assert!(
            !tracer.enabled() || tracer.ranks() >= p,
            "tracer sized for {} ranks, runtime needs {p}",
            tracer.ranks()
        );
        let mut senders = Vec::with_capacity(p);
        let mut mailboxes = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = Mailbox::new();
            senders.push(tx);
            mailboxes.push(rx);
        }
        let senders = Arc::new(senders);
        let f = &f;

        let (results, spawn_err): (Vec<thread::Result<R>>, Option<RuntimeError>) =
            thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p);
                let mut spawn_err = None;
                for (rank, mailbox) in mailboxes.into_iter().enumerate() {
                    let senders_for_rank = Arc::clone(&senders);
                    let sink = tracer.sink(rank);
                    let spawned = thread::Builder::new()
                        .name(format!("rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let mut comm =
                                    Comm::world(Arc::clone(&senders_for_rank), mailbox, rank, sink);
                                f(&mut comm)
                            }));
                            match result {
                                Ok(v) => v,
                                Err(payload) => {
                                    // Poison every peer so ranks blocked on
                                    // this one fail fast instead of hanging.
                                    poison_peers(&senders_for_rank, rank, 0);
                                    resume_unwind(payload);
                                }
                            }
                        });
                    match spawned {
                        Ok(h) => handles.push(h),
                        Err(source) => {
                            // Unblock the ranks already running, then stop
                            // launching: the world is not viable.
                            poison_peers(&senders[..rank], p, 0);
                            spawn_err = Some(RuntimeError::Spawn { rank, source });
                            break;
                        }
                    }
                }
                (handles.into_iter().map(|h| h.join()).collect(), spawn_err)
            });

        let mut out = Vec::with_capacity(p);
        let mut panics: Vec<(usize, String)> = Vec::new();
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => panics.push((rank, panic_message(payload.as_ref()))),
            }
        }
        if let Some(e) = spawn_err {
            // The launch failure is the primary fault; panics among the
            // survivors are poison cascades it induced.
            return Err(e);
        }
        if !panics.is_empty() {
            // Prefer reporting the originating failure over the secondary
            // "peer rank panicked" poison cascades it triggers.
            let (rank, message) = primary_panic(&panics);
            return Err(RuntimeError::RankPanicked { rank, message });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;

    #[test]
    fn ranks_see_their_own_rank_and_size() {
        let out = Runtime::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = Runtime::run(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass_reaches_everyone() {
        let p = 8;
        let out = Runtime::run(p, |comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, 1, comm.rank() as u64);
            comm.recv::<u64>(prev, 1)
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + p - 1) % p);
        }
    }

    #[test]
    fn exchange_does_not_deadlock() {
        // Both ranks send before receiving; eager sends make this safe.
        let out = Runtime::run(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 9, vec![comm.rank() as f64; 1000]);
            let got: Vec<f64> = comm.recv(peer, 9);
            got[0]
        });
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_is_propagated() {
        // Ranks that wait on the panicking rank must not hang forever: the
        // mailbox channel disconnects when rank 2 dies, turning their recv
        // into a panic, and the runtime reports the original failure.
        let _ = Runtime::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn try_run_returns_results_on_success() {
        let out = Runtime::try_run(3, |comm| comm.rank() * 2).expect("healthy world");
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn try_run_surfaces_rank_panic_as_error() {
        let err = Runtime::try_run(4, |comm| {
            if comm.rank() == 1 {
                panic!("job-level failure");
            }
            comm.rank()
        })
        .expect_err("rank 1 panicked");
        match err {
            RuntimeError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("job-level failure"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn try_run_reports_originating_rank_not_poison_cascade() {
        // Every other rank blocks on rank 2; its panic poisons them, and
        // the error must still name rank 2.
        let err = Runtime::try_run(4, |comm| {
            if comm.rank() == 2 {
                panic!("origin");
            }
            comm.recv::<u8>(2, 1)
        })
        .expect_err("world crashed");
        match err {
            RuntimeError::RankPanicked { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("origin"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn split_partitions_by_color() {
        let out = Runtime::run(6, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, comm.rank() as i64);
            (sub.rank(), sub.size(), sub.world_rank_of(0))
        });
        // Evens form one comm {0,2,4}, odds the other {1,3,5}.
        assert_eq!(out[0], (0, 3, 0));
        assert_eq!(out[2], (1, 3, 0));
        assert_eq!(out[4], (2, 3, 0));
        assert_eq!(out[1], (0, 3, 1));
        assert_eq!(out[3], (1, 3, 1));
        assert_eq!(out[5], (2, 3, 1));
    }

    #[test]
    fn split_orders_by_key_then_parent_rank() {
        let out = Runtime::run(4, |comm| {
            // Reverse the ordering via keys.
            let sub = comm.split(0, -(comm.rank() as i64));
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn nested_splits_are_isolated() {
        // 2x2 grid: row comms and column comms coexist; messages on one
        // must not be received on the other even with identical tags.
        let out = Runtime::run(4, |comm| {
            let row = comm.split((comm.rank() / 2) as u64, comm.rank() as i64);
            let col = comm.split((comm.rank() % 2) as u64, comm.rank() as i64);
            let peer_row = 1 - row.rank();
            let peer_col = 1 - col.rank();
            row.send(peer_row, 5, format!("row-from-{}", comm.rank()));
            col.send(peer_col, 5, format!("col-from-{}", comm.rank()));
            let from_row: String = row.recv(peer_row, 5);
            let from_col: String = col.recv(peer_col, 5);
            (from_row, from_col)
        });
        assert_eq!(out[0], ("row-from-1".into(), "col-from-2".into()));
        assert_eq!(out[3], ("row-from-2".into(), "col-from-1".into()));
    }

    #[test]
    fn collectives_on_overlapping_split_comms_do_not_interfere() {
        use crate::collectives::{allreduce, bcast_f64, BcastAlgorithm};
        // 4x4 grid: every rank is in one row comm and one col comm; run a
        // broadcast on each back-to-back and an allreduce over the world.
        let out = Runtime::run(16, |comm| {
            let (i, j) = (comm.rank() / 4, comm.rank() % 4);
            let row = comm.split(i as u64, j as i64);
            let col = comm.split((4 + j) as u64, i as i64);
            let mut rbuf = if row.rank() == 0 {
                vec![i as f64; 8]
            } else {
                vec![0.0; 8]
            };
            bcast_f64(&row, BcastAlgorithm::ScatterAllgather, 0, &mut rbuf);
            let mut cbuf = if col.rank() == 0 {
                vec![j as f64; 8]
            } else {
                vec![0.0; 8]
            };
            bcast_f64(&col, BcastAlgorithm::Binomial, 0, &mut cbuf);
            let sum = allreduce(comm, rbuf[0] + cbuf[0], |a, b| a + b);
            (rbuf[7], cbuf[7], sum)
        });
        for (rank, (r, c, sum)) in out.iter().enumerate() {
            assert_eq!(*r, (rank / 4) as f64, "row bcast leaked");
            assert_eq!(*c, (rank % 4) as f64, "col bcast leaked");
            // Σ over all ranks of (i + j) = 2 · 4 · (0+1+2+3) = 48.
            assert_eq!(*sum, 48.0);
        }
    }

    #[test]
    fn split_of_split_reaches_singletons() {
        // Repeated halving down to singleton comms must stay consistent.
        let out = Runtime::run(8, |comm| {
            let mut c = comm.clone();
            let mut colors = Vec::new();
            while c.size() > 1 {
                let color = (c.rank() % 2) as u64;
                colors.push(color);
                c = c.split(color, c.rank() as i64);
            }
            (c.size(), colors.len())
        });
        for (size, depth) in out {
            assert_eq!(size, 1);
            assert_eq!(depth, 3); // log2(8) halvings
        }
    }

    #[test]
    fn dup_creates_independent_context() {
        let out = Runtime::run(2, |comm| {
            let dup = comm.dup();
            let peer = 1 - comm.rank();
            comm.send(peer, 3, 111u32);
            dup.send(peer, 3, 222u32);
            let on_dup: u32 = dup.recv(peer, 3);
            let on_orig: u32 = comm.recv(peer, 3);
            (on_orig, on_dup)
        });
        assert_eq!(out, vec![(111, 222), (111, 222)]);
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let out = Runtime::run(2, |comm| {
            if comm.rank() == 0 {
                // Nothing sent yet: poll must return None immediately.
                let early: Option<u32> = comm.try_recv(1, 5);
                assert!(early.is_none());
                // Tell rank 1 to send, then poll until it lands.
                comm.send(1, 6, ());
                loop {
                    if let Some(v) = comm.try_recv::<u32>(1, 5) {
                        return v;
                    }
                    std::thread::yield_now();
                }
            } else {
                comm.recv::<()>(0, 6);
                comm.send(0, 5, 77u32);
                77
            }
        });
        assert_eq!(out, vec![77, 77]);
    }

    #[test]
    fn try_recv_buffers_non_matching_messages() {
        let out = Runtime::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u8);
                comm.send(1, 2, 20u8);
                0u8
            } else {
                // Wait for both to arrive, polling for the second tag:
                // the first message must be parked, not lost.
                let twenty = loop {
                    if let Some(v) = comm.try_recv::<u8>(0, 2) {
                        break v;
                    }
                    std::thread::yield_now();
                };
                let ten: u8 = comm.recv(0, 1);
                ten + twenty
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn stats_track_messages() {
        let out = Runtime::run(2, |comm| {
            comm.reset_stats();
            let peer = 1 - comm.rank();
            comm.send(peer, 1, 1u8);
            let _: u8 = comm.recv(peer, 1);
            comm.stats()
        });
        assert_eq!(out[0].msgs_sent, 1);
        assert!(out[0].comm_seconds > 0.0);
    }
}
