//! Collective operations built message-by-message over point-to-point.
//!
//! The paper (§II-B) surveys the broadcast algorithms MPI implementations
//! choose from — trees for short messages, pipelined or scatter/allgather
//! schemes for long ones — and analyses SUMMA/HSUMMA under two of them
//! (binomial tree and van de Geijn's scatter + allgather, §IV). This module
//! implements the full menu over the runtime's point-to-point layer so the
//! distributed algorithms can be parameterized by broadcast algorithm, just
//! as the analysis is:
//!
//! | [`BcastAlgorithm`] | messages on the critical path | model cost |
//! |---|---|---|
//! | `Flat` | root sends `p−1` copies | `(p−1)(α+mβ)` |
//! | `Binomial` | `⌈log₂p⌉` rounds of full copies | `log₂(p)(α+mβ)` |
//! | `Binary` | depth `⌊log₂p⌋` tree, 2 sends per node | `≈2log₂(p)(α+mβ)` |
//! | `Ring` | chain of `p−1` full copies | `(p−1)(α+mβ)` |
//! | `Pipelined{s}` | chain of `p−1+s−1` segments | `(p+s−2)(α+mβ/s)` |
//! | `ScatterAllgather` | binomial scatter + ring allgather | `(log₂p+p−1)α + 2((p−1)/p)mβ` |
//!
//! Reductions, gathers and barriers follow the textbook constructions
//! (binomial reduce, flat gather, dissemination barrier).
//!
//! Every collective returns `Result<_, CommError>`: a blocked rank whose
//! job deadline passes (or whose job is cancelled, or whose peer dies)
//! unwinds out of the schedule with the stalled edge named instead of
//! hanging the world.

use crate::comm::{Comm, INTERNAL_TAG_BASE};
use crate::message::Tag;
use hsumma_trace::CommError;
use std::any::Any;
use std::sync::Arc;

pub(crate) const TAG_BARRIER: Tag = INTERNAL_TAG_BASE + 16;
const TAG_BCAST: Tag = INTERNAL_TAG_BASE + 17;
const TAG_GATHER: Tag = INTERNAL_TAG_BASE + 18;
const TAG_REDUCE: Tag = INTERNAL_TAG_BASE + 19;
const TAG_SCATTER: Tag = INTERNAL_TAG_BASE + 20;
const TAG_ALLGATHER: Tag = INTERNAL_TAG_BASE + 21;
const TAG_PIPELINE: Tag = INTERNAL_TAG_BASE + 22;
const TAG_ALLTOALL: Tag = INTERNAL_TAG_BASE + 23;
const TAG_ALLREDUCE: Tag = INTERNAL_TAG_BASE + 24;

// The algorithm selector itself lives in `hsumma-trace` (the leaf crate
// both substrates depend on) so the runtime and the simulator cannot
// drift; this module provides the executable schedules for it.
pub use hsumma_trace::{auto_bcast, BcastAlgorithm};

/// Dissemination barrier: `⌈log₂ p⌉` rounds, no root.
pub fn barrier(comm: &Comm) -> Result<(), CommError> {
    comm.trace_collective("barrier", "dissemination", 0, || {
        let p = comm.size();
        let r = comm.rank();
        let mut round = 1usize;
        while round < p {
            let dst = (r + round) % p;
            let src = (r + p - round % p) % p;
            comm.send_internal(dst, TAG_BARRIER, ())?;
            comm.recv_internal::<()>(src, TAG_BARRIER)?;
            round <<= 1;
        }
        Ok(())
    })
}

/// Broadcasts `value` from `root` using a whole-message algorithm.
///
/// `value` is read at the root only (other ranks may pass `None`); every
/// rank returns the broadcast value.
///
/// # Panics
/// Panics if the root passes `None`, or if `algo` requires segmentation
/// (use [`bcast_f64`] for those), or if `root >= comm.size()`.
pub fn bcast<T: Any + Send + Clone>(
    comm: &Comm,
    algo: BcastAlgorithm,
    root: usize,
    value: Option<T>,
) -> Result<T, CommError> {
    assert!(root < comm.size(), "root out of range");
    assert!(
        !algo.needs_segmentation(),
        "{algo:?} needs a sliceable payload; use bcast_f64"
    );
    let is_root = comm.rank() == root;
    assert!(value.is_some() || !is_root, "root must supply the value");
    comm.trace_collective("bcast", algo.name(), root, || match algo {
        BcastAlgorithm::Flat => bcast_flat(comm, root, value),
        BcastAlgorithm::Binomial => {
            // The internal binomial bcast wants a concrete value on every
            // rank; give non-roots a placeholder they'll overwrite. `Option`
            // keeps this allocation-free.
            let v = comm.binomial_bcast_internal(root, TAG_BCAST, value)?;
            Ok(v.expect("binomial bcast delivered no value"))
        }
        BcastAlgorithm::Binary => bcast_binary(comm, root, value),
        BcastAlgorithm::Ring => bcast_ring(comm, root, value),
        BcastAlgorithm::Pipelined { .. } | BcastAlgorithm::ScatterAllgather => unreachable!(),
    })
}

fn bcast_flat<T: Any + Send + Clone>(
    comm: &Comm,
    root: usize,
    value: Option<T>,
) -> Result<T, CommError> {
    if comm.rank() == root {
        let v = value.expect("root must supply the value");
        for dst in 0..comm.size() {
            if dst != root {
                comm.send_internal(dst, TAG_BCAST, v.clone())?;
            }
        }
        Ok(v)
    } else {
        comm.recv_internal(root, TAG_BCAST)
    }
}

fn bcast_binary<T: Any + Send + Clone>(
    comm: &Comm,
    root: usize,
    value: Option<T>,
) -> Result<T, CommError> {
    let p = comm.size();
    let vrank = (comm.rank() + p - root) % p;
    let value = if vrank == 0 {
        value.expect("root must supply the value")
    } else {
        let parent_v = (vrank - 1) / 2;
        comm.recv_internal((parent_v + root) % p, TAG_BCAST)?
    };
    for child_v in [2 * vrank + 1, 2 * vrank + 2] {
        if child_v < p {
            comm.send_internal((child_v + root) % p, TAG_BCAST, value.clone())?;
        }
    }
    Ok(value)
}

fn bcast_ring<T: Any + Send + Clone>(
    comm: &Comm,
    root: usize,
    value: Option<T>,
) -> Result<T, CommError> {
    let p = comm.size();
    let vrank = (comm.rank() + p - root) % p;
    let value = if vrank == 0 {
        value.expect("root must supply the value")
    } else {
        comm.recv_internal((vrank - 1 + root) % p, TAG_BCAST)?
    };
    if vrank + 1 < p {
        comm.send_internal((vrank + 1 + root) % p, TAG_BCAST, value.clone())?;
    }
    Ok(value)
}

/// Element range of chunk `i` when `len` elements are dealt over `p`
/// near-equal chunks (first `len % p` chunks get one extra element).
pub fn chunk_range(len: usize, p: usize, i: usize) -> (usize, usize) {
    let base = len / p;
    let rem = len % p;
    let start = i * base + i.min(rem);
    let extent = base + usize::from(i < rem);
    (start, start + extent)
}

/// Broadcasts the `f64` buffer from `root` in place. All ranks must pass a
/// buffer of identical length (the algorithms distribute *panels of known
/// shape*, so lengths are globally known — MPI's contract as well).
///
/// Supports every [`BcastAlgorithm`] including the segmenting ones.
pub fn bcast_f64(
    comm: &Comm,
    algo: BcastAlgorithm,
    root: usize,
    data: &mut [f64],
) -> Result<(), CommError> {
    assert!(root < comm.size(), "root out of range");
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    match algo {
        BcastAlgorithm::Flat
        | BcastAlgorithm::Binomial
        | BcastAlgorithm::Binary
        | BcastAlgorithm::Ring => {
            // The payload travels as one `Arc`-shared buffer: the root
            // materializes a single snapshot and every relay hop forwards
            // a reference-count bump instead of a deep copy.
            let value = if comm.rank() == root {
                comm.count_payload_clone((data.len() * 8) as u64);
                Some(Arc::new(data.to_vec()))
            } else {
                None
            };
            let out: Arc<Vec<f64>> = bcast(comm, algo, root, value)?;
            if comm.rank() != root {
                data.copy_from_slice(&out);
            }
            Ok(())
        }
        BcastAlgorithm::Pipelined { segments } => {
            comm.trace_collective("bcast", algo.name(), root, || {
                bcast_pipelined(comm, root, data, segments)
            })
        }
        BcastAlgorithm::ScatterAllgather => {
            comm.trace_collective("bcast", algo.name(), root, || {
                bcast_scatter_allgather(comm, root, data)
            })
        }
    }
}

/// Chain pipeline: virtual rank k receives each segment from k−1 and
/// forwards it to k+1 while already receiving the next one. The root
/// materializes each segment once; every later hop forwards the same
/// `Arc`-shared segment it received.
fn bcast_pipelined(
    comm: &Comm,
    root: usize,
    data: &mut [f64],
    segments: usize,
) -> Result<(), CommError> {
    assert!(segments >= 1, "need at least one segment");
    let p = comm.size();
    let vrank = (comm.rank() + p - root) % p;
    let prev = (vrank + p - 1 + root) % p;
    let next = (vrank + 1 + root) % p;
    let segments = segments.min(data.len().max(1));
    for s in 0..segments {
        let (lo, hi) = chunk_range(data.len(), segments, s);
        let received: Option<Arc<Vec<f64>>> = if vrank > 0 {
            let seg: Arc<Vec<f64>> = comm.recv_internal(prev, TAG_PIPELINE)?;
            data[lo..hi].copy_from_slice(&seg);
            Some(seg)
        } else {
            None
        };
        if vrank + 1 < p {
            let seg = received.unwrap_or_else(|| {
                comm.count_payload_clone(((hi - lo) * 8) as u64);
                Arc::new(data[lo..hi].to_vec())
            });
            comm.send_internal(next, TAG_PIPELINE, seg)?;
        }
    }
    Ok(())
}

/// Van de Geijn long-message broadcast: binomial-tree scatter of the `p`
/// chunks, then a ring allgather. Bandwidth term `2(p−1)/p·mβ`, latency
/// `(log₂p + p − 1)α`.
fn bcast_scatter_allgather(comm: &Comm, root: usize, data: &mut [f64]) -> Result<(), CommError> {
    let p = comm.size();
    let len = data.len();
    let vrank = (comm.rank() + p - root) % p;
    let to_world = |v: usize| (v + root) % p;

    // --- Binomial scatter ------------------------------------------------
    // Virtual rank v is responsible for relaying the chunks of virtual
    // ranks [v, v + extent) where extent is v's lowest set bit (the whole
    // clipped range for the root). Messages are `(buffer, offset)` pairs:
    // one `Arc`-shared buffer tagged with the global element index of its
    // first element, so a relay hands its children a sub-view of the very
    // buffer it received instead of slicing out fresh copies.
    let p2 = p.next_power_of_two();
    let my_extent = if vrank == 0 {
        p2
    } else {
        vrank & vrank.wrapping_neg()
    };
    let relay: (Arc<Vec<f64>>, usize) = if vrank == 0 {
        comm.count_payload_clone((len * 8) as u64);
        (Arc::new(data.to_vec()), 0)
    } else {
        let parent = vrank - my_extent;
        let hi_v = (vrank + my_extent).min(p);
        let (lo, _) = chunk_range(len, p, vrank);
        let (_, hi) = chunk_range(len, p, hi_v - 1);
        let (buf, off): (Arc<Vec<f64>>, usize) =
            comm.recv_internal(to_world(parent), TAG_SCATTER)?;
        data[lo..hi].copy_from_slice(&buf[lo - off..hi - off]);
        (buf, off)
    };
    let mut mask = my_extent >> 1;
    while mask > 0 {
        let child = vrank + mask;
        if child < p {
            comm.send_internal(to_world(child), TAG_SCATTER, relay.clone())?;
        }
        mask >>= 1;
    }
    drop(relay);

    // --- Ring allgather ---------------------------------------------------
    // Round k: send chunk (vrank − k) and receive chunk (vrank − k − 1),
    // both mod p, from the ring neighbours. The chunk received in round k
    // is exactly the chunk sent in round k+1, so each rank materializes
    // only its *own* chunk (round 0) and forwards received `Arc`s after.
    let next = to_world((vrank + 1) % p);
    let prev = to_world((vrank + p - 1) % p);
    let mut carry: Option<Arc<Vec<f64>>> = None;
    for k in 0..p - 1 {
        let send_chunk = (vrank + p - k) % p;
        let recv_chunk = (vrank + p - k - 1) % p;
        let seg = carry.take().unwrap_or_else(|| {
            let (slo, shi) = chunk_range(len, p, send_chunk);
            comm.count_payload_clone(((shi - slo) * 8) as u64);
            Arc::new(data[slo..shi].to_vec())
        });
        comm.send_internal(next, TAG_ALLGATHER, seg)?;
        let seg: Arc<Vec<f64>> = comm.recv_internal(prev, TAG_ALLGATHER)?;
        let (rlo, rhi) = chunk_range(len, p, recv_chunk);
        data[rlo..rhi].copy_from_slice(&seg);
        carry = Some(seg);
    }
    Ok(())
}

/// Flat gather: every rank's `value` collected at `root` in rank order.
/// Returns `Some(values)` at the root, `None` elsewhere.
pub fn gather<T: Any + Send>(
    comm: &Comm,
    root: usize,
    value: T,
) -> Result<Option<Vec<T>>, CommError> {
    assert!(root < comm.size(), "root out of range");
    comm.trace_collective("gather", "flat", root, || gather_inner(comm, root, value))
}

fn gather_inner<T: Any + Send>(
    comm: &Comm,
    root: usize,
    value: T,
) -> Result<Option<Vec<T>>, CommError> {
    if comm.rank() == root {
        let mut out: Vec<Option<T>> = (0..comm.size()).map(|_| None).collect();
        out[root] = Some(value);
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = Some(comm.recv_internal(src, TAG_GATHER)?);
            }
        }
        Ok(Some(
            out.into_iter()
                .map(|v| v.expect("gather slot filled"))
                .collect(),
        ))
    } else {
        comm.send_internal(root, TAG_GATHER, value)?;
        Ok(None)
    }
}

/// Gather to rank 0 followed by a binomial broadcast of the table.
pub fn allgather<T: Any + Send + Clone>(comm: &Comm, value: T) -> Result<Vec<T>, CommError> {
    comm.trace_collective("allgather", "gather_bcast", 0, || {
        let gathered = gather_inner(comm, 0, value)?;
        let v = comm.binomial_bcast_internal(0, TAG_ALLGATHER, gathered)?;
        Ok(v.expect("allgather bcast delivered no value"))
    })
}

/// Binomial-tree reduction with a caller-supplied associative combiner.
/// Returns `Some(result)` at the root, `None` elsewhere.
pub fn reduce<T: Any + Send>(
    comm: &Comm,
    root: usize,
    value: T,
    mut combine: impl FnMut(T, T) -> T,
) -> Result<Option<T>, CommError> {
    assert!(root < comm.size(), "root out of range");
    comm.trace_collective("reduce", "binomial", root, || {
        let p = comm.size();
        let vrank = (comm.rank() + p - root) % p;
        let to_world = |v: usize| (v + root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        // Mirror image of the binomial broadcast: leaves send first.
        while mask < p {
            if vrank & mask != 0 {
                comm.send_internal(to_world(vrank ^ mask), TAG_REDUCE, acc)?;
                return Ok(None);
            }
            if vrank + mask < p {
                let child: T = comm.recv_internal(to_world(vrank + mask), TAG_REDUCE)?;
                acc = combine(acc, child);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    })
}

/// Reduce to rank 0 then broadcast the result to everyone.
pub fn allreduce<T: Any + Send + Clone>(
    comm: &Comm,
    value: T,
    combine: impl FnMut(T, T) -> T,
) -> Result<T, CommError> {
    comm.trace_collective("allreduce", "reduce_bcast", 0, || {
        let reduced = reduce(comm, 0, value, combine)?;
        let v = comm.binomial_bcast_internal(0, TAG_REDUCE, reduced)?;
        Ok(v.expect("allreduce bcast delivered no value"))
    })
}

/// Simultaneous send and receive (an `MPI_Sendrecv`): deadlock-free
/// because sends are eager.
pub fn sendrecv<T: Any + Send>(
    comm: &Comm,
    dst: usize,
    send_value: T,
    src: usize,
    tag: crate::message::Tag,
) -> Result<T, CommError> {
    comm.send(dst, tag, send_value)?;
    comm.recv(src, tag)
}

/// Flat scatter: the root deals `values[i]` to local rank `i` (the root
/// keeps its own slot). Non-roots pass `None`. Returns this rank's value.
///
/// # Panics
/// Panics if the root's vector length differs from the communicator size.
pub fn scatter<T: Any + Send>(
    comm: &Comm,
    root: usize,
    values: Option<Vec<T>>,
) -> Result<T, CommError> {
    assert!(root < comm.size(), "root out of range");
    comm.trace_collective("scatter", "flat", root, || {
        scatter_inner(comm, root, values)
    })
}

fn scatter_inner<T: Any + Send>(
    comm: &Comm,
    root: usize,
    values: Option<Vec<T>>,
) -> Result<T, CommError> {
    if comm.rank() == root {
        let values = values.expect("root must supply the values");
        assert_eq!(values.len(), comm.size(), "one value per rank required");
        let mut mine = None;
        for (dst, v) in values.into_iter().enumerate() {
            if dst == root {
                mine = Some(v);
            } else {
                comm.send_internal(dst, TAG_SCATTER, v)?;
            }
        }
        Ok(mine.expect("root keeps its own slot"))
    } else {
        assert!(values.is_none(), "only the root supplies values");
        comm.recv_internal(root, TAG_SCATTER)
    }
}

/// Personalized all-to-all exchange: rank `r` sends `values[d]` to rank
/// `d` and returns the vector of values received, indexed by source.
///
/// # Panics
/// Panics if `values.len() != comm.size()`.
pub fn alltoall<T: Any + Send>(comm: &Comm, values: Vec<T>) -> Result<Vec<T>, CommError> {
    let p = comm.size();
    assert_eq!(values.len(), p, "one value per destination required");
    comm.trace_collective("alltoall", "pairwise", 0, || {
        let me = comm.rank();
        let mut mine = None;
        for (dst, v) in values.into_iter().enumerate() {
            if dst == me {
                mine = Some(v);
            } else {
                comm.send_internal(dst, TAG_ALLTOALL, v)?;
            }
        }
        (0..p)
            .map(|src| {
                if src == me {
                    Ok(mine.take().expect("own slot present"))
                } else {
                    comm.recv_internal(src, TAG_ALLTOALL)
                }
            })
            .collect()
    })
}

/// Element-wise sum reduction of equal-length `f64` buffers to `root`
/// over a binomial tree. On return the root's buffer holds the sum;
/// other buffers are left in an unspecified partial state (like an MPI
/// send buffer).
pub fn reduce_sum_f64(comm: &Comm, root: usize, data: &mut [f64]) -> Result<(), CommError> {
    assert!(root < comm.size(), "root out of range");
    comm.trace_collective("reduce_sum", "binomial", root, || {
        let p = comm.size();
        let vrank = (comm.rank() + p - root) % p;
        let to_world = |v: usize| (v + root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                comm.send_internal(to_world(vrank ^ mask), TAG_REDUCE, data.to_vec())?;
                return Ok(());
            }
            if vrank + mask < p {
                let child: Vec<f64> = comm.recv_internal(to_world(vrank + mask), TAG_REDUCE)?;
                assert_eq!(
                    child.len(),
                    data.len(),
                    "reduce buffers must match in length"
                );
                for (a, b) in data.iter_mut().zip(&child) {
                    *a += b;
                }
            }
            mask <<= 1;
        }
        Ok(())
    })
}

/// Bandwidth-optimal all-reduce of `f64` buffers à la Rabenseifner:
/// ring reduce-scatter (each rank ends owning the sum of one chunk) then
/// ring allgather. Bandwidth `≈ 2(p−1)/p · m·β`, like the van de Geijn
/// broadcast — the long-vector algorithm MPI implementations use.
pub fn allreduce_sum_f64(comm: &Comm, data: &mut [f64]) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    comm.trace_collective("allreduce_sum", "ring", 0, || {
        allreduce_sum_f64_inner(comm, data)
    })
}

fn allreduce_sum_f64_inner(comm: &Comm, data: &mut [f64]) -> Result<(), CommError> {
    let p = comm.size();
    let me = comm.rank();
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let len = data.len();

    // Reduce-scatter: after p−1 rounds, rank r owns the full sum of
    // chunk (r+1) mod p.
    for k in 0..p - 1 {
        let send_chunk = (me + p - k) % p;
        let recv_chunk = (me + p - k - 1) % p;
        let (slo, shi) = chunk_range(len, p, send_chunk);
        comm.send_internal(next, TAG_ALLREDUCE, data[slo..shi].to_vec())?;
        let seg: Vec<f64> = comm.recv_internal(prev, TAG_ALLREDUCE)?;
        let (rlo, rhi) = chunk_range(len, p, recv_chunk);
        for (a, b) in data[rlo..rhi].iter_mut().zip(&seg) {
            *a += b;
        }
    }
    // Allgather of the owned chunks around the ring.
    for k in 0..p - 1 {
        let send_chunk = (me + 1 + p - k) % p;
        let recv_chunk = (me + p - k) % p;
        let (slo, shi) = chunk_range(len, p, send_chunk);
        comm.send_internal(next, TAG_ALLREDUCE, data[slo..shi].to_vec())?;
        let seg: Vec<f64> = comm.recv_internal(prev, TAG_ALLREDUCE)?;
        let (rlo, rhi) = chunk_range(len, p, recv_chunk);
        data[rlo..rhi].copy_from_slice(&seg);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use proptest::prelude::*;

    const ALGOS: [BcastAlgorithm; 6] = [
        BcastAlgorithm::Flat,
        BcastAlgorithm::Binomial,
        BcastAlgorithm::Binary,
        BcastAlgorithm::Ring,
        BcastAlgorithm::Pipelined { segments: 4 },
        BcastAlgorithm::ScatterAllgather,
    ];

    #[test]
    fn chunk_ranges_partition_the_buffer() {
        for len in [0usize, 1, 7, 16, 100] {
            for p in [1usize, 2, 3, 7, 16] {
                let mut cursor = 0;
                for i in 0..p {
                    let (lo, hi) = chunk_range(len, p, i);
                    assert_eq!(lo, cursor, "len={len} p={p} i={i}");
                    assert!(hi >= lo);
                    cursor = hi;
                }
                assert_eq!(cursor, len);
            }
        }
    }

    proptest! {
        // The segment-dealing edge cases the scatter-allgather and
        // pipelined broadcasts rely on: chunks tile [0, len) in order,
        // sizes differ by at most one, and the first len % p chunks get
        // the extra element. Covers p > len (zero-length chunks) and
        // non-divisible splits by construction.
        #[test]
        fn chunk_range_tiles_exactly(len in 0usize..10_000, p in 1usize..256) {
            let mut cursor = 0;
            for i in 0..p {
                let (lo, hi) = chunk_range(len, p, i);
                prop_assert_eq!(lo, cursor);
                prop_assert!(hi >= lo);
                cursor = hi;
            }
            prop_assert_eq!(cursor, len);
        }

        #[test]
        fn chunk_range_sizes_are_balanced(len in 0usize..10_000, p in 1usize..256) {
            let sizes: Vec<usize> = (0..p)
                .map(|i| {
                    let (lo, hi) = chunk_range(len, p, i);
                    hi - lo
                })
                .collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1, "sizes differ by more than one: {:?}", sizes);
            // The first len % p chunks carry the extra element.
            for (i, s) in sizes.iter().enumerate() {
                prop_assert_eq!(*s, len / p + usize::from(i < len % p));
            }
        }

        #[test]
        fn chunk_range_more_ranks_than_elements(len in 0usize..16, p in 16usize..512) {
            // p > len: exactly `len` chunks are non-empty, the rest are
            // zero-length slices sitting at the end of the buffer.
            let nonempty = (0..p)
                .filter(|&i| {
                    let (lo, hi) = chunk_range(len, p, i);
                    hi > lo
                })
                .count();
            prop_assert_eq!(nonempty, len.min(p));
            for i in len..p {
                let (lo, hi) = chunk_range(len, p, i);
                prop_assert_eq!((lo, hi), (len, len), "tail chunk {} not empty", i);
            }
        }
    }

    #[test]
    fn whole_message_bcast_delivers_to_all_ranks_and_roots() {
        for p in [1usize, 2, 5, 8] {
            for algo in [
                BcastAlgorithm::Flat,
                BcastAlgorithm::Binomial,
                BcastAlgorithm::Binary,
                BcastAlgorithm::Ring,
            ] {
                for root in [0, p - 1, p / 2] {
                    let out = Runtime::run(p, |comm| {
                        let v = if comm.rank() == root {
                            Some(42u64)
                        } else {
                            None
                        };
                        bcast(comm, algo, root, v).unwrap()
                    });
                    assert_eq!(out, vec![42u64; p], "p={p} algo={algo:?} root={root}");
                }
            }
        }
    }

    #[test]
    fn f64_bcast_all_algorithms_all_roots() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for algo in ALGOS {
                for root in 0..p {
                    let out = Runtime::run(p, |comm| {
                        let mut buf = if comm.rank() == root {
                            (0..37).map(|i| i as f64 * 1.5).collect::<Vec<_>>()
                        } else {
                            vec![0.0; 37]
                        };
                        bcast_f64(comm, algo, root, &mut buf).unwrap();
                        buf
                    });
                    let want: Vec<f64> = (0..37).map(|i| i as f64 * 1.5).collect();
                    for (rank, buf) in out.iter().enumerate() {
                        assert_eq!(buf, &want, "p={p} algo={algo:?} root={root} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn f64_bcast_payload_shorter_than_comm() {
        // Fewer elements than ranks: some scatter chunks are empty.
        let out = Runtime::run(8, |comm| {
            let mut buf = if comm.rank() == 0 {
                vec![3.25, -1.5, 7.0]
            } else {
                vec![0.0; 3]
            };
            bcast_f64(comm, BcastAlgorithm::ScatterAllgather, 0, &mut buf).unwrap();
            buf
        });
        for buf in out {
            assert_eq!(buf, vec![3.25, -1.5, 7.0]);
        }
    }

    #[test]
    fn pipelined_with_more_segments_than_elements() {
        let out = Runtime::run(4, |comm| {
            let mut buf = if comm.rank() == 0 {
                vec![1.0, 2.0]
            } else {
                vec![0.0; 2]
            };
            bcast_f64(
                comm,
                BcastAlgorithm::Pipelined { segments: 16 },
                0,
                &mut buf,
            )
            .unwrap();
            buf
        });
        for buf in out {
            assert_eq!(buf, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Runtime::run(5, |comm| gather(comm, 2, comm.rank() as u32).unwrap());
        for (rank, res) in out.iter().enumerate() {
            if rank == 2 {
                assert_eq!(res.as_deref(), Some(&[0u32, 1, 2, 3, 4][..]));
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allgather_gives_everyone_the_table() {
        let out = Runtime::run(4, |comm| {
            allgather(comm, (comm.rank() * 10) as u32).unwrap()
        });
        for table in out {
            assert_eq!(table, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn reduce_sums_at_root_only() {
        let out = Runtime::run(6, |comm| {
            reduce(comm, 1, comm.rank() as u64, |a, b| a + b).unwrap()
        });
        for (rank, res) in out.iter().enumerate() {
            if rank == 1 {
                assert_eq!(*res, Some(15));
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn reduce_respects_non_commutative_order() {
        // String concatenation is associative but not commutative; the
        // binomial tree must still produce rank order relative to the root.
        let out = Runtime::run(4, |comm| {
            reduce(comm, 0, comm.rank().to_string(), |a, b| format!("{a}{b}")).unwrap()
        });
        assert_eq!(out[0].as_deref(), Some("0123"));
    }

    #[test]
    fn allreduce_delivers_everywhere() {
        let out = Runtime::run(7, |comm| allreduce(comm, 1u64, |a, b| a + b).unwrap());
        assert_eq!(out, vec![7u64; 7]);
    }

    #[test]
    fn barrier_completes_for_various_sizes() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let out = Runtime::run(p, |comm| {
                barrier(comm).unwrap();
                barrier(comm).unwrap();
                true
            });
            assert_eq!(out, vec![true; p]);
        }
    }

    #[test]
    fn auto_bcast_picks_tree_for_short_and_vdg_for_long() {
        assert_eq!(auto_bcast(100, 64), BcastAlgorithm::Binomial);
        assert_eq!(auto_bcast(1 << 20, 64), BcastAlgorithm::ScatterAllgather);
        // Small communicators stay on the tree even for long messages.
        assert_eq!(auto_bcast(1 << 20, 4), BcastAlgorithm::Binomial);
    }

    #[test]
    fn auto_bcast_delivers_correctly_on_both_sides_of_the_threshold() {
        for elems in [64usize, 4096] {
            let out = Runtime::run(8, |comm| {
                let algo = auto_bcast(elems * 8, comm.size());
                let mut buf = if comm.rank() == 3 {
                    vec![2.5f64; elems]
                } else {
                    vec![0.0; elems]
                };
                bcast_f64(comm, algo, 3, &mut buf).unwrap();
                buf[elems - 1]
            });
            assert_eq!(out, vec![2.5; 8]);
        }
    }

    #[test]
    fn sendrecv_swaps_values() {
        let out = Runtime::run(2, |comm| {
            let peer = 1 - comm.rank();
            sendrecv(comm, peer, comm.rank() as u32 * 100, peer, 7).unwrap()
        });
        assert_eq!(out, vec![100, 0]);
    }

    #[test]
    fn scatter_deals_one_value_per_rank() {
        let out = Runtime::run(4, |comm| {
            let values = (comm.rank() == 1).then(|| vec![10u32, 11, 12, 13]);
            scatter(comm, 1, values).unwrap()
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "one value per rank")]
    fn scatter_rejects_wrong_count() {
        let _ = Runtime::run(2, |comm| {
            let values = (comm.rank() == 0).then(|| vec![1u8]);
            scatter(comm, 0, values).unwrap()
        });
    }

    #[test]
    fn alltoall_transposes_the_exchange_matrix() {
        let p = 4;
        let out = Runtime::run(p, |comm| {
            // Rank r sends (r, d) to rank d.
            let values: Vec<(usize, usize)> = (0..p).map(|d| (comm.rank(), d)).collect();
            alltoall(comm, values).unwrap()
        });
        for (rank, received) in out.iter().enumerate() {
            for (src, pair) in received.iter().enumerate() {
                assert_eq!(*pair, (src, rank));
            }
        }
    }

    #[test]
    fn reduce_sum_f64_sums_at_root() {
        let out = Runtime::run(5, |comm| {
            let mut buf = vec![comm.rank() as f64; 16];
            reduce_sum_f64(comm, 2, &mut buf).unwrap();
            if comm.rank() == 2 {
                Some(buf)
            } else {
                None
            }
        });
        let sum = (0..5).sum::<usize>() as f64;
        assert_eq!(out[2].as_ref().expect("root holds result"), &vec![sum; 16]);
    }

    #[test]
    fn allreduce_sum_f64_everywhere_matches_binomial_reduce() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            let out = Runtime::run(p, |comm| {
                let mut buf: Vec<f64> = (0..23).map(|i| (comm.rank() * 31 + i) as f64).collect();
                allreduce_sum_f64(comm, &mut buf).unwrap();
                buf
            });
            let want: Vec<f64> = (0..23)
                .map(|i| (0..p).map(|r| (r * 31 + i) as f64).sum())
                .collect();
            for (rank, buf) in out.iter().enumerate() {
                for (a, b) in buf.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-9, "p={p} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn allreduce_handles_short_buffers() {
        // Fewer elements than ranks: some ring chunks are empty.
        let out = Runtime::run(8, |comm| {
            let mut buf = vec![1.0f64, 2.0];
            allreduce_sum_f64(comm, &mut buf).unwrap();
            buf
        });
        for buf in out {
            assert_eq!(buf, vec![8.0, 16.0]);
        }
    }

    #[test]
    fn bcast_counts_bytes_at_root() {
        let out = Runtime::run(2, |comm| {
            comm.reset_stats();
            let mut buf = if comm.rank() == 0 {
                vec![1.0; 100]
            } else {
                vec![0.0; 100]
            };
            bcast_f64(comm, BcastAlgorithm::Binomial, 0, &mut buf).unwrap();
            comm.stats().bytes_sent
        });
        assert_eq!(out[0], 800);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn ledgers_balance_for_every_collective_algorithm() {
        // Whatever one rank's ledger says went out must show up on some
        // other rank's receive ledger: Σ msgs_sent == Σ msgs_recv and
        // Σ bytes_sent == Σ bytes_recv over the world, per collective.
        let p = 8;
        let check = |label: &str, run: &(dyn Fn(&Comm) + Sync)| {
            let stats = Runtime::run(p, |comm| {
                comm.reset_stats();
                run(comm);
                comm.stats()
            });
            let total = stats
                .iter()
                .fold(crate::stats::CommStats::default(), |acc, s| acc.merge(s));
            assert_eq!(total.msgs_sent, total.msgs_recv, "{label}: message count");
            assert_eq!(total.bytes_sent, total.bytes_recv, "{label}: byte count");
            assert!(total.msgs_sent > 0, "{label}: nothing happened");
            // A clean run must not touch the failure counters.
            assert_eq!(
                (total.timeouts, total.cancelled, total.faults_injected),
                (0, 0, 0),
                "{label}: failure counters on a clean run"
            );
        };
        for algo in ALGOS {
            check(algo.name(), &move |comm: &Comm| {
                let mut buf = if comm.rank() == 1 {
                    vec![1.5; 96]
                } else {
                    vec![0.0; 96]
                };
                bcast_f64(comm, algo, 1, &mut buf).unwrap();
            });
        }
        check("barrier", &|comm: &Comm| barrier(comm).unwrap());
        check("gather", &|comm: &Comm| {
            let _ = gather(comm, 0, vec![comm.rank() as f64; 4]).unwrap();
        });
        check("allgather", &|comm: &Comm| {
            let _ = allgather(comm, comm.rank() as u64).unwrap();
        });
        check("reduce_sum", &|comm: &Comm| {
            let mut buf = vec![1.0; 32];
            reduce_sum_f64(comm, 2, &mut buf).unwrap();
        });
        check("allreduce_sum", &|comm: &Comm| {
            let mut buf = vec![1.0; 32];
            allreduce_sum_f64(comm, &mut buf).unwrap();
        });
        check("alltoall", &|comm: &Comm| {
            let vals: Vec<Vec<f64>> = (0..comm.size()).map(|d| vec![d as f64; 3]).collect();
            let _ = alltoall(comm, vals).unwrap();
        });
        check("scatter", &|comm: &Comm| {
            let vals =
                (comm.rank() == 0).then(|| (0..comm.size()).map(|d| vec![d as f64; 5]).collect());
            let _ = scatter::<Vec<f64>>(comm, 0, vals).unwrap();
        });
    }

    #[test]
    fn bcast_relays_forward_shared_payloads_without_copying() {
        const ELEMS: usize = 4096;
        const ROOT: usize = 2;
        let payload_bytes = (ELEMS * 8) as u64;
        for algo in [
            BcastAlgorithm::Flat,
            BcastAlgorithm::Binomial,
            BcastAlgorithm::Binary,
            BcastAlgorithm::Ring,
            BcastAlgorithm::Pipelined { segments: 4 },
        ] {
            let out = Runtime::run(8, |comm| {
                comm.reset_stats();
                let mut buf = if comm.rank() == ROOT {
                    vec![1.25; ELEMS]
                } else {
                    vec![0.0; ELEMS]
                };
                bcast_f64(comm, algo, ROOT, &mut buf).unwrap();
                let s = comm.stats();
                (s.payload_clones, s.payload_clone_bytes, buf)
            });
            for (rank, (clones, bytes, buf)) in out.iter().enumerate() {
                assert_eq!(buf, &vec![1.25; ELEMS], "algo={algo:?} rank={rank}");
                if rank == ROOT {
                    // The root materializes the payload exactly once —
                    // as a whole, or segment by segment when pipelining.
                    assert_eq!(*bytes, payload_bytes, "algo={algo:?}");
                } else {
                    // Relays bump an `Arc` refcount per hop; a nonzero
                    // count means a deep copy crept back in.
                    assert_eq!(
                        (*clones, *bytes),
                        (0, 0),
                        "relay deep-copied: algo={algo:?} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_allgather_ranks_materialize_at_most_one_chunk() {
        const ELEMS: usize = 4096;
        let p = 8;
        let chunk_bytes = (ELEMS / p * 8) as u64;
        let payload_bytes = (ELEMS * 8) as u64;
        let out = Runtime::run(p, |comm| {
            comm.reset_stats();
            let mut buf = if comm.rank() == 0 {
                vec![0.5; ELEMS]
            } else {
                vec![0.0; ELEMS]
            };
            bcast_f64(comm, BcastAlgorithm::ScatterAllgather, 0, &mut buf).unwrap();
            let s = comm.stats();
            (s.payload_clone_bytes, buf)
        });
        for (rank, (bytes, buf)) in out.iter().enumerate() {
            assert_eq!(buf, &vec![0.5; ELEMS], "rank={rank}");
            if rank == 0 {
                // Snapshot for the scatter tree + its own allgather chunk.
                assert_eq!(*bytes, payload_bytes + chunk_bytes);
            } else {
                // Ring contribution only — never the full payload.
                assert_eq!(*bytes, chunk_bytes, "rank={rank}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs a sliceable payload")]
    fn generic_bcast_rejects_segmenting_algorithms() {
        let _ = Runtime::run(2, |comm| {
            bcast(comm, BcastAlgorithm::ScatterAllgather, 0, Some(1u8)).unwrap()
        });
    }
}
