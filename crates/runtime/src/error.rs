//! Runtime failures surfaced as values instead of process aborts.
//!
//! The original entry point ([`crate::Runtime::run`]) answers every
//! failure with a panic, which is the right contract for tests but not
//! for a long-lived serving process: one bad job must fail *that job*,
//! not the process. [`RuntimeError`] is the error type the fallible
//! entry points ([`crate::Runtime::try_run`], [`crate::RankPool`])
//! return instead.

use std::fmt;
use std::io;

/// Why a runtime launch or a pooled job failed.
#[derive(Debug)]
pub enum RuntimeError {
    /// The OS refused to spawn a rank thread (resource exhaustion).
    /// Already-spawned ranks are poisoned and joined before this is
    /// returned, so no thread is leaked.
    Spawn {
        /// Rank whose thread could not be created.
        rank: usize,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A rank panicked while executing the SPMD function. For a pooled
    /// job this fails the job only: the worker threads survive and the
    /// next job runs on a clean epoch.
    RankPanicked {
        /// The first rank whose panic was not a secondary poison cascade.
        rank: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A pool worker died and its job result will never arrive (only
    /// reachable if a job leaks communicator clones past its own end,
    /// breaking mailbox recovery).
    WorkerLost {
        /// Rank of the lost worker.
        rank: usize,
    },
    /// The pool has been shut down and accepts no further jobs.
    PoolShutdown,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Spawn { rank, source } => {
                write!(f, "failed to spawn rank {rank} thread: {source}")
            }
            RuntimeError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RuntimeError::WorkerLost { rank } => {
                write!(
                    f,
                    "pool worker for rank {rank} died without reporting a result"
                )
            }
            RuntimeError::PoolShutdown => write!(f, "rank pool is shut down"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Spawn { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::RankPanicked {
            rank: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 panicked: boom");
        let e = RuntimeError::PoolShutdown;
        assert!(e.to_string().contains("shut down"));
    }

    #[test]
    fn spawn_error_exposes_source() {
        use std::error::Error;
        let e = RuntimeError::Spawn {
            rank: 0,
            source: io::Error::other("EAGAIN"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("rank 0"));
    }
}
