//! A threaded message-passing runtime — the MPI substitute.
//!
//! The paper's algorithms are expressed against MPI: ranks, communicators
//! created with `MPI_Comm_split`, point-to-point messages and rooted
//! collectives (`MPI_Bcast`). No mature MPI binding is available in this
//! environment, so this crate reimplements that programming model on OS
//! threads within one process:
//!
//! * [`Runtime::run`] spawns one thread per rank and hands each a
//!   [`Comm`] spanning all ranks (the "world" communicator);
//! * [`Comm::send`] / [`Comm::recv`] are typed, tagged, buffered
//!   point-to-point operations with MPI-style `(source, tag)` matching;
//! * [`Comm::split`] partitions a communicator by `(color, key)` exactly
//!   like `MPI_Comm_split` — HSUMMA's four communicators (row, column,
//!   group-row, group-column; Algorithm 1 of the paper) are built this way;
//! * [`collectives`] provides `barrier`, `bcast` (with selectable
//!   algorithms: flat, binomial, binary, ring, pipelined, and van de
//!   Geijn's scatter/allgather), `gather`, `allgather`, `reduce` and
//!   `allreduce`, all implemented message-by-message over point-to-point —
//!   so the runtime's communication behaviour is fully observable;
//! * every operation accumulates wall-clock time into per-rank
//!   [`stats::CommStats`], which is how the experiments separate
//!   *communication* from *computation* time, mirroring the paper's
//!   measurements;
//! * [`RankPool`] is the long-lived variant of [`Runtime::run`]: the `p`
//!   rank threads are created once and execute a sequence of SPMD jobs,
//!   each demarcated by an epoch (per-job stats, per-job tracing, stale
//!   messages purged at the boundary) — the substrate of the serving
//!   layer (`hsumma-serve`);
//! * failures surface as [`RuntimeError`] through [`Runtime::try_run`]
//!   and the pool API, so a server can fail one job without aborting the
//!   process;
//! * communication is **fallible end-to-end**: every send, receive and
//!   collective returns `Result<_, CommError>`. A job can carry a
//!   wall-clock deadline and a cancellation flag ([`runtime::JobOptions`],
//!   [`message::JobCtl`]) observed by every blocking wait — no busy
//!   spinning — and a deterministic fault plan
//!   ([`hsumma_trace::FaultPlan`]) can drop, delay, duplicate or kill at
//!   the send path, for testing how the schedules degrade.

pub mod collectives;
pub mod comm;
pub mod error;
pub mod message;
pub mod pool;
pub mod runtime;
pub mod stats;

pub use collectives::BcastAlgorithm;
pub use comm::Comm;
pub use error::RuntimeError;
pub use message::{CancelToken, JobCtl};
pub use pool::{PoolExec, PoolRun, RankPool, SubPool};
pub use runtime::{JobOptions, Runtime};
pub use stats::CommStats;

// The fault vocabulary lives in `hsumma-trace` (shared with the
// simulator); re-export it so runtime users need one import path.
pub use hsumma_trace::{
    CommEdge, CommError, CommErrorKind, FaultAction, FaultPlan, FaultRule, KillRule, TagClass,
    WirePayload,
};
