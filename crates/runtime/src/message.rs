//! Message envelopes and per-rank mailboxes.
//!
//! Every rank owns one [`Mailbox`]: an unbounded MPMC channel on which all
//! other ranks deposit [`Envelope`]s. Reception uses MPI-style matching on
//! `(context, source, tag)`; messages that arrive before a matching `recv`
//! is posted are parked in an *unexpected-message queue* and picked up
//! later, preserving per-(sender, context, tag) FIFO order.
//!
//! Every blocking wait is bounded: [`Mailbox::recv`] takes a [`JobCtl`]
//! carrying the job's optional deadline and a shared cancellation flag,
//! and returns a [`RecvFault`] instead of hanging when the deadline
//! passes, the job is cancelled, or a peer dies. There is no polling loop
//! on the clean path — waits park in `recv`/`recv_timeout` and are woken
//! either by a real message or by a [`CANCEL_CTX`] control envelope.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a communicator instance. Operations on different
/// communicators never match each other even with equal tags, mirroring
/// MPI's communication contexts.
pub type Context = u64;

/// Reserved context delivered by a dying rank to all peers so that anyone
/// blocked waiting on it fails fast instead of deadlocking.
pub const POISON_CTX: Context = u64::MAX;

/// Reserved context delivered by the pool watchdog (or any holder of the
/// sending side) purely to wake ranks parked in a blocking wait after the
/// job's cancellation flag has been raised. Carries no payload meaning.
pub const CANCEL_CTX: Context = u64::MAX - 1;

/// User-level message tag.
pub type Tag = u64;

/// A message in flight: routing metadata plus a type-erased payload.
pub struct Envelope {
    /// Communicator context the message was sent on.
    pub ctx: Context,
    /// *World* rank of the sender.
    pub src: usize,
    /// User tag.
    pub tag: Tag,
    /// Job epoch the message belongs to. [`crate::Runtime::run`] always
    /// uses epoch 0; the persistent [`crate::RankPool`] stamps every
    /// message with the running job's epoch so stragglers from a finished
    /// (or crashed) job can never match — or poison — a later one.
    pub epoch: u64,
    /// Earliest instant the receiver may match this message. `None` for
    /// normal traffic; set by a `Delay` fault injected at the send path.
    pub not_before: Option<Instant>,
    /// The payload; downcast on receipt.
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    fn matches(&self, ctx: Context, src: usize, tag: Tag) -> bool {
        self.ctx == ctx && self.src == src && self.tag == tag
    }

    fn due(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| now >= t)
    }
}

/// Why a bounded mailbox wait gave up. The communicator layer wraps this
/// into a `CommError` that names the full `(rank, peer, ctx, tag, epoch)`
/// edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvFault {
    /// The job deadline passed while waiting.
    Timeout,
    /// The job's cancellation flag was raised while waiting.
    Cancelled,
    /// A current-epoch poison marker arrived: world rank `src` died.
    PeerDead {
        /// World rank of the dead peer.
        src: usize,
    },
    /// All senders disconnected — every peer thread is gone.
    Closed,
}

/// Per-job wait bounds shared by every blocking mailbox operation: an
/// optional absolute deadline plus a cancellation flag that a watchdog
/// (holding a [`CancelToken`]) can raise from outside the rank threads.
#[derive(Clone)]
pub struct JobCtl {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl JobCtl {
    /// No deadline, fresh (never-raised) cancellation flag.
    pub fn unbounded() -> Self {
        JobCtl {
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Deadline `timeout` from now, fresh cancellation flag.
    pub fn with_timeout(timeout: Option<Duration>) -> Self {
        JobCtl {
            deadline: timeout.map(|d| Instant::now() + d),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A control block sharing an existing cancellation flag (so all
    /// ranks of one job are cancelled together).
    pub fn with_parts(deadline: Option<Instant>, cancelled: Arc<AtomicBool>) -> Self {
        JobCtl {
            deadline,
            cancelled,
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the cancellation flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// A handle that can raise the cancellation flag from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.cancelled),
        }
    }

    /// A copy of this control block with the deadline tightened to
    /// `at` (keeps the shared cancellation flag).
    pub fn tightened(&self, at: Instant) -> JobCtl {
        let deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        JobCtl {
            deadline,
            cancelled: Arc::clone(&self.cancelled),
        }
    }
}

/// Raises a job's cancellation flag. Waking ranks that are parked in a
/// blocking wait additionally requires delivering a [`CANCEL_CTX`]
/// envelope to their mailboxes (see [`MailboxSender::deliver_cancel`]);
/// the pool watchdog does both.
#[derive(Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Sending half of a rank's mailbox; cloneable, one per peer.
#[derive(Clone)]
pub struct MailboxSender {
    tx: Sender<Envelope>,
}

impl MailboxSender {
    /// Deposits an envelope. Never blocks (the channel is unbounded, like
    /// an eager-protocol MPI send).
    pub fn deliver(&self, env: Envelope) {
        // The receiver only disappears if its thread panicked; the panic is
        // propagated by the runtime, so a failed delivery here is moot.
        let _ = self.tx.send(env);
    }

    /// Wakes a rank parked in a blocking wait at `epoch` so it notices a
    /// raised cancellation flag. Pure control traffic: never matched.
    pub fn deliver_cancel(&self, epoch: u64) {
        self.deliver(Envelope {
            ctx: CANCEL_CTX,
            src: usize::MAX,
            tag: 0,
            epoch,
            not_before: None,
            payload: Box::new(()),
        });
    }
}

/// What [`Mailbox::admit`] decided about an incoming envelope.
enum Admit {
    /// Wrong epoch — straggler from another job, drop silently.
    Stale,
    /// Current-epoch poison: the named world rank died.
    Poison(usize),
    /// Current-epoch cancel wake-up.
    Cancel,
    /// Normal message of the current epoch.
    Live,
}

/// Receiving half: owned by exactly one rank thread.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv`.
    unexpected: VecDeque<Envelope>,
    /// The job epoch this mailbox currently accepts. Envelopes from other
    /// epochs are dropped on sight: they are stragglers from a previous
    /// pooled job (including its poison markers) and must neither match
    /// nor kill the current one.
    epoch: u64,
}

impl Mailbox {
    /// Creates a connected (sender, receiver) mailbox pair at epoch 0.
    pub fn new() -> (MailboxSender, Mailbox) {
        let (tx, rx) = unbounded();
        (
            MailboxSender { tx },
            Mailbox {
                rx,
                unexpected: VecDeque::new(),
                epoch: 0,
            },
        )
    }

    /// The job epoch the mailbox currently accepts.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the mailbox to a new job epoch, purging everything left
    /// over from earlier epochs (parked unexpected messages and anything
    /// already sitting in the channel — poison, cancel wake-ups and
    /// fault-duplicated messages included). Messages of the *new* epoch —
    /// sent by pool workers that entered the job first — are kept, in
    /// arrival order.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.unexpected
            .retain(|e| e.epoch == epoch && e.ctx != CANCEL_CTX);
        while let Ok(env) = self.rx.try_recv() {
            if env.epoch == epoch && env.ctx != CANCEL_CTX {
                self.unexpected.push_back(env);
            }
        }
    }

    /// Classifies an envelope against the current epoch.
    fn admit(&self, env: &Envelope) -> Admit {
        if env.epoch != self.epoch {
            return Admit::Stale;
        }
        if env.ctx == POISON_CTX {
            return Admit::Poison(env.src);
        }
        if env.ctx == CANCEL_CTX {
            return Admit::Cancel;
        }
        Admit::Live
    }

    /// Blocks until a message matching `(ctx, src, tag)` is available and
    /// returns its payload, downcast to `T` — or a [`RecvFault`] when the
    /// wait is cut short by `ctl`'s deadline, `ctl`'s cancellation flag,
    /// or a peer's death. The wait parks in the channel (no spinning);
    /// delay-faulted messages are held until their release instant.
    ///
    /// # Panics
    /// Panics only if the matching message's payload is not a `T` (a type
    /// confusion bug in the caller).
    pub fn recv<T: Any + Send>(
        &mut self,
        ctx: Context,
        src: usize,
        tag: Tag,
        ctl: &JobCtl,
    ) -> Result<T, RecvFault> {
        loop {
            if ctl.is_cancelled() {
                return Err(RecvFault::Cancelled);
            }
            let now = Instant::now();
            if let Some(d) = ctl.deadline() {
                if now >= d {
                    return Err(RecvFault::Timeout);
                }
            }
            // A due match may already be parked.
            if let Some(pos) = self
                .unexpected
                .iter()
                .position(|e| e.matches(ctx, src, tag) && e.due(now))
            {
                let env = self.unexpected.remove(pos).expect("position just found");
                return Ok(Self::downcast(env));
            }
            // Otherwise wait until the deadline or until the earliest
            // parked-but-delayed match becomes due, whichever is sooner.
            let next_due = self
                .unexpected
                .iter()
                .filter(|e| e.matches(ctx, src, tag))
                .filter_map(|e| e.not_before)
                .min();
            let bound = match (ctl.deadline(), next_due) {
                (Some(d), Some(n)) => Some(d.min(n)),
                (Some(d), None) => Some(d),
                (None, Some(n)) => Some(n),
                (None, None) => None,
            };
            let env = match bound {
                None => match self.rx.recv() {
                    Ok(env) => env,
                    Err(_) => return Err(RecvFault::Closed),
                },
                Some(until) => {
                    match self.rx.recv_timeout(until.saturating_duration_since(now)) {
                        Ok(env) => env,
                        // Either the deadline or a delayed message's
                        // release instant elapsed; loop re-evaluates.
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return Err(RecvFault::Closed),
                    }
                }
            };
            match self.admit(&env) {
                Admit::Stale => continue,
                Admit::Poison(src) => return Err(RecvFault::PeerDead { src }),
                Admit::Cancel => continue, // loop re-checks the flag
                Admit::Live => {
                    if env.matches(ctx, src, tag) && env.due(Instant::now()) {
                        return Ok(Self::downcast(env));
                    }
                    self.unexpected.push_back(env);
                }
            }
        }
    }

    /// Non-blocking variant of [`Mailbox::recv`]: returns `Ok(None)` when
    /// no matching message has arrived (or none is due) yet — an
    /// `MPI_Iprobe` + receive. Surfaces peer death like `recv` does.
    pub fn try_recv<T: Any + Send>(
        &mut self,
        ctx: Context,
        src: usize,
        tag: Tag,
    ) -> Result<Option<T>, RecvFault> {
        let now = Instant::now();
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| e.matches(ctx, src, tag) && e.due(now))
        {
            let env = self.unexpected.remove(pos).expect("position just found");
            return Ok(Some(Self::downcast(env)));
        }
        // Drain whatever has already arrived without blocking.
        while let Ok(env) = self.rx.try_recv() {
            match self.admit(&env) {
                Admit::Stale | Admit::Cancel => continue,
                Admit::Poison(src) => return Err(RecvFault::PeerDead { src }),
                Admit::Live => {
                    if env.matches(ctx, src, tag) && env.due(Instant::now()) {
                        return Ok(Some(Self::downcast(env)));
                    }
                    self.unexpected.push_back(env);
                }
            }
        }
        Ok(None)
    }

    /// Number of messages parked in the unexpected queue (test hook).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    fn downcast<T: Any + Send>(env: Envelope) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving (src={}, ctx={:#x}, tag={:#x}, epoch={}): payload is not a {}",
                env.src,
                env.ctx,
                env.tag,
                env.epoch,
                std::any::type_name::<T>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> JobCtl {
        JobCtl::unbounded()
    }

    fn envelope(ctx: Context, src: usize, tag: Tag, epoch: u64, v: impl Any + Send) -> Envelope {
        Envelope {
            ctx,
            src,
            tag,
            epoch,
            not_before: None,
            payload: Box::new(v),
        }
    }

    #[test]
    fn direct_delivery_and_receive() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(envelope(1, 0, 7, 0, 42u32));
        let v: u32 = mb.recv(1, 0, 7, &ctl()).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(envelope(1, 0, 1, 0, "first"));
        tx.deliver(envelope(1, 0, 2, 0, "second"));
        // Receive tag 2 first; tag 1 must be parked, not lost.
        let s2: &str = mb.recv(1, 0, 2, &ctl()).unwrap();
        assert_eq!(s2, "second");
        assert_eq!(mb.unexpected_len(), 1);
        let s1: &str = mb.recv(1, 0, 1, &ctl()).unwrap();
        assert_eq!(s1, "first");
        assert_eq!(mb.unexpected_len(), 0);
    }

    #[test]
    fn fifo_order_preserved_per_sender_and_tag() {
        let (tx, mut mb) = Mailbox::new();
        for i in 0..10u64 {
            tx.deliver(envelope(0, 3, 5, 0, i));
        }
        for want in 0..10u64 {
            let got: u64 = mb.recv(0, 3, 5, &ctl()).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn contexts_do_not_cross_match() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(envelope(10, 0, 0, 0, 1i32));
        tx.deliver(envelope(20, 0, 0, 0, 2i32));
        let from_ctx20: i32 = mb.recv(20, 0, 0, &ctl()).unwrap();
        assert_eq!(from_ctx20, 2);
        let from_ctx10: i32 = mb.recv(10, 0, 0, &ctl()).unwrap();
        assert_eq!(from_ctx10, 1);
    }

    #[test]
    fn begin_epoch_purges_stale_keeps_current() {
        let (tx, mut mb) = Mailbox::new();
        // Parked from epoch 0, plus channel backlog from epochs 0 and 1.
        tx.deliver(envelope(1, 0, 1, 0, 10u32));
        let none: Option<u32> = mb.try_recv(9, 0, 9).unwrap(); // parks the epoch-0 msg
        assert!(none.is_none());
        tx.deliver(envelope(1, 0, 2, 0, 20u32));
        tx.deliver(envelope(1, 0, 3, 1, 30u32)); // early arrival for the next job
        mb.begin_epoch(1);
        assert_eq!(mb.epoch(), 1);
        assert_eq!(mb.unexpected_len(), 1, "only the epoch-1 message survives");
        let v: u32 = mb.recv(1, 0, 3, &ctl()).unwrap();
        assert_eq!(v, 30);
    }

    #[test]
    fn stale_epoch_messages_are_dropped_in_recv_path() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(2);
        tx.deliver(envelope(1, 0, 1, 1, 10u32)); // straggler from a finished job
        tx.deliver(envelope(1, 0, 1, 2, 20u32));
        let v: u32 = mb.recv(1, 0, 1, &ctl()).unwrap();
        assert_eq!(v, 20, "current-epoch message matches, straggler dropped");
        assert_eq!(mb.unexpected_len(), 0);
    }

    #[test]
    fn stale_poison_is_ignored() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(5);
        // Poison from a previous job's crash must not kill this epoch.
        tx.deliver(envelope(POISON_CTX, 3, 0, 4, ()));
        tx.deliver(envelope(0, 0, 7, 5, 42u32));
        let v: u32 = mb.recv(0, 0, 7, &ctl()).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn current_epoch_poison_names_the_dead_peer() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(5);
        tx.deliver(envelope(POISON_CTX, 3, 0, 5, ()));
        let got = mb.recv::<u32>(0, 0, 7, &ctl());
        assert_eq!(got.unwrap_err(), RecvFault::PeerDead { src: 3 });
    }

    #[test]
    fn deadline_bounds_a_wait_on_an_empty_mailbox() {
        let (_tx, mut mb) = Mailbox::new();
        let ctl = JobCtl::with_timeout(Some(Duration::from_millis(20)));
        let start = Instant::now();
        let got = mb.recv::<u32>(0, 0, 7, &ctl);
        assert_eq!(got.unwrap_err(), RecvFault::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn cancel_envelope_wakes_a_parked_wait() {
        let (tx, mut mb) = Mailbox::new();
        let ctl = ctl();
        let token = ctl.cancel_token();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
            tx.deliver_cancel(0);
            tx // keep the channel open past the cancel
        });
        // No deadline: the wait parks in the channel and must be woken by
        // the control envelope, not by polling.
        let got = mb.recv::<u32>(0, 0, 7, &ctl);
        assert_eq!(got.unwrap_err(), RecvFault::Cancelled);
        drop(waker.join().unwrap());
    }

    #[test]
    fn delayed_envelope_is_held_until_due() {
        let (tx, mut mb) = Mailbox::new();
        let hold = Duration::from_millis(25);
        tx.deliver(Envelope {
            ctx: 0,
            src: 0,
            tag: 7,
            epoch: 0,
            not_before: Some(Instant::now() + hold),
            payload: Box::new(9u32),
        });
        assert!(
            mb.try_recv::<u32>(0, 0, 7).unwrap().is_none(),
            "not due yet"
        );
        let start = Instant::now();
        let v: u32 = mb.recv(0, 0, 7, &ctl()).unwrap();
        assert_eq!(v, 9);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn closed_channel_reports_closed_not_panic() {
        let (tx, mut mb) = Mailbox::new();
        drop(tx);
        let got = mb.recv::<u32>(0, 0, 7, &ctl());
        assert_eq!(got.unwrap_err(), RecvFault::Closed);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_type_panics_with_diagnostic() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(envelope(0, 0, 0, 0, 1u8));
        let _: String = mb.recv(0, 0, 0, &ctl()).unwrap();
    }
}
