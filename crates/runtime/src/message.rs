//! Message envelopes and per-rank mailboxes.
//!
//! Every rank owns one [`Mailbox`]: an unbounded MPMC channel on which all
//! other ranks deposit [`Envelope`]s. Reception uses MPI-style matching on
//! `(context, source, tag)`; messages that arrive before a matching `recv`
//! is posted are parked in an *unexpected-message queue* and picked up
//! later, preserving per-(sender, context, tag) FIFO order.

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;

/// Identifies a communicator instance. Operations on different
/// communicators never match each other even with equal tags, mirroring
/// MPI's communication contexts.
pub type Context = u64;

/// Reserved context delivered by a dying rank to all peers so that anyone
/// blocked waiting on it fails fast instead of deadlocking.
pub const POISON_CTX: Context = u64::MAX;

/// User-level message tag.
pub type Tag = u64;

/// A message in flight: routing metadata plus a type-erased payload.
pub struct Envelope {
    /// Communicator context the message was sent on.
    pub ctx: Context,
    /// *World* rank of the sender.
    pub src: usize,
    /// User tag.
    pub tag: Tag,
    /// Job epoch the message belongs to. [`crate::Runtime::run`] always
    /// uses epoch 0; the persistent [`crate::RankPool`] stamps every
    /// message with the running job's epoch so stragglers from a finished
    /// (or crashed) job can never match — or poison — a later one.
    pub epoch: u64,
    /// The payload; downcast on receipt.
    pub payload: Box<dyn Any + Send>,
}

/// Sending half of a rank's mailbox; cloneable, one per peer.
#[derive(Clone)]
pub struct MailboxSender {
    tx: Sender<Envelope>,
}

impl MailboxSender {
    /// Deposits an envelope. Never blocks (the channel is unbounded, like
    /// an eager-protocol MPI send).
    pub fn deliver(&self, env: Envelope) {
        // The receiver only disappears if its thread panicked; the panic is
        // propagated by the runtime, so a failed delivery here is moot.
        let _ = self.tx.send(env);
    }
}

/// Receiving half: owned by exactly one rank thread.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv`.
    unexpected: VecDeque<Envelope>,
    /// The job epoch this mailbox currently accepts. Envelopes from other
    /// epochs are dropped on sight: they are stragglers from a previous
    /// pooled job (including its poison markers) and must neither match
    /// nor kill the current one.
    epoch: u64,
}

impl Mailbox {
    /// Creates a connected (sender, receiver) mailbox pair at epoch 0.
    pub fn new() -> (MailboxSender, Mailbox) {
        let (tx, rx) = unbounded();
        (
            MailboxSender { tx },
            Mailbox {
                rx,
                unexpected: VecDeque::new(),
                epoch: 0,
            },
        )
    }

    /// The job epoch the mailbox currently accepts.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the mailbox to a new job epoch, purging everything left
    /// over from earlier epochs (parked unexpected messages and anything
    /// already sitting in the channel, poison included). Messages of the
    /// *new* epoch — sent by pool workers that entered the job first —
    /// are kept, in arrival order.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.unexpected.retain(|e| e.epoch == epoch);
        while let Ok(env) = self.rx.try_recv() {
            if env.epoch == epoch {
                self.unexpected.push_back(env);
            }
        }
    }

    /// Whether an envelope belongs to the current epoch; stale ones are
    /// dropped, poison of the current epoch aborts the waiting rank.
    fn admit(&self, env: &Envelope) -> bool {
        if env.epoch != self.epoch {
            return false;
        }
        assert_ne!(
            env.ctx, POISON_CTX,
            "peer rank {} panicked while this rank was communicating",
            env.src
        );
        true
    }

    /// Blocks until a message matching `(ctx, src, tag)` is available and
    /// returns its payload, downcast to `T`.
    ///
    /// # Panics
    /// Panics if the matching message's payload is not a `T` (a type
    /// confusion bug in the caller), or if all senders disconnected while
    /// waiting (a peer rank died).
    pub fn recv<T: Any + Send>(&mut self, ctx: Context, src: usize, tag: Tag) -> T {
        // First look through messages that arrived early.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| e.ctx == ctx && e.src == src && e.tag == tag)
        {
            let env = self.unexpected.remove(pos).expect("position just found");
            return Self::downcast(env);
        }
        loop {
            let env = self
                .rx
                .recv()
                .expect("mailbox closed while waiting: a peer rank terminated early");
            if !self.admit(&env) {
                continue;
            }
            if env.ctx == ctx && env.src == src && env.tag == tag {
                return Self::downcast(env);
            }
            self.unexpected.push_back(env);
        }
    }

    /// Non-blocking variant of [`Mailbox::recv`]: returns `None` when no
    /// matching message has arrived yet (an `MPI_Iprobe` + receive).
    pub fn try_recv<T: Any + Send>(&mut self, ctx: Context, src: usize, tag: Tag) -> Option<T> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| e.ctx == ctx && e.src == src && e.tag == tag)
        {
            let env = self.unexpected.remove(pos).expect("position just found");
            return Some(Self::downcast(env));
        }
        // Drain whatever has already arrived without blocking.
        while let Ok(env) = self.rx.try_recv() {
            if !self.admit(&env) {
                continue;
            }
            if env.ctx == ctx && env.src == src && env.tag == tag {
                return Some(Self::downcast(env));
            }
            self.unexpected.push_back(env);
        }
        None
    }

    /// Number of messages parked in the unexpected queue (test hook).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    fn downcast<T: Any + Send>(env: Envelope) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving (ctx={}, src={}, tag={}): payload is not a {}",
                env.ctx,
                env.src,
                env.tag,
                std::any::type_name::<T>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_delivery_and_receive() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(Envelope {
            ctx: 1,
            src: 0,
            tag: 7,
            epoch: 0,
            payload: Box::new(42u32),
        });
        let v: u32 = mb.recv(1, 0, 7);
        assert_eq!(v, 42);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(Envelope {
            ctx: 1,
            src: 0,
            tag: 1,
            epoch: 0,
            payload: Box::new("first"),
        });
        tx.deliver(Envelope {
            ctx: 1,
            src: 0,
            tag: 2,
            epoch: 0,
            payload: Box::new("second"),
        });
        // Receive tag 2 first; tag 1 must be parked, not lost.
        let s2: &str = mb.recv(1, 0, 2);
        assert_eq!(s2, "second");
        assert_eq!(mb.unexpected_len(), 1);
        let s1: &str = mb.recv(1, 0, 1);
        assert_eq!(s1, "first");
        assert_eq!(mb.unexpected_len(), 0);
    }

    #[test]
    fn fifo_order_preserved_per_sender_and_tag() {
        let (tx, mut mb) = Mailbox::new();
        for i in 0..10u64 {
            tx.deliver(Envelope {
                ctx: 0,
                src: 3,
                tag: 5,
                epoch: 0,
                payload: Box::new(i),
            });
        }
        for want in 0..10u64 {
            let got: u64 = mb.recv(0, 3, 5);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn contexts_do_not_cross_match() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(Envelope {
            ctx: 10,
            src: 0,
            tag: 0,
            epoch: 0,
            payload: Box::new(1i32),
        });
        tx.deliver(Envelope {
            ctx: 20,
            src: 0,
            tag: 0,
            epoch: 0,
            payload: Box::new(2i32),
        });
        let from_ctx20: i32 = mb.recv(20, 0, 0);
        assert_eq!(from_ctx20, 2);
        let from_ctx10: i32 = mb.recv(10, 0, 0);
        assert_eq!(from_ctx10, 1);
    }

    fn env(ctx: Context, tag: Tag, epoch: u64, v: u32) -> Envelope {
        Envelope {
            ctx,
            src: 0,
            tag,
            epoch,
            payload: Box::new(v),
        }
    }

    #[test]
    fn begin_epoch_purges_stale_keeps_current() {
        let (tx, mut mb) = Mailbox::new();
        // Parked from epoch 0, plus channel backlog from epochs 0 and 1.
        tx.deliver(env(1, 1, 0, 10));
        let none: Option<u32> = mb.try_recv(9, 0, 9); // parks the epoch-0 msg
        assert!(none.is_none());
        tx.deliver(env(1, 2, 0, 20));
        tx.deliver(env(1, 3, 1, 30)); // early arrival for the next job
        mb.begin_epoch(1);
        assert_eq!(mb.epoch(), 1);
        assert_eq!(mb.unexpected_len(), 1, "only the epoch-1 message survives");
        let v: u32 = mb.recv(1, 0, 3);
        assert_eq!(v, 30);
    }

    #[test]
    fn stale_epoch_messages_are_dropped_in_recv_path() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(2);
        tx.deliver(env(1, 1, 1, 10)); // straggler from a finished job
        tx.deliver(env(1, 1, 2, 20));
        let v: u32 = mb.recv(1, 0, 1);
        assert_eq!(v, 20, "current-epoch message matches, straggler dropped");
        assert_eq!(mb.unexpected_len(), 0);
    }

    #[test]
    fn stale_poison_is_ignored_current_poison_panics() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(5);
        // Poison from a previous job's crash must not kill this epoch.
        tx.deliver(Envelope {
            ctx: POISON_CTX,
            src: 3,
            tag: 0,
            epoch: 4,
            payload: Box::new(()),
        });
        tx.deliver(env(0, 7, 5, 42));
        let v: u32 = mb.recv(0, 0, 7);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "peer rank 3 panicked")]
    fn current_epoch_poison_still_panics() {
        let (tx, mut mb) = Mailbox::new();
        mb.begin_epoch(5);
        tx.deliver(Envelope {
            ctx: POISON_CTX,
            src: 3,
            tag: 0,
            epoch: 5,
            payload: Box::new(()),
        });
        let _: u32 = mb.recv(0, 0, 7);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn wrong_type_panics_with_diagnostic() {
        let (tx, mut mb) = Mailbox::new();
        tx.deliver(Envelope {
            ctx: 0,
            src: 0,
            tag: 0,
            epoch: 0,
            payload: Box::new(1u8),
        });
        let _: String = mb.recv(0, 0, 0);
    }
}
