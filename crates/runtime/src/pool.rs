//! A persistent rank pool: `p` worker threads created once, executing a
//! sequence of SPMD jobs without respawning.
//!
//! [`crate::Runtime::run`] plays `mpirun`: it spawns `p` OS threads,
//! runs one SPMD function, and joins them. That is the right shape for a
//! test or a single experiment, but a serving process multiplies many
//! matrices back to back, and paying thread creation, wiring and teardown
//! per call puts `O(p)` system calls on every request's critical path.
//!
//! [`RankPool`] keeps the world alive between jobs:
//!
//! * workers and their mailbox wiring are created **once** in
//!   [`RankPool::new`] (failures surface as [`RuntimeError::Spawn`], not
//!   a process abort);
//! * each [`RankPool::run`] dispatches one SPMD closure to all ranks and
//!   collects their results — a *job*;
//! * jobs are demarcated by **epochs**: every message carries its job's
//!   epoch, mailboxes purge stragglers at the epoch boundary, and the
//!   per-job [`CommStats`] start from zero, so a job's report describes
//!   that job only (see [`PoolRun`]);
//! * a panicking rank fails **its job**, not the pool: peers are poisoned
//!   (scoped to the epoch), the error is returned as
//!   [`RuntimeError::RankPanicked`], and the workers go on to the next
//!   job on a clean epoch.
//!
//! Jobs must be well-formed SPMD programs: every message a job sends to a
//! rank that survives the job must be received by it or be discardable —
//! leftovers are dropped at the next epoch boundary. A job that deadlocks
//! (a receive nothing will satisfy) blocks the pool, exactly as it would
//! block `mpirun`.

use crate::comm::Comm;
use crate::error::RuntimeError;
use crate::message::{JobCtl, Mailbox, MailboxSender};
use crate::runtime::{panic_message, poison_members, primary_panic, JobOptions};
use crate::stats::CommStats;
use hsumma_trace::{FaultPlan, FaultState, TraceSink, Tracer};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Extra wall-clock slack the pool watchdog grants past a job's deadline
/// before it steps in. Ranks parked in a blocking wait enforce the
/// deadline themselves; the watchdog only has to catch ranks that are
/// stuck *outside* the communication layer (long local compute), and the
/// slack keeps it from racing the ranks' own timeout reporting.
const WATCHDOG_GRACE: Duration = Duration::from_millis(50);

/// A boxed SPMD closure as shipped to the workers: rank-typed results are
/// erased here and recovered by downcast in [`RankPool::run_traced`].
type JobFn = Arc<dyn Fn(&mut Comm) -> Box<dyn Any + Send> + Send + Sync>;

/// What a worker reports back per job: the erased result, or the panic
/// message if the rank's closure panicked.
type RankResult = Result<Box<dyn Any + Send>, String>;

struct Job {
    epoch: u64,
    f: JobFn,
    sink: TraceSink,
    ctl: JobCtl,
    faults: Option<Arc<FaultPlan>>,
    /// World ranks participating in this job, ordered by local rank. The
    /// whole pool for ordinary jobs; a carved subset for sub-pool jobs.
    members: Arc<Vec<usize>>,
    /// Reports `(local rank, result, stats)` back to the dispatcher.
    result_tx: mpsc::Sender<(usize, RankResult, CommStats)>,
}

/// The outcome of one pooled job: per-rank results (indexed by rank) and
/// the per-rank communication statistics *of this job only* — each job
/// starts its counters from zero, so these are epoch deltas, not pool
/// lifetime accumulations.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// Rank results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank [`CommStats`] accumulated by this job alone.
    pub stats: Vec<CommStats>,
}

/// A persistent world of `p` rank threads executing SPMD jobs in
/// sequence. See the [module docs](self) for the contract.
///
/// ```
/// use hsumma_runtime::RankPool;
///
/// let mut pool = RankPool::new(4).expect("spawn");
/// // Two jobs on the same threads — no respawn in between.
/// let a = pool.run(|comm| comm.rank()).unwrap();
/// let b = pool.run(|comm| comm.size()).unwrap();
/// assert_eq!(a.results, vec![0, 1, 2, 3]);
/// assert_eq!(b.results, vec![4, 4, 4, 4]);
/// ```
pub struct RankPool {
    job_txs: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Mailbox senders of every rank, kept so the watchdog can wake
    /// blocked ranks when it cancels an overrunning job.
    senders: Arc<Vec<MailboxSender>>,
    /// Per-rank stats merged over every completed job (pool lifetime).
    lifetime: Arc<Vec<Mutex<CommStats>>>,
    /// Epoch allocator shared with every carved [`SubPool`]: each
    /// dispatched job draws a fresh epoch, so no two in-flight jobs —
    /// concurrent sub-pool jobs included — can ever share one. Starts
    /// at 1: epoch 0 is the one-shot [`crate::Runtime`] world, so pooled
    /// traffic never collides with it.
    epochs: Arc<AtomicU64>,
    /// Jobs dispatched (whole-pool and sub-pool alike).
    jobs_run: Arc<AtomicU64>,
    p: usize,
}

impl RankPool {
    /// Spawns the `p` worker threads and wires their mailboxes. The
    /// threads park on an empty job queue until [`RankPool::run`].
    ///
    /// On a refused spawn, the workers already launched are shut down and
    /// joined before [`RuntimeError::Spawn`] is returned — a failed pool
    /// launch leaks nothing.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Result<Self, RuntimeError> {
        assert!(p > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut mailboxes = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = Mailbox::new();
            senders.push(tx);
            mailboxes.push(rx);
        }
        let senders = Arc::new(senders);
        let lifetime: Arc<Vec<Mutex<CommStats>>> =
            Arc::new((0..p).map(|_| Mutex::new(CommStats::default())).collect());

        let mut job_txs = Vec::with_capacity(p);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(p);
        for (rank, mailbox) in mailboxes.into_iter().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            let senders = Arc::clone(&senders);
            let lifetime = Arc::clone(&lifetime);
            let spawned = std::thread::Builder::new()
                .name(format!("pool-rank-{rank}"))
                .spawn(move || worker_loop(rank, senders, mailbox, job_rx, lifetime));
            match spawned {
                Ok(h) => {
                    job_txs.push(job_tx);
                    handles.push(h);
                }
                Err(source) => {
                    // Dropping the queues ends the already-running workers.
                    drop(job_txs);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(RuntimeError::Spawn { rank, source });
                }
            }
        }
        Ok(RankPool {
            job_txs,
            handles,
            senders,
            lifetime,
            epochs: Arc::new(AtomicU64::new(1)),
            jobs_run: Arc::new(AtomicU64::new(0)),
            p,
        })
    }

    /// Number of ranks in the pool.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Jobs completed (successfully or not) so far, sub-pool jobs
    /// included.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run.load(Ordering::Relaxed)
    }

    /// Carves the pool into disjoint **sub-pools** of the given sizes —
    /// gang scheduling's substrate. Each [`SubPool`] owns a contiguous
    /// band of the pool's world ranks and dispatches SPMD jobs to *its*
    /// ranks only, so a 64-rank pool can run four 16-rank jobs
    /// concurrently instead of serializing them. Sub-pools may be moved
    /// to other threads (e.g. one dispatcher thread per concurrent job
    /// under [`std::thread::scope`]).
    ///
    /// The borrow checker enforces the ownership handoff: the sub-pools
    /// mutably borrow the pool, so no whole-pool job can be dispatched
    /// while any carve is alive, and dropping the sub-pools returns the
    /// pool whole — the workers never notice, they just see jobs from a
    /// different dispatcher.
    ///
    /// Every per-job mechanism survives the carve unchanged: epochs come
    /// from the pool-wide allocator (concurrent jobs never share one),
    /// deadlines get a per-sub-pool watchdog, fault plans see the job's
    /// *local* ranks, a panicking rank poisons only its own sub-pool's
    /// members, and per-job [`CommStats`]/trace demarcation is identical
    /// to whole-pool jobs.
    ///
    /// Ranks not covered by `sizes` stay parked (idle) until the carve
    /// is dropped.
    ///
    /// # Panics
    /// Panics if `sizes` is empty, any size is zero, or the sizes sum to
    /// more than the pool's rank count.
    pub fn carve(&mut self, sizes: &[usize]) -> Vec<SubPool<'_>> {
        assert!(!sizes.is_empty(), "carve needs at least one sub-pool");
        let total: usize = sizes.iter().sum();
        assert!(
            sizes.iter().all(|&s| s > 0) && total <= self.p,
            "carve sizes {sizes:?} must be positive and sum to ≤ {}",
            self.p
        );
        let mut next = 0;
        sizes
            .iter()
            .map(|&s| {
                let members: Vec<usize> = (next..next + s).collect();
                next += s;
                SubPool {
                    job_txs: members.iter().map(|&r| self.job_txs[r].clone()).collect(),
                    members: Arc::new(members),
                    senders: Arc::clone(&self.senders),
                    epochs: Arc::clone(&self.epochs),
                    jobs_run: Arc::clone(&self.jobs_run),
                    _pool: PhantomData,
                }
            })
            .collect()
    }

    /// Runs one SPMD job on all ranks and returns their results with the
    /// job's per-rank [`CommStats`] deltas.
    ///
    /// A rank panic fails the job — [`RuntimeError::RankPanicked`] names
    /// the originating rank — and the pool remains usable: the next job
    /// starts on a fresh epoch with purged mailboxes.
    pub fn run<R, F>(&mut self, f: F) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        self.run_traced(&Tracer::disabled(), f)
    }

    /// Like [`RankPool::run`], recording the job's events into `tracer`.
    /// Per-job tracing demarcation: hand each job its own [`Tracer`] and
    /// the collected trace contains exactly that job's spans (rank sinks
    /// are claimed at job start and released at job end).
    pub fn run_traced<R, F>(&mut self, tracer: &Tracer, f: F) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        self.run_opts(tracer, &JobOptions::default(), f)
    }

    /// Like [`RankPool::run_traced`] with a per-job failure policy
    /// ([`JobOptions`]): a wall-clock deadline and/or a fault plan.
    ///
    /// With a deadline set, a watchdog on the calling thread backs up the
    /// ranks' own deadline enforcement: if any rank is still out a small
    /// grace period (`WATCHDOG_GRACE`, 50 ms) past the deadline (stuck in
    /// local compute, where
    /// the communication layer cannot observe the deadline), the watchdog
    /// raises the job's cancellation flag and wakes every rank, then goes
    /// back to collecting. The job fails — each affected rank returns
    /// `CommError::Timeout`/`Cancelled` — but the pool keeps its workers:
    /// the next job starts on a fresh epoch with purged mailboxes.
    pub fn run_opts<R, F>(
        &mut self,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        let members: Arc<Vec<usize>> = Arc::new((0..self.p).collect());
        dispatch_job(
            &self.job_txs,
            &members,
            &self.senders,
            &self.epochs,
            &self.jobs_run,
            tracer,
            opts,
            f,
        )
    }

    /// Per-rank statistics accumulated across every job the pool has run
    /// (the sum of all per-job deltas).
    pub fn lifetime_stats(&self) -> Vec<CommStats> {
        self.lifetime
            .iter()
            .map(|m| m.lock().expect("stats lock").clone())
            .collect()
    }
}

/// A disjoint band of a [`RankPool`]'s ranks, produced by
/// [`RankPool::carve`], running SPMD jobs on *its* members only. Jobs
/// see an ordinary [`Comm`] of `size()` ranks (local ranks `0..size`);
/// epochs, deadlines, watchdog cancellation, fault injection, per-job
/// stats and tracing all behave exactly as on the whole pool.
///
/// `SubPool` is `Send`: carve on one thread, dispatch from another —
/// the intended shape is one dispatcher thread per concurrent gang
/// member under [`std::thread::scope`].
pub struct SubPool<'pool> {
    /// World ranks of this sub-pool, ordered by local rank.
    members: Arc<Vec<usize>>,
    /// Job queues of exactly the member ranks, by local rank.
    job_txs: Vec<mpsc::Sender<Job>>,
    senders: Arc<Vec<MailboxSender>>,
    epochs: Arc<AtomicU64>,
    jobs_run: Arc<AtomicU64>,
    /// The carve mutably borrows the pool: no whole-pool job can be
    /// dispatched while sub-pools are alive.
    _pool: PhantomData<&'pool mut RankPool>,
}

impl SubPool<'_> {
    /// Number of ranks in this sub-pool.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The pool world ranks this sub-pool owns, ordered by local rank.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Runs one SPMD job on this sub-pool's ranks; the closure's `Comm`
    /// has `size()` ranks. Results and per-job [`CommStats`] are indexed
    /// by *local* rank. See [`RankPool::run_opts`] for the deadline /
    /// watchdog / fault semantics, which are identical.
    pub fn run_opts<R, F>(
        &mut self,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        dispatch_job(
            &self.job_txs,
            &self.members,
            &self.senders,
            &self.epochs,
            &self.jobs_run,
            tracer,
            opts,
            f,
        )
    }

    /// Like [`SubPool::run_opts`] with default options and no tracing.
    pub fn run<R, F>(&mut self, f: F) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        self.run_opts(&Tracer::disabled(), &JobOptions::default(), f)
    }
}

/// The one capability the serving layer needs from an execution target:
/// "run this SPMD job on however many ranks you have". Implemented by
/// the whole [`RankPool`] and by carved [`SubPool`]s, so job-execution
/// code is written once and gang scheduling is purely a dispatch-layer
/// decision.
pub trait PoolExec {
    /// Ranks a job dispatched here will run on.
    fn ranks(&self) -> usize;

    /// Runs one SPMD job under `opts`, tracing into `tracer`.
    fn run_job<R, F>(
        &mut self,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static;
}

impl PoolExec for RankPool {
    fn ranks(&self) -> usize {
        self.size()
    }

    fn run_job<R, F>(
        &mut self,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        RankPool::run_opts(self, tracer, opts, f)
    }
}

impl PoolExec for SubPool<'_> {
    fn ranks(&self) -> usize {
        self.size()
    }

    fn run_job<R, F>(
        &mut self,
        tracer: &Tracer,
        opts: &JobOptions,
        f: F,
    ) -> Result<PoolRun<R>, RuntimeError>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        SubPool::run_opts(self, tracer, opts, f)
    }
}

/// The dispatch-and-collect tail shared by whole-pool and sub-pool runs:
/// draw a fresh epoch, ship the job to every member's queue, then gather
/// `(local rank, result, stats)` — arming the deadline watchdog when the
/// job has one. `job_txs` and results are ordered by local rank;
/// `members` maps local ranks to world ranks (for error reporting and
/// watchdog wake-ups, which touch member mailboxes only).
#[allow(clippy::too_many_arguments)]
fn dispatch_job<R, F>(
    job_txs: &[mpsc::Sender<Job>],
    members: &Arc<Vec<usize>>,
    senders: &Arc<Vec<MailboxSender>>,
    epochs: &AtomicU64,
    jobs_run: &AtomicU64,
    tracer: &Tracer,
    opts: &JobOptions,
    f: F,
) -> Result<PoolRun<R>, RuntimeError>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    let p = members.len();
    assert!(
        !tracer.enabled() || tracer.ranks() >= p,
        "tracer sized for {} ranks, job has {}",
        tracer.ranks(),
        p
    );
    let epoch = epochs.fetch_add(1, Ordering::SeqCst);
    jobs_run.fetch_add(1, Ordering::Relaxed);

    // One absolute deadline and one shared cancellation flag for the
    // whole job, fixed at dispatch.
    let ctl = JobCtl::with_timeout(opts.deadline);
    let token = ctl.cancel_token();

    let f: JobFn = Arc::new(move |comm: &mut Comm| -> Box<dyn Any + Send> { Box::new(f(comm)) });
    let (result_tx, result_rx) = mpsc::channel();
    for (local, tx) in job_txs.iter().enumerate() {
        let job = Job {
            epoch,
            f: Arc::clone(&f),
            sink: tracer.sink(local),
            ctl: ctl.clone(),
            faults: opts.faults.clone(),
            members: Arc::clone(members),
            result_tx: result_tx.clone(),
        };
        if tx.send(job).is_err() {
            return Err(RuntimeError::WorkerLost {
                rank: members[local],
            });
        }
    }
    drop(result_tx);

    let mut results: Vec<Option<(RankResult, CommStats)>> = (0..p).map(|_| None).collect();
    let mut watchdog_armed = ctl.deadline();
    let mut received = 0;
    while received < p {
        let msg = if let Some(d) = watchdog_armed {
            let wait = (d + WATCHDOG_GRACE).saturating_duration_since(Instant::now());
            match result_rx.recv_timeout(wait) {
                Ok(msg) => Ok(msg),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Deadline (plus grace) passed with ranks still
                    // out: cancel the job and wake every member rank,
                    // then keep collecting — the ranks unwind with
                    // `Timeout`/`Cancelled` and the workers survive.
                    // Sibling sub-pools' ranks are not touched.
                    token.cancel();
                    for &world in members.iter() {
                        senders[world].deliver_cancel(epoch);
                    }
                    watchdog_armed = None;
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
            }
        } else {
            result_rx.recv().map_err(|_| ())
        };
        match msg {
            Ok((local, res, stats)) => {
                results[local] = Some((res, stats));
                received += 1;
            }
            Err(()) => {
                // A worker died before reporting; identify which.
                let local = results.iter().position(Option::is_none).unwrap_or(0);
                return Err(RuntimeError::WorkerLost {
                    rank: members[local],
                });
            }
        }
    }

    let mut out = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (local, slot) in results.into_iter().enumerate() {
        let (res, st) = slot.expect("all ranks reported");
        stats.push(st);
        match res {
            Ok(boxed) => out.push(
                *boxed
                    .downcast::<R>()
                    .expect("job closure returned its own result type"),
            ),
            Err(message) => panics.push((members[local], message)),
        }
    }
    if !panics.is_empty() {
        let (rank, message) = primary_panic(&panics);
        return Err(RuntimeError::RankPanicked { rank, message });
    }
    Ok(PoolRun {
        results: out,
        stats,
    })
}

impl Drop for RankPool {
    fn drop(&mut self) {
        // Closing the job queues ends the worker loops.
        self.job_txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One pool worker: parks on the job queue, and per job advances its
/// mailbox to the new epoch, rebuilds the world communicator around it,
/// runs the closure, and tears the communicator back down to recover the
/// mailbox for the next job.
fn worker_loop(
    rank: usize,
    senders: Arc<Vec<MailboxSender>>,
    mailbox: Mailbox,
    job_rx: mpsc::Receiver<Job>,
    lifetime: Arc<Vec<Mutex<CommStats>>>,
) {
    let mut parked = Some(mailbox);
    while let Ok(job) = job_rx.recv() {
        let Job {
            epoch,
            f,
            sink,
            ctl,
            faults,
            members,
            result_tx,
        } = job;
        let local = members
            .iter()
            .position(|&w| w == rank)
            .expect("worker received a job it is not a member of");
        let mut mailbox = parked.take().expect("mailbox parked between jobs");
        // Entering the epoch purges everything a previous job left behind
        // (stale payloads and stale poison); messages already sent by
        // faster peers of *this* job are kept.
        mailbox.begin_epoch(epoch);
        let fault_state = faults.map(|plan| FaultState::new(plan, local));
        let mut comm = Comm::group_opts(
            Arc::clone(&senders),
            mailbox,
            rank,
            (*members).clone(),
            sink,
            epoch,
            ctl,
            fault_state,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
        let result: RankResult = match outcome {
            Ok(v) => Ok(v),
            Err(payload) => {
                // Fail the job, not the pool: unblock the job's *member*
                // peers waiting on this rank (poison scoped to this
                // epoch); sibling sub-pools never see it.
                poison_members(&senders, &members, rank, epoch);
                Err(panic_message(payload.as_ref()))
            }
        };
        let (mb, stats) = comm
            .into_parts()
            .expect("job leaked a communicator clone past its end");
        parked = Some(mb);
        lifetime[rank]
            .lock()
            .expect("stats lock")
            .merge_in_place(&stats);
        // Send last: the job is only "done" once the mailbox is parked.
        let _ = result_tx.send((local, result, stats));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::allreduce;

    #[test]
    fn pool_runs_many_jobs_without_respawn() {
        let mut pool = RankPool::new(4).unwrap();
        for job in 0..10u64 {
            let run = pool
                .run(move |comm| {
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    comm.send(next, 1, comm.rank() as u64 + job).unwrap();
                    comm.recv::<u64>(prev, 1).unwrap()
                })
                .unwrap();
            for (rank, got) in run.results.iter().enumerate() {
                assert_eq!(*got, ((rank + 3) % 4) as u64 + job);
            }
        }
        assert_eq!(pool.jobs_run(), 10);
    }

    #[test]
    fn per_job_stats_are_deltas_not_accumulations() {
        let mut pool = RankPool::new(2).unwrap();
        let job = |comm: &mut Comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 1, vec![0.0f64; 100]).unwrap();
            let _: Vec<f64> = comm.recv(peer, 1).unwrap();
        };
        let first = pool.run(job).unwrap();
        let second = pool.run(job).unwrap();
        // Identical jobs: identical per-job counters, NOT 2x on the second.
        assert_eq!(first.stats[0].msgs_sent, 1);
        assert_eq!(second.stats[0].msgs_sent, 1);
        assert_eq!(second.stats[0].bytes_sent, 800);
        // Lifetime view is the running sum of the deltas.
        let life = pool.lifetime_stats();
        assert_eq!(life[0].msgs_sent, 2);
        assert_eq!(life[1].bytes_recv, 1600);
    }

    #[test]
    fn splits_and_collectives_work_across_jobs() {
        let mut pool = RankPool::new(8).unwrap();
        for _ in 0..3 {
            let run = pool
                .run(|comm| {
                    let color = (comm.rank() % 2) as u64;
                    let sub = comm.split(color, comm.rank() as i64).unwrap();
                    allreduce(&sub, comm.rank(), |a, b| a + b).unwrap()
                })
                .unwrap();
            // Evens sum 0+2+4+6 = 12, odds 1+3+5+7 = 16.
            for (rank, sum) in run.results.iter().enumerate() {
                assert_eq!(*sum, if rank % 2 == 0 { 12 } else { 16 });
            }
        }
    }

    #[test]
    fn a_panicking_job_fails_but_the_pool_survives() {
        let mut pool = RankPool::new(4).unwrap();
        // Job 1: rank 2 dies while others wait on it.
        let err = pool
            .run(|comm| {
                if comm.rank() == 2 {
                    panic!("bad job");
                }
                comm.recv::<u8>(2, 1).unwrap()
            })
            .expect_err("job must fail");
        match err {
            RuntimeError::RankPanicked { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("bad job"));
            }
            other => panic!("wrong error: {other}"),
        }
        // Job 2 on the same pool: clean epoch, correct answers.
        let run = pool.run(|comm| comm.rank() + 10).unwrap();
        assert_eq!(run.results, vec![10, 11, 12, 13]);
    }

    #[test]
    fn unreceived_messages_do_not_leak_into_the_next_job() {
        let mut pool = RankPool::new(2).unwrap();
        // Job 1 sends a message nobody receives.
        pool.run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 123u32).unwrap();
            }
        })
        .unwrap();
        // Job 2 receives on the same (peer, tag): it must get job 2's
        // message, not job 1's straggler.
        let run = pool
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, 456u32).unwrap();
                    0
                } else {
                    comm.recv::<u32>(0, 7).unwrap()
                }
            })
            .unwrap();
        assert_eq!(run.results[1], 456);
    }

    #[test]
    fn traced_jobs_get_their_own_spans() {
        let mut pool = RankPool::new(2).unwrap();
        let job = |comm: &mut Comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 1, vec![1.0f64; 4]).unwrap();
            let _: Vec<f64> = comm.recv(peer, 1).unwrap();
        };
        let t1 = Tracer::new(2);
        pool.run_traced(&t1, job).unwrap();
        let t2 = Tracer::new(2);
        pool.run_traced(&t2, job).unwrap();
        // Each job's tracer holds exactly that job's sends (one per rank).
        assert_eq!(t1.collect().payload_send_multiset().len(), 2);
        assert_eq!(t2.collect().payload_send_multiset().len(), 2);
    }

    #[test]
    fn pool_of_one_rank_works() {
        let mut pool = RankPool::new(1).unwrap();
        let run = pool.run(|comm| comm.size()).unwrap();
        assert_eq!(run.results, vec![1]);
    }

    #[test]
    fn deadline_job_times_out_and_pool_keeps_serving() {
        use hsumma_trace::CommError;
        let mut pool = RankPool::new(4).unwrap();
        // Rank 0 never sends what the others wait for.
        let opts = JobOptions::default().with_deadline(Duration::from_millis(100));
        let run = pool
            .run_opts(&Tracer::disabled(), &opts, |comm| {
                if comm.rank() == 0 {
                    Ok(0u8)
                } else {
                    comm.recv::<u8>(0, 1)
                }
            })
            .unwrap();
        assert!(run.results[0].is_ok());
        for rank in 1..4 {
            match &run.results[rank] {
                Err(CommError::Timeout { edge, .. }) => {
                    assert_eq!((edge.rank, edge.peer), (rank, 0));
                }
                other => panic!("rank {rank}: expected timeout, got {other:?}"),
            }
            assert_eq!(run.stats[rank].timeouts, 1, "rank {rank}");
        }
        // The pool is still healthy: a clean job on a fresh epoch works.
        let next = pool.run(|comm| comm.rank() + 100).unwrap();
        assert_eq!(next.results, vec![100, 101, 102, 103]);
    }

    #[test]
    fn watchdog_cancels_ranks_stuck_outside_the_comm_layer() {
        use hsumma_trace::CommError;
        let mut pool = RankPool::new(2).unwrap();
        // Rank 0 overruns the deadline in *local compute*, where the
        // communication layer cannot observe the deadline, then tries to
        // communicate; rank 1 blocks on it. The watchdog must cancel the
        // job rather than let the dispatch hang.
        let opts = JobOptions::default().with_deadline(Duration::from_millis(80));
        let run = pool
            .run_opts(&Tracer::disabled(), &opts, |comm| {
                if comm.rank() == 0 {
                    std::thread::sleep(Duration::from_millis(300));
                    comm.send(1, 1, 1u8)?;
                    comm.recv::<u8>(1, 2)
                } else {
                    comm.recv::<u8>(0, 1)?;
                    comm.send(0, 2, 2u8)?;
                    Ok(0)
                }
            })
            .unwrap();
        // Rank 1 timed out waiting (its own deadline enforcement); rank 0
        // hit the deadline or the watchdog's cancellation when it finally
        // reached the comm layer.
        assert!(
            matches!(
                run.results[0],
                Err(CommError::Timeout { .. }) | Err(CommError::Cancelled { .. })
            ),
            "{:?}",
            run.results[0]
        );
        assert!(matches!(run.results[1], Err(CommError::Timeout { .. })));
        // Pool survives the overrun.
        let next = pool.run(|comm| comm.rank()).unwrap();
        assert_eq!(next.results, vec![0, 1]);
    }

    #[test]
    fn killed_rank_fails_its_job_but_not_the_pool() {
        use hsumma_trace::{CommError, FaultPlan};
        let mut pool = RankPool::new(3).unwrap();
        let plan = Arc::new(FaultPlan::new().kill_rank(1, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(100))
            .with_faults(plan);
        let run = pool
            .run_opts(&Tracer::disabled(), &opts, |comm| {
                // A ring everyone participates in; rank 1 dies at its
                // first send, so its neighbour times out.
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 1, comm.rank())?;
                comm.recv::<usize>(prev, 1)
            })
            .unwrap();
        assert!(
            matches!(run.results[1], Err(CommError::Shutdown { rank: 1, .. })),
            "{:?}",
            run.results[1]
        );
        // Rank 2 never gets rank 1's message.
        assert!(matches!(run.results[2], Err(CommError::Timeout { .. })));
        assert_eq!(run.stats[1].faults_injected, 1);
        // Workers are recycled, not lost.
        let next = pool.run(|comm| comm.rank() * 2).unwrap();
        assert_eq!(next.results, vec![0, 2, 4]);
    }

    #[test]
    fn per_rank_failure_counters_balance_under_fault_injection() {
        use hsumma_trace::{FaultPlan, TagClass};
        let mut pool = RankPool::new(2).unwrap();
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(100))
            .with_faults(plan);
        let run = pool
            .run_opts(&Tracer::disabled(), &opts, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 5, 1u8)?;
                    Ok(0)
                } else {
                    comm.recv::<u8>(0, 5)
                }
            })
            .unwrap();
        // Exactly one fault was injected, at the sender; exactly one
        // timeout was suffered, at the receiver. The dropped message is
        // not counted as sent, so the world ledger still balances:
        // nothing sent, nothing received.
        let total = run
            .stats
            .iter()
            .fold(CommStats::default(), |acc, s| acc.merge(s));
        assert_eq!(run.stats[0].faults_injected, 1);
        assert_eq!(run.stats[1].timeouts, 1);
        assert_eq!(total.msgs_sent, total.msgs_recv);
        assert_eq!(total.bytes_sent, total.bytes_recv);
    }

    /// The ring-shift job used by the carve tests: every rank sends its
    /// value to the next local rank and returns what it received, so any
    /// cross-sub-pool leakage (a message from a world rank outside the
    /// group) changes the result.
    fn ring_shift(seed: u64) -> impl Fn(&mut Comm) -> u64 + Send + Sync + 'static {
        move |comm: &mut Comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, seed + comm.rank() as u64).unwrap();
            comm.recv::<u64>(prev, 7).unwrap()
        }
    }

    #[test]
    fn carved_sub_pools_run_concurrent_jobs_identical_to_serial() {
        // Serial reference: each job on its own dedicated pool.
        let serial: Vec<Vec<u64>> = [(2, 100u64), (4, 200), (2, 300)]
            .iter()
            .map(|&(p, seed)| {
                let mut pool = RankPool::new(p).unwrap();
                pool.run(ring_shift(seed)).unwrap().results
            })
            .collect();

        // Gang: the same three jobs concurrently on one 8-rank pool.
        let mut pool = RankPool::new(8).unwrap();
        let subs = pool.carve(&[2, 4, 2]);
        assert_eq!(
            subs.iter()
                .map(|s| s.members().to_vec())
                .collect::<Vec<_>>(),
            vec![vec![0, 1], vec![2, 3, 4, 5], vec![6, 7]]
        );
        let mut gang: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = subs
                .into_iter()
                .zip([100u64, 200, 300])
                .map(|(mut sub, seed)| {
                    scope.spawn(move || sub.run(ring_shift(seed)).unwrap().results)
                })
                .collect();
            for h in handles {
                gang.push(h.join().unwrap());
            }
        });
        assert_eq!(gang, serial);

        // Carve dropped: the whole pool is usable again for full-width jobs.
        let whole = pool.run(ring_shift(400)).unwrap();
        assert_eq!(whole.results.len(), 8);
        for (rank, got) in whole.results.iter().enumerate() {
            assert_eq!(*got, 400 + ((rank + 7) % 8) as u64);
        }
    }

    #[test]
    fn fault_killed_sub_pool_job_leaves_sibling_untouched() {
        use hsumma_trace::FaultPlan;
        let mut pool = RankPool::new(6).unwrap();
        let mut subs = pool.carve(&[3, 3]);
        let victim_plan = Arc::new(FaultPlan::new().kill_rank(1, 0));
        let opts = JobOptions::default()
            .with_deadline(Duration::from_millis(100))
            .with_faults(victim_plan);
        std::thread::scope(|scope| {
            let mut sub_victim = subs.remove(0);
            let mut sub_ok = subs.remove(0);
            let victim = scope.spawn(move || {
                sub_victim.run_opts(&Tracer::disabled(), &opts, |comm| {
                    // Local rank 1 dies at its first send; its ring
                    // neighbours unwind with Shutdown/Timeout.
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    comm.send(next, 7, comm.rank() as u64)?;
                    comm.recv::<u64>(prev, 7)
                })
            });
            let ok = scope.spawn(move || sub_ok.run(ring_shift(500)));
            // The killed local rank 1 poisons only its own members; the
            // sibling's ring completes with correct values.
            let run = ok.join().unwrap().unwrap();
            assert_eq!(run.results, vec![502, 500, 501]);
            let failed = victim.join().unwrap().unwrap();
            assert!(failed.results.iter().any(|r| r.is_err()));
        });
        // Both bands of workers survive for the next whole-pool job.
        let next = pool.run(|comm| comm.rank()).unwrap();
        assert_eq!(next.results, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn carve_rejects_oversubscription() {
        let mut pool = RankPool::new(4).unwrap();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.carve(&[3, 2]);
        }));
        assert!(err.is_err());
    }
}
