//! Per-rank communication/computation accounting.
//!
//! The paper reports *communication time* and *overall execution time*
//! separately (Figs. 5–9). The runtime reproduces that split by timing
//! every communication primitive into [`CommStats::comm_seconds`] and
//! letting algorithms wrap local compute in `Comm::time_compute`, which
//! accumulates into [`CommStats::comp_seconds`].

/// Accumulated counters for one rank. All communicators derived from the
/// same rank thread share one instance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Wall-clock seconds spent inside communication primitives.
    pub comm_seconds: f64,
    /// Wall-clock seconds spent inside `time_compute` closures.
    pub comp_seconds: f64,
    /// Point-to-point messages sent (collectives count their constituent
    /// messages — the runtime's collectives are built from point-to-point).
    pub msgs_sent: u64,
    /// Payload bytes sent, accounted per message at the send site for
    /// every payload type whose wire size the runtime can see (`f64`
    /// buffers and their `Arc`-shared forms; `Comm::send_sized` for the
    /// rest). Control messages of unknown size count 0.
    pub bytes_sent: u64,
    /// Point-to-point messages received. Across a whole run the world
    /// totals must balance: `Σ msgs_sent == Σ msgs_recv`.
    pub msgs_recv: u64,
    /// Payload bytes received (mirrors [`Self::bytes_sent`] at the
    /// receive site, so byte ledgers can be cross-checked too).
    pub bytes_recv: u64,
    /// Payload buffers materialized (allocated + copied) by collectives on
    /// this rank. Broadcast relays forward `Arc`-shared payloads, so only
    /// the rank that *originates* data should count here — a relay with a
    /// nonzero count is deep-copying on the hot path.
    pub payload_clones: u64,
    /// Bytes those materializations copied (see [`Self::payload_clones`]).
    pub payload_clone_bytes: u64,
    /// Blocking waits on this rank that gave up because the job deadline
    /// passed.
    pub timeouts: u64,
    /// Blocking waits on this rank that gave up because the job was
    /// cancelled (watchdog or caller-held cancel token).
    pub cancelled: u64,
    /// Faults a `FaultPlan` injected at this rank's send path (drops,
    /// delays, duplicates and kills). Dropped and duplicated messages do
    /// NOT perturb `msgs_sent`/`bytes_sent`, so the world send/recv
    /// ledgers still balance under fault injection.
    pub faults_injected: u64,
}

impl CommStats {
    /// Communication plus computation time.
    pub fn total_seconds(&self) -> f64 {
        self.comm_seconds + self.comp_seconds
    }

    /// Element-wise sum, for aggregating across ranks.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            comm_seconds: self.comm_seconds + other.comm_seconds,
            comp_seconds: self.comp_seconds + other.comp_seconds,
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            payload_clones: self.payload_clones + other.payload_clones,
            payload_clone_bytes: self.payload_clone_bytes + other.payload_clone_bytes,
            timeouts: self.timeouts + other.timeouts,
            cancelled: self.cancelled + other.cancelled,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }

    /// In-place form of [`CommStats::merge`].
    pub fn merge_in_place(&mut self, other: &CommStats) {
        *self = self.merge(other);
    }

    /// The change since `baseline` — what happened between two snapshots
    /// of the same accumulating instance. This is how pooled jobs report
    /// *per-job* statistics (an epoch's delta) instead of counters
    /// accumulated over the pool's whole lifetime. Counters saturate at 0
    /// and times clamp at 0.0, so a stale baseline (e.g. taken before a
    /// reset) degrades to the raw values instead of underflowing.
    pub fn delta(&self, baseline: &CommStats) -> CommStats {
        CommStats {
            comm_seconds: (self.comm_seconds - baseline.comm_seconds).max(0.0),
            comp_seconds: (self.comp_seconds - baseline.comp_seconds).max(0.0),
            msgs_sent: self.msgs_sent.saturating_sub(baseline.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(baseline.bytes_sent),
            msgs_recv: self.msgs_recv.saturating_sub(baseline.msgs_recv),
            bytes_recv: self.bytes_recv.saturating_sub(baseline.bytes_recv),
            payload_clones: self.payload_clones.saturating_sub(baseline.payload_clones),
            payload_clone_bytes: self
                .payload_clone_bytes
                .saturating_sub(baseline.payload_clone_bytes),
            timeouts: self.timeouts.saturating_sub(baseline.timeouts),
            cancelled: self.cancelled.saturating_sub(baseline.cancelled),
            faults_injected: self
                .faults_injected
                .saturating_sub(baseline.faults_injected),
        }
    }

    /// Element-wise maximum of the time fields, counter sum — the usual
    /// "slowest rank defines the phase time" reduction for BSP phases.
    pub fn max_times(&self, other: &CommStats) -> CommStats {
        CommStats {
            comm_seconds: self.comm_seconds.max(other.comm_seconds),
            comp_seconds: self.comp_seconds.max(other.comp_seconds),
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            payload_clones: self.payload_clones + other.payload_clones,
            payload_clone_bytes: self.payload_clone_bytes + other.payload_clone_bytes,
            timeouts: self.timeouts + other.timeouts,
            cancelled: self.cancelled + other.cancelled,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: f64, p: f64, m: u64, b: u64) -> CommStats {
        CommStats {
            comm_seconds: c,
            comp_seconds: p,
            msgs_sent: m,
            bytes_sent: b,
            msgs_recv: m,
            bytes_recv: b,
            payload_clones: m,
            payload_clone_bytes: b,
            timeouts: m,
            cancelled: m,
            faults_injected: m,
        }
    }

    #[test]
    fn total_is_comm_plus_comp() {
        assert_eq!(sample(1.5, 2.5, 0, 0).total_seconds(), 4.0);
    }

    #[test]
    fn merge_sums_everything() {
        let m = sample(1.0, 2.0, 3, 4).merge(&sample(10.0, 20.0, 30, 40));
        assert_eq!(m, sample(11.0, 22.0, 33, 44));
    }

    #[test]
    fn delta_subtracts_a_snapshot_baseline() {
        let before = sample(1.0, 2.0, 3, 4);
        let after = sample(10.0, 22.0, 33, 44);
        assert_eq!(after.delta(&before), sample(9.0, 20.0, 30, 40));
        // Snapshot arithmetic round-trips: baseline + delta == current.
        assert_eq!(before.merge(&after.delta(&before)), after);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let d = sample(1.0, 1.0, 1, 1).delta(&sample(5.0, 5.0, 5, 5));
        assert_eq!(d, sample(0.0, 0.0, 0, 0));
    }

    #[test]
    fn max_times_takes_slowest_rank() {
        let m = sample(1.0, 20.0, 3, 4).max_times(&sample(10.0, 2.0, 30, 40));
        assert_eq!(m.comm_seconds, 10.0);
        assert_eq!(m.comp_seconds, 20.0);
        assert_eq!(m.msgs_sent, 33);
    }
}
