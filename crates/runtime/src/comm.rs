//! Communicators: rank groups with isolated communication contexts.
//!
//! A [`Comm`] is the handle a rank thread uses for all communication. Like
//! an MPI communicator it has a *group* (an ordered list of member world
//! ranks), a *local rank* for the calling thread, and a *context* that
//! isolates its traffic from every other communicator's. [`Comm::split`]
//! reproduces `MPI_Comm_split(color, key)` semantics and is how the
//! distributed algorithms build row, column and group communicators.

use crate::message::{Context, Envelope, JobCtl, Mailbox, MailboxSender, RecvFault, Tag};
use crate::stats::CommStats;
use hsumma_trace::{
    CommEdge, CommError, EventKind, FaultDecision, FaultState, TraceSink, WirePayload,
};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// Tags with this bit set are reserved for runtime-internal protocols
/// (split, collectives). User code must keep tags below this value.
pub const INTERNAL_TAG_BASE: Tag = 1 << 63;

const TAG_SPLIT_GATHER: Tag = INTERNAL_TAG_BASE;
const TAG_SPLIT_BCAST: Tag = INTERNAL_TAG_BASE + 1;
/// Tag carried by the extra envelope of a `Duplicate` fault. Nothing ever
/// posts a receive for it, so the duplicate is pure stray traffic absorbed
/// by the epoch purge — mirroring the simulator, where the duplicate sits
/// in a reserved mail slot until the run ends.
const TAG_FAULT_DUP: Tag = INTERNAL_TAG_BASE + 63;

/// Whether a message tag participates in fault injection and kill-rule
/// send counting. The split and barrier bookkeeping protocols are
/// excluded: the simulator implements split/barrier by rendezvous without
/// sending messages, so counting them here would desynchronise the two
/// substrates' fault-replay cursors.
fn fault_eligible(tag: Tag) -> bool {
    tag != TAG_SPLIT_GATHER && tag != TAG_SPLIT_BCAST && tag != crate::collectives::TAG_BARRIER
}

/// State shared by every communicator a single rank thread holds: the
/// routes to all peers, this rank's mailbox, and its timing counters.
pub(crate) struct RankShared {
    pub senders: Arc<Vec<MailboxSender>>,
    pub mailbox: RefCell<Mailbox>,
    pub stats: RefCell<CommStats>,
    pub world_rank: usize,
    /// Job epoch stamped on every outgoing envelope. 0 for one-shot
    /// [`crate::Runtime`] worlds; the pooled runtime advances it per job
    /// so stragglers of finished jobs can never match a later one.
    pub epoch: u64,
    /// Event recorder for this rank; a disabled sink (the default) is a
    /// `None` and every trace call below collapses to one branch.
    pub sink: TraceSink,
    /// The job's wait bounds: optional deadline plus shared cancellation
    /// flag, consulted by every blocking operation.
    pub ctl: JobCtl,
    /// Fault-injection replay cursor for this rank, when the job runs
    /// under a `FaultPlan`. Consulted at the send path.
    pub faults: Option<RefCell<FaultState>>,
}

/// Wire size of a payload, for the byte ledgers and the trace. The
/// runtime's messages are `Any`-typed, so sizes are recovered by probing
/// the concrete types the collectives and algorithms actually ship;
/// opaque user types report 0 (use [`Comm::send_sized`] to account them).
fn payload_bytes_of<T: Any>(value: &T) -> u64 {
    let v = value as &dyn Any;
    if let Some(x) = v.downcast_ref::<Vec<f64>>() {
        x.payload_bytes()
    } else if let Some(x) = v.downcast_ref::<Arc<Vec<f64>>>() {
        x.payload_bytes()
    } else if let Some(x) = v.downcast_ref::<Option<Arc<Vec<f64>>>>() {
        x.payload_bytes()
    } else if let Some(x) = v.downcast_ref::<(Arc<Vec<f64>>, usize)>() {
        x.payload_bytes()
    } else {
        0
    }
}

/// How a send/recv path learns a message's wire size: probe the `Any`
/// payload for the buffer types the collectives ship, trust an exact
/// caller-supplied figure, or ask the payload's own [`WirePayload`]
/// hook. The hook is the path dense and sparse application payloads
/// share, so their bytes are counted by identical code.
enum PayloadSize<T> {
    Probe,
    Exact(u64),
    Hook(fn(&T) -> u64),
}

impl<T: Any> PayloadSize<T> {
    fn of(&self, value: &T) -> u64 {
        match self {
            PayloadSize::Probe => payload_bytes_of(value),
            PayloadSize::Exact(b) => *b,
            PayloadSize::Hook(f) => f(value),
        }
    }
}

/// A communicator: an ordered group of ranks plus an isolated context.
///
/// `Comm` is intentionally *not* `Send`: it lives on the rank thread that
/// created it, like an MPI communicator belongs to its process.
#[derive(Clone)]
pub struct Comm {
    shared: Rc<RankShared>,
    ctx: Context,
    /// Member world ranks, indexed by communicator-local rank.
    members: Rc<Vec<usize>>,
    /// This thread's local rank within `members`.
    my_rank: usize,
    /// Counts `split`/`dup` calls so every derived context is fresh.
    /// All members advance it in lockstep, keeping contexts consistent.
    derive_epoch: Rc<Cell<u64>>,
}

impl Comm {
    /// Builds the world communicator for one rank thread (one job of a
    /// pooled rank thread, or the one-shot runtime at epoch 0). The world
    /// context is derived from `epoch`, so even the ctx-0-level traffic
    /// of two jobs can never cross-match; the mailbox must already be
    /// advanced to the same epoch (see `Mailbox::begin_epoch`). Carries
    /// the job's wait bounds and an optional fault-injection cursor.
    pub(crate) fn world_opts(
        senders: Arc<Vec<MailboxSender>>,
        mailbox: Mailbox,
        world_rank: usize,
        sink: TraceSink,
        epoch: u64,
        ctl: JobCtl,
        faults: Option<FaultState>,
    ) -> Self {
        let size = senders.len();
        Comm::group_opts(
            senders,
            mailbox,
            world_rank,
            (0..size).collect(),
            sink,
            epoch,
            ctl,
            faults,
        )
    }

    /// Builds a communicator over a *subset* of the world's ranks — the
    /// non-collective analogue of [`Comm::split`], used by the rank
    /// pool's carved sub-pools where the member table is known up front
    /// (so no gather/broadcast round is needed, and disjoint sub-pools
    /// can enter their jobs at independent times). `members` are world
    /// ranks ordered by local rank; the calling thread's world rank must
    /// be among them. Traffic is isolated from concurrent sub-pool jobs
    /// twice over: by the epoch stamped on every envelope (sub-pools
    /// draw epochs from one shared counter, so no two in-flight jobs
    /// share one) and by the epoch-derived context.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn group_opts(
        senders: Arc<Vec<MailboxSender>>,
        mailbox: Mailbox,
        world_rank: usize,
        members: Vec<usize>,
        sink: TraceSink,
        epoch: u64,
        ctl: JobCtl,
        faults: Option<FaultState>,
    ) -> Self {
        debug_assert_eq!(mailbox.epoch(), epoch, "mailbox not at the job epoch");
        let my_rank = members
            .iter()
            .position(|&w| w == world_rank)
            .expect("calling rank must be a member of its own group");
        Comm {
            shared: Rc::new(RankShared {
                senders,
                mailbox: RefCell::new(mailbox),
                stats: RefCell::new(CommStats::default()),
                world_rank,
                epoch,
                sink,
                ctl,
                faults: faults.map(RefCell::new),
            }),
            ctx: if epoch == 0 {
                0
            } else {
                derive_context(epoch, 0, 0)
            },
            members: Rc::new(members),
            my_rank,
            derive_epoch: Rc::new(Cell::new(0)),
        }
    }

    /// Tears a job's world communicator back down into its persistent
    /// parts — the mailbox (kept by the pool worker for the next job) and
    /// the job's accumulated statistics. Returns `None` if communicator
    /// clones outlive the job (they would keep the shared state alive, so
    /// the mailbox cannot be recovered).
    ///
    /// The rank's trace sink is dropped here, releasing its ring for the
    /// next traced job.
    pub(crate) fn into_parts(self) -> Option<(Mailbox, CommStats)> {
        let Comm { shared, .. } = self;
        match Rc::try_unwrap(shared) {
            Ok(s) => Some((s.mailbox.into_inner(), s.stats.into_inner())),
            Err(_) => None,
        }
    }

    /// This rank's position within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This thread's rank in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.shared.world_rank
    }

    /// World rank of communicator-local rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The communicator's context id (diagnostic).
    pub fn context(&self) -> Context {
        self.ctx
    }

    /// The `(rank, peer, ctx, tag, epoch)` edge a failing operation on
    /// this communicator reports; `peer_world` is a *world* rank.
    fn edge(&self, peer_world: usize, tag: Tag) -> CommEdge {
        CommEdge {
            rank: self.shared.world_rank,
            peer: peer_world,
            ctx: self.ctx,
            tag,
            epoch: self.shared.epoch,
        }
    }

    /// Sends `value` to local rank `dst` with `tag`. Buffered: returns
    /// immediately (eager protocol), so exchanges can't deadlock. Fails
    /// only when the job is already cancelled, past its deadline, or this
    /// rank is killed by the job's fault plan.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` uses the reserved high bit.
    pub fn send<T: Any + Send>(&self, dst: usize, tag: Tag, value: T) -> Result<(), CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.send_internal(dst, tag, value)
    }

    /// Receives a `T` from local rank `src` with `tag`, blocking until
    /// the message arrives, the job deadline passes, the job is
    /// cancelled, or the peer dies.
    pub fn recv<T: Any + Send>(&self, src: usize, tag: Tag) -> Result<T, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.recv_internal(src, tag)
    }

    /// Like [`Comm::recv`], but bounded by `deadline` as well as the
    /// job-level deadline (whichever is sooner).
    pub fn recv_deadline<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        deadline: Instant,
    ) -> Result<T, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        let ctl = self.shared.ctl.tightened(deadline);
        self.recv_with(src, tag, PayloadSize::Probe, &ctl)
    }

    /// Non-blocking receive: `Ok(Some(value))` if a matching message has
    /// already arrived, `Ok(None)` otherwise (poll again later). Lets
    /// callers overlap local work with pending transfers. Surfaces a
    /// peer's death as an error like the blocking form does.
    pub fn try_recv<T: Any + Send>(&self, src: usize, tag: Tag) -> Result<Option<T>, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.try_recv_impl(src, tag, PayloadSize::Probe)
    }

    /// Non-blocking receive of a payload whose wire size the caller
    /// knows: [`Comm::try_recv`] with the byte ledgers and trace
    /// accounting `bytes`, the polling counterpart of
    /// [`Comm::recv_sized`]. This is the completion probe behind
    /// nonblocking collectives (`ibcast_test`): it never blocks, never
    /// parks the rank, and charges bytes only when a message is actually
    /// consumed.
    pub fn try_recv_sized<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        bytes: u64,
    ) -> Result<Option<T>, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.try_recv_impl(src, tag, PayloadSize::Exact(bytes))
    }

    fn try_recv_impl<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        size: PayloadSize<T>,
    ) -> Result<Option<T>, CommError> {
        let t0 = Instant::now();
        let tr0 = self.shared.sink.now();
        let src_world = self.members[src];
        let value = self
            .shared
            .mailbox
            .borrow_mut()
            .try_recv::<T>(self.ctx, src_world, tag)
            .map_err(|f| self.map_recv_fault(f, src_world, tag, "try_recv"))?;
        {
            let mut stats = self.shared.stats.borrow_mut();
            if let Some(v) = &value {
                stats.msgs_recv += 1;
                stats.bytes_recv += size.of(v);
            }
            stats.comm_seconds += t0.elapsed().as_secs_f64();
        }
        if self.shared.sink.enabled() {
            if let Some(v) = &value {
                self.shared.sink.record(
                    EventKind::Recv {
                        src: src_world,
                        tag,
                        channel: self.ctx,
                        bytes: size.of(v),
                    },
                    tr0,
                    self.shared.sink.now(),
                );
            }
        }
        Ok(value)
    }

    /// Sends a payload whose wire size the caller knows (e.g. an opaque
    /// matrix type the byte probe can't see). Identical to [`Comm::send`]
    /// except the byte ledgers and the trace account `bytes`.
    pub fn send_sized<T: Any + Send>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
        bytes: u64,
    ) -> Result<(), CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.send_impl(dst, tag, value, PayloadSize::Exact(bytes))
    }

    /// Receiving half of [`Comm::send_sized`]: accounts `bytes` received.
    pub fn recv_sized<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        bytes: u64,
    ) -> Result<T, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.recv_impl(src, tag, PayloadSize::Exact(bytes))
    }

    /// Sends a payload whose wire size comes from its own
    /// [`WirePayload`] hook. This is the one code path that accounts
    /// dense and sparse application payloads alike — prefer it over
    /// [`Comm::send_sized`] whenever the payload type models its wire
    /// size.
    pub fn send_payload<T: Any + Send + WirePayload>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> Result<(), CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.send_impl(dst, tag, value, PayloadSize::Hook(T::payload_bytes))
    }

    /// Receiving half of [`Comm::send_payload`]: bytes are taken from
    /// the *received* value's [`WirePayload`] hook, so non-uniform
    /// (e.g. nnz-dependent) message sizes are accounted exactly.
    pub fn recv_payload<T: Any + Send + WirePayload>(
        &self,
        src: usize,
        tag: Tag,
    ) -> Result<T, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.recv_impl(src, tag, PayloadSize::Hook(T::payload_bytes))
    }

    /// Polling counterpart of [`Comm::recv_payload`].
    pub fn try_recv_payload<T: Any + Send + WirePayload>(
        &self,
        src: usize,
        tag: Tag,
    ) -> Result<Option<T>, CommError> {
        assert!(tag < INTERNAL_TAG_BASE, "tag uses reserved high bit");
        self.try_recv_impl(src, tag, PayloadSize::Hook(T::payload_bytes))
    }

    pub(crate) fn send_internal<T: Any + Send>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
    ) -> Result<(), CommError> {
        self.send_impl(dst, tag, value, PayloadSize::Probe)
    }

    fn send_impl<T: Any + Send>(
        &self,
        dst: usize,
        tag: Tag,
        value: T,
        size: PayloadSize<T>,
    ) -> Result<(), CommError> {
        let t0 = Instant::now();
        let tr0 = self.shared.sink.now();
        let dst_world = self.members[dst];
        // Bounded-job checks: a cancelled or expired job must stop
        // feeding its peers. (`t0` doubles as "now" — the clock was read
        // for the stats anyway, so the clean path pays no extra syscall.)
        if self.shared.ctl.is_cancelled() {
            self.shared.stats.borrow_mut().cancelled += 1;
            return Err(CommError::Cancelled {
                edge: self.edge(dst_world, tag),
                op: "send",
            });
        }
        if self.shared.ctl.deadline().is_some_and(|d| t0 >= d) {
            self.shared.stats.borrow_mut().timeouts += 1;
            return Err(CommError::Timeout {
                edge: self.edge(dst_world, tag),
                op: "send",
            });
        }
        // Fault injection: consult the plan's replay cursor for every
        // eligible send (split/barrier bookkeeping excluded — see
        // `fault_eligible`).
        let mut not_before = None;
        let mut duplicate = false;
        if fault_eligible(tag) {
            if let Some(f) = &self.shared.faults {
                let mut f = f.borrow_mut();
                let before = f.injected();
                let decision = f.on_send(dst_world, tag);
                let injected_now = f.injected() - before;
                drop(f);
                self.shared.stats.borrow_mut().faults_injected += injected_now;
                match decision {
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop => {
                        // The message vanishes at the send path: no
                        // delivery, no msgs_sent — the world's send/recv
                        // ledgers stay balanced.
                        self.shared.stats.borrow_mut().comm_seconds += t0.elapsed().as_secs_f64();
                        return Ok(());
                    }
                    FaultDecision::DeliverDelayed(s) => {
                        not_before = Some(t0 + std::time::Duration::from_secs_f64(s));
                    }
                    FaultDecision::DeliverTwice => duplicate = true,
                    FaultDecision::Kill => {
                        return Err(CommError::Shutdown {
                            rank: self.shared.world_rank,
                            detail: "killed by fault plan at send".to_string(),
                        });
                    }
                }
            }
        }
        let bytes = size.of(&value);
        if duplicate {
            // The duplicate travels on a reserved tag nothing matches, so
            // it is stray wire traffic (absorbed by the epoch purge), not
            // a second deliverable copy — mirroring the simulator.
            self.shared.senders[dst_world].deliver(Envelope {
                ctx: self.ctx,
                src: self.shared.world_rank,
                tag: TAG_FAULT_DUP,
                epoch: self.shared.epoch,
                not_before: None,
                payload: Box::new(()),
            });
        }
        self.shared.senders[dst_world].deliver(Envelope {
            ctx: self.ctx,
            src: self.shared.world_rank,
            tag,
            epoch: self.shared.epoch,
            not_before,
            payload: Box::new(value),
        });
        {
            let mut stats = self.shared.stats.borrow_mut();
            stats.msgs_sent += 1;
            stats.bytes_sent += bytes;
            stats.comm_seconds += t0.elapsed().as_secs_f64();
        }
        if self.shared.sink.enabled() {
            self.shared.sink.record(
                EventKind::Send {
                    dst: dst_world,
                    tag,
                    channel: self.ctx,
                    bytes,
                },
                tr0,
                self.shared.sink.now(),
            );
        }
        Ok(())
    }

    pub(crate) fn recv_internal<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
    ) -> Result<T, CommError> {
        self.recv_impl(src, tag, PayloadSize::Probe)
    }

    fn recv_impl<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        size: PayloadSize<T>,
    ) -> Result<T, CommError> {
        self.recv_with(src, tag, size, &self.shared.ctl)
    }

    /// Translates a mailbox-level [`RecvFault`] into a [`CommError`]
    /// naming the stalled edge, bumping the matching counter.
    fn map_recv_fault(
        &self,
        fault: RecvFault,
        src_world: usize,
        tag: Tag,
        op: &'static str,
    ) -> CommError {
        match fault {
            RecvFault::Timeout => {
                self.shared.stats.borrow_mut().timeouts += 1;
                CommError::Timeout {
                    edge: self.edge(src_world, tag),
                    op,
                }
            }
            RecvFault::Cancelled => {
                self.shared.stats.borrow_mut().cancelled += 1;
                CommError::Cancelled {
                    edge: self.edge(src_world, tag),
                    op,
                }
            }
            RecvFault::PeerDead { src: dead } => CommError::PeerDead {
                edge: self.edge(dead, tag),
                op,
            },
            // Every peer thread is gone: the channel closing is a mass
            // peer death, reported against the rank we were waiting on.
            RecvFault::Closed => CommError::PeerDead {
                edge: self.edge(src_world, tag),
                op: "recv (all peers gone)",
            },
        }
    }

    fn recv_with<T: Any + Send>(
        &self,
        src: usize,
        tag: Tag,
        size: PayloadSize<T>,
        ctl: &JobCtl,
    ) -> Result<T, CommError> {
        let t0 = Instant::now();
        let tr0 = self.shared.sink.now();
        let src_world = self.members[src];
        let value = self
            .shared
            .mailbox
            .borrow_mut()
            .recv::<T>(self.ctx, src_world, tag, ctl);
        let value = match value {
            Ok(v) => v,
            Err(fault) => {
                self.shared.stats.borrow_mut().comm_seconds += t0.elapsed().as_secs_f64();
                return Err(self.map_recv_fault(fault, src_world, tag, "recv"));
            }
        };
        let bytes = size.of(&value);
        {
            let mut stats = self.shared.stats.borrow_mut();
            stats.msgs_recv += 1;
            stats.bytes_recv += bytes;
            stats.comm_seconds += t0.elapsed().as_secs_f64();
        }
        if self.shared.sink.enabled() {
            self.shared.sink.record(
                EventKind::Recv {
                    src: src_world,
                    tag,
                    channel: self.ctx,
                    bytes,
                },
                tr0,
                self.shared.sink.now(),
            );
        }
        Ok(value)
    }

    /// Records one payload-buffer materialization of `bytes` bytes.
    /// Collectives call this whenever they allocate-and-copy a payload to
    /// put on the wire; relays that forward `Arc`-shared payloads don't.
    pub(crate) fn count_payload_clone(&self, bytes: u64) {
        let mut stats = self.shared.stats.borrow_mut();
        stats.payload_clones += 1;
        stats.payload_clone_bytes += bytes;
    }

    /// Snapshot of this rank's accumulated statistics (shared across all
    /// communicators derived from the same world rank).
    pub fn stats(&self) -> CommStats {
        self.shared.stats.borrow().clone()
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&self) {
        *self.shared.stats.borrow_mut() = CommStats::default();
    }

    /// Runs `f`, accounting its wall time as *computation* in the stats.
    pub fn time_compute<R>(&self, f: impl FnOnce() -> R) -> R {
        self.time_compute_flops(0, f)
    }

    /// Like [`Comm::time_compute`], also stamping the trace event with a
    /// flop count (for per-step compute attribution; pass 0 if unknown).
    pub fn time_compute_flops<R>(&self, flops: u64, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let tr0 = self.shared.sink.now();
        let r = f();
        self.shared.stats.borrow_mut().comp_seconds += t0.elapsed().as_secs_f64();
        if self.shared.sink.enabled() {
            self.shared
                .sink
                .record(EventKind::Compute { flops }, tr0, self.shared.sink.now());
        }
        r
    }

    /// Whether this rank is recording trace events.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.shared.sink.enabled()
    }

    /// Runs `f` inside a pivot-step span: iteration `k`, outer block
    /// `outer` (the paper's `B`), inner block `inner` (`b`). A no-op
    /// wrapper when tracing is off.
    pub fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        if !self.shared.sink.enabled() {
            return f();
        }
        let tr0 = self.shared.sink.now();
        let r = f();
        self.shared.sink.record(
            EventKind::PivotStep { k, outer, inner },
            tr0,
            self.shared.sink.now(),
        );
        r
    }

    /// Runs `f` inside a collective span (used by the `collectives`
    /// module so every collective shows up as one nested slab per rank).
    pub(crate) fn trace_collective<R>(
        &self,
        op: &'static str,
        algo: &'static str,
        root: usize,
        f: impl FnOnce() -> R,
    ) -> R {
        if !self.shared.sink.enabled() {
            return f();
        }
        let tr0 = self.shared.sink.now();
        let r = f();
        self.shared.sink.record(
            EventKind::Collective { op, algo, root },
            tr0,
            self.shared.sink.now(),
        );
        r
    }

    /// Duplicates the communicator with a fresh context; same group.
    ///
    /// Collective: every member must call it.
    pub fn dup(&self) -> Comm {
        let epoch = self.bump_epoch();
        Comm {
            shared: Rc::clone(&self.shared),
            ctx: derive_context(self.ctx, epoch, 0),
            members: Rc::clone(&self.members),
            my_rank: self.my_rank,
            derive_epoch: Rc::new(Cell::new(0)),
        }
    }

    /// Partitions the communicator: ranks passing equal `color` end up in
    /// the same child communicator, ordered by `(key, parent rank)` —
    /// `MPI_Comm_split` semantics.
    ///
    /// Collective: every member must call it in the same program order.
    pub fn split(&self, color: u64, key: i64) -> Result<Comm, CommError> {
        let epoch = self.bump_epoch();
        let p = self.size();

        // Allgather (color, key) over the parent communicator: flat gather
        // to parent rank 0, then binomial broadcast of the table.
        let table: Vec<(u64, i64)> = if self.my_rank == 0 {
            let mut table = vec![(0u64, 0i64); p];
            table[0] = (color, key);
            for (src, slot) in table.iter_mut().enumerate().skip(1) {
                *slot = self.recv_internal::<(u64, i64)>(src, TAG_SPLIT_GATHER)?;
            }
            table
        } else {
            self.send_internal(0, TAG_SPLIT_GATHER, (color, key))?;
            Vec::new()
        };
        let table = self.binomial_bcast_internal(0, TAG_SPLIT_BCAST, table)?;

        // My group: parent ranks with my color, sorted by (key, parent rank).
        let mut group: Vec<usize> = (0..p).filter(|&r| table[r].0 == color).collect();
        group.sort_by_key(|&r| (table[r].1, r));
        let my_pos = group
            .iter()
            .position(|&r| r == self.my_rank)
            .expect("caller must be in its own color group");
        let members: Vec<usize> = group.iter().map(|&r| self.members[r]).collect();

        Ok(Comm {
            shared: Rc::clone(&self.shared),
            ctx: derive_context(self.ctx, epoch, color),
            members: Rc::new(members),
            my_rank: my_pos,
            derive_epoch: Rc::new(Cell::new(0)),
        })
    }

    fn bump_epoch(&self) -> u64 {
        let e = self.derive_epoch.get() + 1;
        self.derive_epoch.set(e);
        e
    }

    /// Binomial-tree broadcast used by internal protocols (also the
    /// building block the public `bcast` reuses via `collectives`).
    ///
    /// The tree is the simulator's: in round `mask = 1, 2, 4, …` every
    /// virtual rank `v < mask` sends to `v + mask`, i.e. each rank
    /// receives from its virtual rank with the highest set bit cleared.
    /// Keeping the two substrates on the *same* tree is what lets traces
    /// of real and simulated runs be compared message-for-message.
    pub(crate) fn binomial_bcast_internal<T: Any + Send + Clone>(
        &self,
        root: usize,
        tag: Tag,
        mut value: T,
    ) -> Result<T, CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(value);
        }
        // Re-index so the root is virtual rank 0.
        let vrank = (self.my_rank + p - root) % p;
        if vrank != 0 {
            // Receive from our virtual rank with the highest bit cleared.
            let high = 1usize << (usize::BITS - 1 - vrank.leading_zeros());
            let src = ((vrank - high) + root) % p;
            value = self.recv_internal(src, tag)?;
        }
        // Relay in every later round: all masks strictly above our own
        // virtual rank (the root participates from mask 1).
        let mut mask = 1usize;
        while mask < p {
            if mask > vrank && vrank + mask < p {
                let dst = (vrank + mask + root) % p;
                self.send_internal(dst, tag, value.clone())?;
            }
            mask <<= 1;
        }
        Ok(value)
    }

    /// A handle that raises this job's cancellation flag from any thread.
    /// Note that ranks parked in a blocking wait only notice the flag when
    /// next woken; [`Comm::cancel_job`] (or the pool watchdog) also pokes
    /// every mailbox so no rank sleeps through its own cancellation.
    pub fn cancel_token(&self) -> crate::message::CancelToken {
        self.shared.ctl.cancel_token()
    }

    /// Cancels the whole job: raises the shared cancellation flag and
    /// wakes every rank of the world so blocked waits return
    /// [`CommError::Cancelled`] promptly instead of sleeping on.
    pub fn cancel_job(&self) {
        self.shared.ctl.cancel_token().cancel();
        for tx in self.shared.senders.iter() {
            tx.deliver_cancel(self.shared.epoch);
        }
    }
}

/// Deterministic context derivation: every member computes the same child
/// context without extra communication. SplitMix64-style finalizer gives a
/// collision probability negligible for realistic communicator trees.
fn derive_context(parent: Context, epoch: u64, color: u64) -> Context {
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(epoch)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(color)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Keep 0 reserved for the world communicator.
    z | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_context_is_deterministic_and_distinguishes_inputs() {
        let a = derive_context(0, 1, 3);
        let b = derive_context(0, 1, 3);
        assert_eq!(a, b);
        assert_ne!(derive_context(0, 1, 3), derive_context(0, 1, 4));
        assert_ne!(derive_context(0, 1, 3), derive_context(0, 2, 3));
        assert_ne!(derive_context(7, 1, 3), derive_context(8, 1, 3));
    }

    #[test]
    fn derived_context_never_zero() {
        for e in 0..100 {
            for c in 0..10 {
                assert_ne!(derive_context(0, e, c), 0);
            }
        }
    }
}
