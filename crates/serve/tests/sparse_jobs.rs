//! The second job type, end to end: SpGEMM and SDDMM jobs through the
//! same queue, pool, planner, deadline and fault machinery as dense
//! GEMM — the service-level face of the sparse subsystem.

use hsumma_matrix::sparse::{sddmm, seeded_sparse, spgemm};
use hsumma_matrix::{seeded_uniform, GridShape};
use hsumma_serve::{
    GemmServer, JobError, JobOutcome, JobSpec, JobState, SchedPolicy, ServerConfig, SubmitError,
};
use hsumma_trace::{FaultPlan, TagClass};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit`, so a hang regression fails instead of wedging the suite.
fn with_watchdog<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => worker.join().expect("test body"),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test body still running after {limit:?} — the service hung")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => worker.join().expect("test body"),
    }
}

#[test]
fn spgemm_job_runs_natively_and_matches_the_serial_kernel() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 16;
    let a = seeded_sparse(n, n, 0.1, 301);
    let b = seeded_sparse(n, n, 0.15, 302);
    let want = spgemm(&a, &b);

    let out = server
        .submit_spgemm(JobSpec::spgemm(n), a, b)
        .unwrap()
        .wait()
        .unwrap();
    // At 10–15% fill the scoreboard must pick the native CSR schedule.
    assert!(
        out.report.plan_desc.starts_with("spgemm_2d"),
        "expected the native schedule, ran {}",
        out.report.plan_desc
    );
    let got = out.c.sparse();
    assert_eq!(got.shape(), (n, n));
    assert!(got.max_abs_diff(&want) < 1e-12);
    // Sparse jobs get the same per-job accounting as dense ones.
    assert_eq!(out.report.stats.len(), 4);
    let merged = out.report.merged_stats();
    assert!(merged.msgs_sent > 0 && merged.bytes_sent > 0);
    assert_eq!(out.report.outcome, JobOutcome::Completed);
}

#[test]
fn full_density_spgemm_routes_through_the_densified_path() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 16;
    let a = seeded_sparse(n, n, 1.0, 303);
    let b = seeded_sparse(n, n, 1.0, 304);
    let want = spgemm(&a, &b);

    let out = server
        .submit_spgemm(JobSpec::spgemm(n), a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        out.report.plan_desc.starts_with("densify→"),
        "fully dense operands must densify, ran {}",
        out.report.plan_desc
    );
    // The product contract holds either way: a CSR result, numerically
    // matching the sparse reference.
    assert!(out.c.sparse().max_abs_diff(&want) < 1e-9);
}

#[test]
fn sddmm_job_matches_the_serial_kernel() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 16;
    let s = seeded_sparse(n, n, 0.2, 305);
    let a = seeded_uniform(n, n, 306);
    let b = seeded_uniform(n, n, 307);
    let want = sddmm(&s, &a, &b);

    let out = server
        .submit_sddmm(JobSpec::sddmm(n), s, a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert!(out.report.plan_desc.starts_with("sddmm_2d"));
    let got = out.c.sparse();
    assert_eq!(got.row_ptr(), want.row_ptr(), "pattern must be S's");
    assert!(got.max_abs_diff(&want) < 1e-9);
}

#[test]
fn dropped_sparse_panel_times_out_the_job_and_the_pool_keeps_serving() {
    with_watchdog(Duration::from_secs(60), || {
        // FIFO runs each job alone on the whole 2×2 grid. Under the gang
        // policy the nnz-aware sweep would shrink these hypersparse n=16
        // jobs to single-rank sub-pools, where no panel ever travels and
        // the planned drop has nothing to hit (sparse gangs are covered
        // by tests/gang.rs).
        let server = GemmServer::new(ServerConfig {
            sched: SchedPolicy::Fifo,
            ..ServerConfig::new(GridShape::new(2, 2))
        })
        .unwrap();
        let n = 16;
        let a = seeded_sparse(n, n, 0.1, 308);
        let b = seeded_sparse(n, n, 0.1, 309);
        let want = spgemm(&a, &b);

        // Sparse pivot panels travel under the step index as a
        // user-level (App-class) tag: drop the first one rank 0 sends to
        // rank 1 — the step-0 A-panel broadcast on row comm {0, 1} — and
        // bound the job by 200 ms.
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        let faulty = server
            .submit_spgemm(
                JobSpec::spgemm(n)
                    .with_deadline(Duration::from_millis(200))
                    .with_faults(plan),
                a.clone(),
                b.clone(),
            )
            .unwrap();
        // A clean sparse job queued behind the faulty one.
        let clean = server.submit_spgemm(JobSpec::spgemm(n), a, b).unwrap();

        let err = faulty
            .wait()
            .expect_err("the dropped panel must fail the job");
        assert_eq!(faulty.state(), JobState::Failed);
        match &err {
            JobError::Timeout { detail, report } => {
                assert!(
                    detail.contains("rank 1") && detail.contains("rank 0"),
                    "detail must name the stalled edge: {detail}"
                );
                assert_eq!(report.outcome, JobOutcome::TimedOut);
                assert_eq!(report.faults_injected, 1, "exactly the one planned drop");
                assert!(report.timeouts >= 1);
                assert!(report.plan_desc.starts_with("spgemm_2d"));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }

        // Containment: the failure did not leak into the next job.
        let out = clean.wait().expect("clean job must survive the faulty one");
        assert!(out.c.sparse().max_abs_diff(&want) < 1e-12);
        assert_eq!(out.report.faults_injected, 0);
    });
}

#[test]
fn workload_mismatches_are_rejected_at_the_door() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 16;
    // A sparse spec through the dense entry point…
    let err = server
        .submit(
            JobSpec::spgemm(n),
            seeded_uniform(n, n, 310),
            seeded_uniform(n, n, 311),
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::Invalid(ref r) if r.contains("workload")));
    // …and a dense spec through the sparse one.
    let err = server
        .submit_spgemm(
            JobSpec::square(n),
            seeded_sparse(n, n, 0.1, 312),
            seeded_sparse(n, n, 0.1, 313),
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::Invalid(ref r) if r.contains("workload")));
    // Shape mismatches name the offending operand.
    let err = server
        .submit_spgemm(
            JobSpec::spgemm(n),
            seeded_sparse(n, 2 * n, 0.1, 314),
            seeded_sparse(n, n, 0.1, 315),
        )
        .unwrap_err();
    assert!(matches!(err, SubmitError::Invalid(ref r) if r.contains("A is")));
}
