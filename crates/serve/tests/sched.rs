//! Scheduler-subsystem tests: EDF/aging ordering properties of the
//! ready queue, and feasibility admission end to end on a live server.

use hsumma_matrix::{seeded_uniform, GridShape};
use hsumma_serve::{
    Admission, GemmServer, JobSpec, Planner, PlannerConfig, PriorityClass, ReadyQueue, SchedPolicy,
    ServerConfig, SubmitError,
};
use proptest::prelude::*;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// ReadyQueue ordering properties
// ---------------------------------------------------------------------

/// Mirror of the queue used to check invariants: what was pushed, what
/// was popped, and when.
#[derive(Debug)]
enum Op {
    PushDeadline(Duration),
    PushBackground,
    Pop(Duration),
}

/// Decodes a deterministic op sequence from a seed (SplitMix-style), so
/// the proptest shim's integer strategies drive arbitrarily-shaped
/// interleavings.
fn decode_ops(len: usize, mut seed: u64) -> Vec<Op> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| match next() % 3 {
            0 => Op::PushDeadline(Duration::from_millis(next() % 100)),
            1 => Op::PushBackground,
            // Advances up to 2x the aging bound so promotions happen.
            _ => Op::Pop(Duration::from_millis(next() % 100)),
        })
        .collect()
}

const AGING: Duration = Duration::from_millis(50);

proptest! {
    /// The ordering contract under arbitrary interleavings:
    /// 1. a popped deadline job has the minimum deadline of all
    ///    deadline jobs waiting (EDF);
    /// 2. a background job pops ahead of a waiting deadline job only
    ///    when it has aged past the bound (classes never invert);
    /// 3. background jobs pop in submission order.
    #[test]
    fn edf_and_aging_never_invert_priority_classes(
        len in 1usize..60, seed in 0u64..1_000_000,
    ) {
        let t0 = Instant::now();
        let mut now = t0;
        let mut q: ReadyQueue<u64> = ReadyQueue::new(AGING);
        // Mirrors: waiting deadline jobs' deadlines; background jobs as
        // (id, submitted-at) in submission order.
        let mut urgent: Vec<(Instant, u64)> = Vec::new();
        let mut background: Vec<(u64, Instant)> = Vec::new();
        let mut next_id = 0u64;
        let mut last_bg_popped: Option<u64> = None;

        for op in decode_ops(len, seed) {
            match op {
                Op::PushDeadline(offset) => {
                    let d = now + offset;
                    q.push_deadline(d, next_id);
                    urgent.push((d, next_id));
                    next_id += 1;
                }
                Op::PushBackground => {
                    q.push_background(now, next_id);
                    background.push((next_id, now));
                    next_id += 1;
                }
                Op::Pop(advance) => {
                    now += advance;
                    let popped = q.pop(now);
                    prop_assert_eq!(popped.is_none(), urgent.is_empty() && background.is_empty());
                    let Some((class, id)) = popped else { continue };
                    match class {
                        PriorityClass::Deadline => {
                            let min = urgent
                                .iter()
                                .map(|&(d, _)| d)
                                .min()
                                .expect("popped a deadline job: one must be waiting");
                            let pos = urgent
                                .iter()
                                .position(|&(_, i)| i == id)
                                .expect("popped job was pushed");
                            // (1) EDF: the popped deadline is the minimum.
                            prop_assert_eq!(urgent[pos].0, min);
                            urgent.remove(pos);
                        }
                        PriorityClass::Background => {
                            let (front, submitted) = background.remove(0);
                            // (3) FIFO among background jobs.
                            prop_assert_eq!(front, id);
                            // (2) ahead of waiting deadline work only if aged.
                            if !urgent.is_empty() {
                                prop_assert!(
                                    now.duration_since(submitted) >= AGING,
                                    "unaged background popped past a deadline job"
                                );
                            }
                            if let Some(prev) = last_bg_popped {
                                prop_assert!(prev < id, "background order inverted");
                            }
                            last_bg_popped = Some(id);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Feasibility admission on a live server
// ---------------------------------------------------------------------

#[test]
fn admitted_deadline_job_run_alone_meets_its_deadline() {
    // The admission invariant: with an empty queue, admitted means the
    // calibrated model prediction fits the deadline — and the run
    // itself, alone on the service, completes (the runtime enforces the
    // same deadline, so Ok(..) is "met").
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    for n in [32usize, 64, 128] {
        let a = seeded_uniform(n, n, 2 * n as u64);
        let b = seeded_uniform(n, n, 2 * n as u64 + 1);
        let spec = JobSpec::square(n).with_deadline(Duration::from_secs(5));
        let handle = server.submit(spec, a, b).expect("5s is feasible");
        let out = handle
            .wait()
            .expect("admitted job alone meets its deadline");
        assert_eq!(out.c.shape(), (n, n));
    }
    assert_eq!(server.stats().infeasible, 0);
}

#[test]
fn provably_unmeetable_deadline_is_rejected_at_submit_with_the_margin() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 256;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let deadline = Duration::from_nanos(1);
    let err = server
        .submit(JobSpec::square(n).with_deadline(deadline), a, b)
        .expect_err("1ns is provably unmeetable");
    match err {
        SubmitError::Infeasible {
            predicted,
            deadline: d,
        } => {
            assert_eq!(d, deadline);
            assert!(
                predicted > deadline,
                "rejection names the margin: {predicted:?} vs {deadline:?}"
            );
            // With an empty queue and an uncalibrated server (no job has
            // completed), the prediction IS the model's estimate.
            let mut planner = Planner::new(GridShape::new(2, 2), PlannerConfig::default());
            let est = planner.estimate(n, n, n);
            let rel = (predicted.as_secs_f64() - est.model_secs).abs() / est.model_secs;
            assert!(
                rel < 1e-6,
                "predicted {predicted:?} vs model {}",
                est.model_secs
            );
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.infeasible, 1);
    assert_eq!(stats.submitted, 0, "rejected jobs are not admitted");
    assert!(err.to_string().contains("short by"));
}

#[test]
fn open_admission_keeps_the_legacy_runtime_deadline_path() {
    // Admission::Open admits the unmeetable deadline; the runtime
    // watchdog then fails the job in-flight — the pre-scheduler
    // contract, preserved for operators that opt out.
    let config = ServerConfig {
        admission: Admission::Open,
        sched: SchedPolicy::Fifo,
        ..ServerConfig::new(GridShape::new(2, 2))
    };
    let server = GemmServer::new(config).unwrap();
    let n = 64;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let handle = server
        .submit(
            JobSpec::square(n).with_deadline(Duration::from_nanos(1)),
            a,
            b,
        )
        .expect("open admission takes any deadline");
    assert!(
        handle.wait().is_err(),
        "a 1ns deadline job must fail at runtime"
    );
    assert_eq!(server.stats().infeasible, 0);
}

#[test]
fn feasibility_accounts_for_queued_work_ahead_of_the_deadline() {
    // Admission prices the backlog, not just the candidate: a deadline
    // that is comfortably feasible on an idle service becomes infeasible
    // once enough same-deadline work is queued ahead. A stalled head job
    // (dropped message + its own deadline) keeps the pool busy so the
    // queue actually accumulates.
    use hsumma_trace::{FaultPlan, TagClass};
    use std::sync::Arc;
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 256;
    let submit = |deadline: Duration, faults: Option<Arc<FaultPlan>>, seed: u64| {
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed + 1);
        let mut spec = JobSpec::square(n).with_deadline(deadline);
        if let Some(f) = faults {
            spec = spec.with_faults(f);
        }
        server.submit(spec, a, b)
    };
    // The model's duration for this shape; the server is uncalibrated
    // (nothing completes while the head stalls), so each queued job adds
    // exactly one model-duration of backlog. A 9.5x-model deadline is
    // therefore feasible until ~9 jobs wait ahead of it — and the tenth
    // prediction (10x) overshoots it by a strict margin.
    let model = Planner::new(GridShape::new(2, 2), PlannerConfig::default())
        .estimate(n, n, n)
        .model_secs;
    assert!(model > 0.0, "a dense Auto job is priceable");
    let deadline = Duration::from_secs_f64(9.5 * model);
    // Head: stalls ~300ms on a dropped message, occupying the pool.
    let stall = Arc::new(FaultPlan::new().drop_nth(Some(0), None, TagClass::Any, 0));
    let head = submit(Duration::from_millis(300), Some(stall), 1).expect("head is feasible");
    let mut admitted = 0u32;
    let mut rejection = None;
    for i in 0..32u64 {
        match submit(deadline, None, 100 + 2 * i) {
            Ok(_) => admitted += 1,
            Err(SubmitError::Infeasible { predicted, .. }) => {
                rejection = Some(predicted);
                break;
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    let predicted = rejection.expect("backlog must eventually exhaust a 10x-model deadline");
    assert!(
        admitted >= 1,
        "the identical deadline was feasible while the queue was emptier"
    );
    assert!(predicted > deadline, "the margin names the backlog");
    assert!(server.stats().infeasible >= 1);
    let _ = head.wait();
}
