//! End-to-end service tests: correctness under concurrent mixed-size
//! submission, plan-cache behaviour, backpressure, failure containment.

use hsumma_core::{PlannedAlgo, SummaConfig};
use hsumma_matrix::{gemm, seeded_uniform, GemmKernel, GridShape, Matrix};
use hsumma_serve::{GemmServer, JobSpec, JobState, PlanHint, ServerConfig, SubmitError};
use std::sync::Arc;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(GemmKernel::Naive, a, b, &mut c);
    c
}

#[test]
fn concurrent_mixed_size_clients_all_get_correct_products() {
    let server = Arc::new(GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap());
    // Three client threads, each submitting a burst of different sizes;
    // every product is checked against the naive serial reference.
    let sizes: [&[usize]; 3] = [&[8, 16, 24], &[16, 32], &[12, 8, 20]];
    let mut clients = Vec::new();
    for (client, my_sizes) in sizes.into_iter().enumerate() {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            for (i, &n) in my_sizes.iter().enumerate() {
                let seed = (client * 100 + i) as u64;
                let a = seeded_uniform(n, n, 2 * seed);
                let b = seeded_uniform(n, n, 2 * seed + 1);
                let want = reference(&a, &b);
                let handle = server
                    .submit(JobSpec::square(n), a, b)
                    .expect("queue is large enough for this burst");
                let out = handle.wait().expect("job must succeed");
                assert!(
                    out.c.dense().approx_eq(&want, 1e-9),
                    "client {client} job {i} (n={n}) wrong, plan {}",
                    out.report.plan_desc
                );
                // The report describes this job: the stats cover every
                // rank of the (sub-)pool it ran on — gang scheduling may
                // give a small job fewer ranks than the whole pool — and
                // multi-rank runs show real communication.
                let ranks = out.report.stats.len();
                assert!((1..=4).contains(&ranks), "ran on {ranks} ranks");
                if ranks > 1 {
                    assert!(out.report.merged_stats().msgs_sent > 0);
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.queued, 0);
}

#[test]
fn second_same_shape_job_hits_the_plan_cache_and_skips_the_sweep() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let submit = |n: usize, seed: u64| {
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed + 1);
        server.submit(JobSpec::square(n), a, b).unwrap()
    };

    let first = submit(64, 1).wait().unwrap();
    assert!(!first.report.plan_cached, "first job must compute its plan");
    let after_first = server.planner_stats();
    assert_eq!(after_first.misses, 1);

    let second = submit(64, 3).wait().unwrap();
    assert!(second.report.plan_cached, "second job must hit the cache");
    let after_second = server.planner_stats();
    assert_eq!(after_second.hits, 1);
    // The acceptance-criterion claim: the second same-shape job ran no
    // additional simulator evaluations.
    assert_eq!(after_second.sims_run, after_first.sims_run);
    assert_eq!(second.report.plan_desc, first.report.plan_desc);
}

#[test]
fn full_queue_rejects_with_reason_and_counts() {
    // Capacity 2 and a deliberately slow first job: while it runs, two
    // more fill the queue and the next submissions must bounce.
    let config = ServerConfig {
        queue_capacity: 2,
        ..ServerConfig::new(GridShape::new(2, 2))
    };
    let server = GemmServer::new(config).unwrap();
    let submit = |n: usize, seed: u64| {
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed + 1);
        server.submit(JobSpec::square(n), a, b)
    };
    // Slow head-of-line job (big, naive kernel via forced plan).
    let n = 256;
    let a = seeded_uniform(n, n, 7);
    let b = seeded_uniform(n, n, 8);
    let slow_plan = PlanHint::Force(PlannedAlgo::Summa(SummaConfig {
        block: 32,
        kernel: GemmKernel::Naive,
        ..SummaConfig::default()
    }));
    let head = server
        .submit(JobSpec::square(n).with_hint(slow_plan), a, b)
        .unwrap();

    // Fill the queue, then overflow it.
    let mut accepted = vec![head];
    let mut rejections = 0;
    for i in 0..8 {
        match submit(8, 100 + i) {
            Ok(h) => accepted.push(h),
            Err(SubmitError::QueueFull { capacity, queued }) => {
                assert_eq!(capacity, 2);
                assert_eq!(queued, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(
        rejections >= 6,
        "with a slow head job, at most the capacity can be admitted (got {rejections} rejections)"
    );
    assert_eq!(server.stats().rejected, rejections);
    // Everything admitted still completes correctly.
    for h in accepted {
        h.wait().expect("admitted jobs run to completion");
    }
}

#[test]
fn invalid_jobs_are_rejected_at_the_door_with_reasons() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let a = seeded_uniform(8, 8, 1);
    let b = seeded_uniform(8, 8, 2);

    // A zero dimension.
    let spec = JobSpec {
        k: 0,
        ..JobSpec::square(8)
    };
    match server.submit(spec, a.clone(), b.clone()) {
        Err(SubmitError::Invalid(reason)) => assert!(reason.contains("positive")),
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Non-square spec on a *sparse* workload (dense accepts any shape;
    // the CSR scatter path still requires square grid-divisible
    // operands).
    let sa = hsumma_matrix::seeded_sparse(16, 8, 0.2, 11);
    let sb = hsumma_matrix::seeded_sparse(8, 8, 0.2, 12);
    let spec = JobSpec {
        m: 16,
        ..JobSpec::spgemm(8)
    };
    match server.submit_spgemm(spec, sa, sb) {
        Err(SubmitError::Invalid(reason)) => assert!(reason.contains("square")),
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Sparse n not divisible by the grid.
    let s9a = hsumma_matrix::seeded_sparse(9, 9, 0.2, 13);
    let s9b = hsumma_matrix::seeded_sparse(9, 9, 0.2, 14);
    match server.submit_spgemm(JobSpec::spgemm(9), s9a, s9b) {
        Err(SubmitError::Invalid(reason)) => assert!(reason.contains("divisible")),
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Operands disagreeing with the spec.
    match server.submit(JobSpec::square(16), a, b) {
        Err(SubmitError::Invalid(reason)) => assert!(reason.contains("spec")),
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Nothing invalid was admitted; the server still works.
    let a = seeded_uniform(8, 8, 5);
    let b = seeded_uniform(8, 8, 6);
    let want = reference(&a, &b);
    let out = server
        .submit(JobSpec::square(8), a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert!(out.c.dense().approx_eq(&want, 1e-9));
    assert_eq!(server.stats().submitted, 1);
}

#[test]
fn rectangular_and_awkward_dense_jobs_are_served() {
    // The planner routes grid-divisible rectangular shapes to the rect
    // grid forms and shapes nothing divides to the brick schedule; both
    // must come back bit-correct against the serial reference.
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    for (i, (m, k, n)) in [
        (24usize, 8usize, 16usize), // grid-divisible rectangular
        (7, 9, 5),                  // nothing divides: cosma only
        (33, 33, 33),               // square but off-grid
    ]
    .into_iter()
    .enumerate()
    {
        let seed = 500 + 2 * i as u64;
        let a = seeded_uniform(m, k, seed);
        let b = seeded_uniform(k, n, seed + 1);
        let want = reference(&a, &b);
        let out = server
            .submit(JobSpec::gemm(m, k, n), a, b)
            .expect("rectangular dense jobs are admitted")
            .wait()
            .expect("job must succeed");
        assert!(
            out.c.dense().approx_eq(&want, 1e-9),
            "({m}x{k}x{n}) wrong under plan {}",
            out.report.plan_desc
        );
    }
    // The awkward shapes must have gone through the brick schedule.
    assert_eq!(server.stats().submitted, 3);
}

#[test]
fn a_failing_job_reports_failure_and_the_server_keeps_serving() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    // Force a plan whose block size violates the algorithm's divisibility
    // precondition: the ranks panic, the job fails, the pool survives.
    let n = 16;
    let a = seeded_uniform(n, n, 1);
    let b = seeded_uniform(n, n, 2);
    let bad_plan = PlanHint::Force(PlannedAlgo::Summa(SummaConfig {
        block: 5, // does not divide the 8x8 tiles
        ..SummaConfig::default()
    }));
    let handle = server
        .submit(JobSpec::square(n).with_hint(bad_plan), a, b)
        .unwrap();
    let err = handle.wait().expect_err("bad plan must fail the job");
    assert!(matches!(
        err,
        hsumma_serve::JobError::Execution(ref msg) if msg.contains("rank")
    ));
    assert_eq!(handle.state(), JobState::Failed);

    // The next (valid) job on the same server succeeds.
    let a = seeded_uniform(n, n, 3);
    let b = seeded_uniform(n, n, 4);
    let want = reference(&a, &b);
    let out = server
        .submit(JobSpec::square(n), a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert!(out.c.dense().approx_eq(&want, 1e-9));
}

#[test]
fn traced_jobs_carry_their_own_spans() {
    let config = ServerConfig {
        trace_jobs: true,
        ..ServerConfig::new(GridShape::new(2, 2))
    };
    let server = GemmServer::new(config).unwrap();
    let submit = |seed: u64| {
        let a = seeded_uniform(16, 16, seed);
        let b = seeded_uniform(16, 16, seed + 1);
        server.submit(JobSpec::square(16), a, b).unwrap()
    };
    let first = submit(1).wait().unwrap();
    let second = submit(3).wait().unwrap();
    let t1 = first.report.trace.expect("tracing enabled");
    let t2 = second.report.trace.expect("tracing enabled");
    // Identical jobs: each trace holds that job's events only, so the
    // two traces have the same (nonzero) event count — not a running sum.
    assert!(!t1.events.is_empty());
    assert_eq!(t1.events.len(), t2.events.len());
}

#[test]
fn graceful_shutdown_completes_queued_jobs() {
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let mut handles = Vec::new();
    let mut wants = Vec::new();
    for seed in 0..6u64 {
        let n = 16;
        let a = seeded_uniform(n, n, 2 * seed);
        let b = seeded_uniform(n, n, 2 * seed + 1);
        wants.push(reference(&a, &b));
        handles.push(server.submit(JobSpec::square(n), a, b).unwrap());
    }
    server.shutdown();
    for (h, want) in handles.into_iter().zip(&wants) {
        let out = h.wait().expect("queued jobs run to completion");
        assert!(out.c.dense().approx_eq(want, 1e-9));
    }
}
