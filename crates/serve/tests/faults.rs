//! Failure-path service tests: deadlines, injected faults, and the
//! containment guarantee — a stalled job fails *itself*, names the edge
//! it stalled on, and leaves the pool serving.

use hsumma_core::{PlannedAlgo, SummaConfig};
use hsumma_matrix::{gemm, seeded_uniform, GemmKernel, GridShape, Matrix};
use hsumma_serve::{GemmServer, JobError, JobOutcome, JobSpec, JobState, PlanHint, ServerConfig};
use hsumma_trace::{FaultPlan, TagClass};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(GemmKernel::Naive, a, b, &mut c);
    c
}

/// Serially replays SUMMA's panel schedule — one naive-kernel update per
/// `block`-wide pivot panel, in step order. This is the *same* sequence
/// of floating-point operations every rank's tile performs, so the
/// distributed product must match it bit for bit, not just approximately.
fn reference_panels(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    let n = a.rows();
    let mut c = Matrix::zeros(n, n);
    for k in 0..n / block {
        let ap = a.block(0, k * block, n, block);
        let bp = b.block(k * block, 0, block, n);
        gemm(GemmKernel::Naive, &ap, &bp, &mut c);
    }
    c
}

/// Runs `f` on a helper thread and panics if it has not finished within
/// `limit` — the acceptance criterion's own watchdog, so a regression
/// that reintroduces an unbounded hang fails the test instead of wedging
/// the suite.
fn with_watchdog<F: FnOnce() + Send + 'static>(limit: Duration, f: F) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => worker.join().expect("test body"),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test body still running after {limit:?} — the service hung")
        }
        // The sender dropped without sending: the body panicked; join to
        // propagate the original panic message.
        Err(mpsc::RecvTimeoutError::Disconnected) => worker.join().expect("test body"),
    }
}

/// A plan whose floating-point accumulation order matches the naive
/// serial triple loop, so the distributed product is bit-identical to
/// [`reference`], not merely close.
fn naive_summa(block: usize) -> PlanHint {
    PlanHint::Force(PlannedAlgo::Summa(SummaConfig {
        block,
        kernel: GemmKernel::Naive,
        ..SummaConfig::default()
    }))
}

#[test]
fn dropped_broadcast_times_out_its_job_and_the_pool_keeps_serving() {
    with_watchdog(Duration::from_secs(60), || {
        let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
        let n = 8;

        // The faulty job: drop the first collective message rank 0 sends
        // to rank 1 — the step-0 A-panel broadcast of SUMMA's row
        // communicator {0, 1} — and bound the job by 200 ms.
        let a = seeded_uniform(n, n, 31);
        let b = seeded_uniform(n, n, 32);
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::Collective, 0));
        let faulty = server
            .submit(
                JobSpec::square(n)
                    .with_hint(naive_summa(2))
                    .with_deadline(Duration::from_millis(200))
                    .with_faults(plan),
                a.clone(),
                b.clone(),
            )
            .unwrap();

        // A clean job queued while the faulty one runs: the failure ahead
        // of it must not leak into its result.
        let want = reference_panels(&a, &b, 2);
        let loose = reference(&a, &b);
        let clean = server
            .submit(JobSpec::square(n).with_hint(naive_summa(2)), a, b)
            .unwrap();

        let err = faulty
            .wait()
            .expect_err("the dropped broadcast must fail the job");
        assert_eq!(faulty.state(), JobState::Failed);
        match &err {
            JobError::Timeout { detail, report } => {
                // The stalled edge is named: rank 1 waiting on rank 0.
                assert!(
                    detail.contains("rank 1") && detail.contains("rank 0"),
                    "detail must name the stalled edge: {detail}"
                );
                assert_eq!(report.outcome, JobOutcome::TimedOut);
                assert_eq!(report.faults_injected, 1, "exactly the one planned drop");
                assert!(report.timeouts >= 1, "at least the stalled rank timed out");
                assert_eq!(report.stats.len(), 4);
                // The per-rank counters agree with the aggregates.
                let merged = report.merged_stats();
                assert_eq!(merged.faults_injected, report.faults_injected);
                assert_eq!(merged.timeouts, report.timeouts);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(err.to_string().contains("timed out"));

        // The clean job is untouched: bit-identical to the serial
        // reference (same accumulation order by construction).
        let out = clean
            .wait()
            .expect("clean job must survive its faulty neighbour");
        assert_eq!(out.report.outcome, JobOutcome::Completed);
        assert_eq!(out.report.faults_injected, 0);
        assert_eq!(
            out.c.dense().max_abs_diff(&want),
            0.0,
            "clean product must be bit-identical to the serial panel replay"
        );
        assert!(
            out.c.dense().approx_eq(&loose, 1e-9),
            "and numerically correct"
        );

        // And the pool still serves: a third job on the same workers.
        let a2 = seeded_uniform(n, n, 41);
        let b2 = seeded_uniform(n, n, 42);
        let want2 = reference_panels(&a2, &b2, 2);
        let out2 = server
            .submit(JobSpec::square(n).with_hint(naive_summa(2)), a2, b2)
            .unwrap()
            .wait()
            .expect("the pool must keep serving after a timed-out job");
        assert_eq!(out2.c.dense().max_abs_diff(&want2), 0.0);

        // Graceful shutdown joins the scheduler and every worker — a
        // leaked or wedged thread would hang here and trip the watchdog.
        server.shutdown();
    });
}

#[test]
fn killed_rank_fails_its_job_with_a_named_edge() {
    with_watchdog(Duration::from_secs(60), || {
        let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
        let n = 8;
        let a = seeded_uniform(n, n, 51);
        let b = seeded_uniform(n, n, 52);
        // Rank 3 dies at its very first send; its peers stall and the
        // deadline converts the stall into a diagnosed timeout.
        let plan = Arc::new(FaultPlan::new().kill_rank(3, 0));
        let err = server
            .submit(
                JobSpec::square(n)
                    .with_hint(naive_summa(2))
                    .with_deadline(Duration::from_millis(200))
                    .with_faults(plan),
                a.clone(),
                b.clone(),
            )
            .unwrap()
            .wait()
            .expect_err("a killed rank must fail the job");
        let report = err.report().expect("deadline failures carry a report");
        assert_eq!(report.outcome, JobOutcome::TimedOut);
        assert_eq!(report.faults_injected, 1, "the kill counts once");

        // Deadline-free clean job afterwards: full service restored.
        let want = reference_panels(&a, &b, 2);
        let out = server
            .submit(JobSpec::square(n).with_hint(naive_summa(2)), a, b)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.c.dense().max_abs_diff(&want), 0.0);
    });
}

#[test]
fn deadline_without_faults_is_free_on_the_clean_path() {
    // A generous deadline on a healthy job must not change the result:
    // the fallible plumbing is pay-as-you-go.
    let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
    let n = 16;
    let a = seeded_uniform(n, n, 61);
    let b = seeded_uniform(n, n, 62);
    let want = reference_panels(&a, &b, 4);
    let out = server
        .submit(
            JobSpec::square(n)
                .with_hint(naive_summa(4))
                .with_deadline(Duration::from_secs(30)),
            a,
            b,
        )
        .unwrap()
        .wait()
        .expect("a healthy job must beat a 30 s deadline");
    assert_eq!(out.report.outcome, JobOutcome::Completed);
    assert_eq!(out.report.timeouts, 0);
    assert_eq!(out.report.cancelled, 0);
    assert_eq!(out.c.dense().max_abs_diff(&want), 0.0);
}
