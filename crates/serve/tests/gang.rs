//! Gang-scheduling tests: concurrent sub-pool runs are bit-identical to
//! dedicated-pool runs, and a fault-killed gang member leaves its
//! sibling sub-pool's job untouched.

use hsumma_core::{PlannedAlgo, SummaConfig};
use hsumma_matrix::sparse::{seeded_sparse, spgemm};
use hsumma_matrix::{gemm, seeded_uniform, GemmKernel, GridShape, Matrix};
use hsumma_model::{advise_spgemm_ranks, ModelParams, SparsityProfile};
use hsumma_serve::{
    subgrid, GemmServer, JobSpec, PlanHint, Planner, PlannerConfig, SchedPolicy, ServerConfig,
};
use hsumma_trace::{FaultPlan, TagClass};
use std::sync::Arc;
use std::time::Duration;

fn reference(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(GemmKernel::Naive, a, b, &mut c);
    c
}

/// A job that occupies the scheduler for ~`ms` while the queue behind it
/// fills: a dropped message stalls a rank until the deadline's watchdog
/// fires. Waves only form from jobs that are *queued together*, so the
/// stall makes gang formation deterministic. The plan is *forced* so the
/// packing policy gives the filler the whole pool (forced plans are
/// unpriceable): it can never be packed into a wave next to the jobs it
/// is supposed to shield, and a multi-rank run guarantees the dropped
/// message is actually waited on.
fn stalled_filler(server: &GemmServer, ms: u64) -> hsumma_serve::JobHandle {
    let n = 64;
    let a = seeded_uniform(n, n, 9001);
    let b = seeded_uniform(n, n, 9002);
    let stall = Arc::new(FaultPlan::new().drop_nth(Some(0), None, TagClass::Any, 0));
    let spec = JobSpec::square(n)
        .with_hint(PlanHint::Force(PlannedAlgo::Summa(SummaConfig {
            block: 8,
            ..SummaConfig::default()
        })))
        .with_deadline(Duration::from_millis(ms))
        .with_faults(stall);
    server.submit(spec, a, b).expect("filler is admitted")
}

#[test]
fn gang_scheduled_jobs_are_bit_identical_to_dedicated_pool_runs() {
    // On the 2x4 pool the planner's strong-scaling curve caps an n=256
    // job at 4 ranks — pin that precondition, since the whole test rides
    // on two such jobs ganging side by side.
    let n = 256;
    let whole = GridShape::new(2, 4);
    let est = Planner::new(whole, PlannerConfig::default()).estimate(n, n, n);
    assert_eq!(est.ranks, 4, "n=256 prefers 4 of 8 ranks on this model");
    let sub = subgrid(est.ranks);
    assert_eq!(sub, GridShape::new(2, 2));

    // Reference: a dedicated FIFO server whose *whole* grid is the
    // sub-pool grid. Same planner config + same grid ⇒ same plan ⇒ same
    // floating-point schedule, so the gang runs must match bitwise.
    let dedicated = GemmServer::new(ServerConfig {
        sched: SchedPolicy::Fifo,
        ..ServerConfig::new(sub)
    })
    .unwrap();
    let seeds = [41u64, 43];
    let mut wants = Vec::new();
    for &seed in &seeds {
        let a = seeded_uniform(n, n, seed);
        let b = seeded_uniform(n, n, seed + 1);
        let out = dedicated
            .submit(JobSpec::square(n), a, b)
            .unwrap()
            .wait()
            .unwrap();
        wants.push(out.c.dense().clone());
    }

    // The gang: stall the pool, queue both jobs behind the stall so the
    // scheduler's next wave packs them into [4, 4] sub-pools.
    let server = GemmServer::new(ServerConfig::new(whole)).unwrap();
    let filler = stalled_filler(&server, 200);
    let handles: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            let a = seeded_uniform(n, n, seed);
            let b = seeded_uniform(n, n, seed + 1);
            server.submit(JobSpec::square(n), a, b).unwrap()
        })
        .collect();
    assert!(filler.wait().is_err(), "the stalled filler times out");
    for (handle, want) in handles.into_iter().zip(&wants) {
        let out = handle.wait().expect("gang member succeeds");
        assert_eq!(
            out.report.stats.len(),
            4,
            "the job ran on a 4-rank sub-pool, not the whole pool"
        );
        assert!(
            out.report.merged_stats().msgs_sent > 0,
            "4-rank runs communicate"
        );
        assert_eq!(
            out.c.dense().as_slice(),
            want.as_slice(),
            "sub-pool product differs bitwise from the dedicated run"
        );
    }
    let stats = server.stats();
    assert!(stats.gangs >= 1, "the two jobs formed a wave: {stats:?}");
    assert!(stats.gang_jobs >= 2);

    // The pool is whole again: a big job takes all 8 ranks.
    let a = seeded_uniform(512, 512, 77);
    let b = seeded_uniform(512, 512, 78);
    let want = reference(&a, &b);
    let out = server
        .submit(JobSpec::square(512), a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(out.report.stats.len(), 8, "whole-pool job after the gang");
    assert!(out.c.dense().approx_eq(&want, 1e-9));
}

#[test]
fn sparse_and_dense_jobs_pack_into_one_wave() {
    let n = 256;
    let whole = GridShape::new(2, 4);

    // Preconditions the wave rides on: the dense n=256 job prefers 4 of
    // the 8 ranks (pinned by the first test too), and the nnz-aware
    // sweep caps a 2%-fill SpGEMM of the same shape at ≤ 4 ranks, so
    // both fit in one wave.
    let est = Planner::new(whole, PlannerConfig::default()).estimate(n, n, n);
    assert_eq!(est.ranks, 4, "n=256 prefers 4 of 8 ranks on this model");
    let platform = PlannerConfig::default().platform;
    let params = ModelParams {
        alpha: platform.net.alpha,
        beta: platform.net.beta,
        gamma: platform.gamma,
    };
    let prof = SparsityProfile::uniform(n as f64, n as f64, 0.02);
    let advice = advise_spgemm_ranks(&params, n as f64, whole.size(), 32.0, &prof, &prof, 0.1);
    assert!(
        advice.preferred <= 4,
        "a 2%-fill 256² SpGEMM must not be worth more than half the pool \
         (preferred {})",
        advice.preferred
    );

    let da = seeded_uniform(n, n, 501);
    let db = seeded_uniform(n, n, 502);
    let dense_want = reference(&da, &db);
    let sa = seeded_sparse(n, n, 0.02, 503);
    let sb = seeded_sparse(n, n, 0.02, 504);
    let sparse_want = spgemm(&sa, &sb);

    // Stall the pool so both jobs queue together, then let the next wave
    // pack the dense job and the sparse job side by side.
    let server = GemmServer::new(ServerConfig::new(whole)).unwrap();
    let filler = stalled_filler(&server, 200);
    let dense = server.submit(JobSpec::square(n), da, db).unwrap();
    let sparse = server.submit_spgemm(JobSpec::spgemm(n), sa, sb).unwrap();
    assert!(filler.wait().is_err(), "the stalled filler times out");

    let dout = dense.wait().expect("dense gang member succeeds");
    assert_eq!(dout.report.stats.len(), 4, "dense job ran on its sub-pool");
    assert!(dout.c.dense().approx_eq(&dense_want, 1e-9));

    let sout = sparse.wait().expect("sparse gang member succeeds");
    assert!(
        sout.report.stats.len() < whole.size(),
        "sparse job ran on a carved sub-pool, not the whole pool \
         ({} ranks)",
        sout.report.stats.len()
    );
    assert!(
        sout.report.plan_desc.starts_with("spgemm_2d"),
        "2% fill must route to the native CSR schedule, ran {}",
        sout.report.plan_desc
    );
    assert!(sout.c.sparse().max_abs_diff(&sparse_want) < 1e-12);

    let stats = server.stats();
    assert!(stats.gangs >= 1, "the two jobs formed a wave: {stats:?}");
    assert!(stats.gang_jobs >= 2);
}

#[test]
fn fault_killed_gang_member_leaves_the_sibling_sub_pool_untouched() {
    let n = 256;
    let whole = GridShape::new(2, 4);
    let server = GemmServer::new(ServerConfig::new(whole)).unwrap();

    // Operands and the (slow, naive) serial reference are prepared
    // before the filler starts its stall, so all three submissions land
    // inside the stall window.
    let va = seeded_uniform(n, n, 201);
    let vb = seeded_uniform(n, n, 202);
    let sa = seeded_uniform(n, n, 301);
    let sb = seeded_uniform(n, n, 302);
    let want = reference(&sa, &sb);

    let filler = stalled_filler(&server, 200);
    // Victim: killed on its sub-pool's local rank 1 at the first send;
    // the deadline bounds how long its peers wait on the dead rank.
    let kill = Arc::new(FaultPlan::new().kill_rank(1, 0));
    let victim = server
        .submit(
            JobSpec::square(n)
                .with_deadline(Duration::from_millis(400))
                .with_faults(kill),
            va,
            vb,
        )
        .unwrap();
    // Sibling: a clean job that the wave packs next to the victim.
    let sibling = server.submit(JobSpec::square(n), sa, sb).unwrap();

    assert!(filler.wait().is_err(), "the stalled filler times out");
    assert!(
        victim.wait().is_err(),
        "a killed rank must fail the victim job"
    );
    let out = sibling.wait().expect("sibling survives the kill next door");
    assert_eq!(out.report.stats.len(), 4, "sibling ran on its sub-pool");
    assert!(
        out.c.dense().approx_eq(&want, 1e-9),
        "sibling product corrupted by the neighbouring fault"
    );
    assert!(
        server.stats().gangs >= 1,
        "victim and sibling shared a wave"
    );

    // The server keeps serving on the whole pool afterwards.
    let a = seeded_uniform(64, 64, 401);
    let b = seeded_uniform(64, 64, 402);
    let want = reference(&a, &b);
    let out = server
        .submit(JobSpec::square(64), a, b)
        .unwrap()
        .wait()
        .unwrap();
    assert!(out.c.dense().approx_eq(&want, 1e-9));
}
