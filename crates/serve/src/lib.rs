//! A persistent GEMM job service — the serving layer over the HSUMMA
//! stack.
//!
//! Everything below this crate treats one multiply as the whole program:
//! `Runtime::run` spawns `p` threads, executes one SPMD function, joins.
//! A long-lived process that answers a *stream* of multiply requests
//! wants the opposite lifecycle, and this crate provides it in three
//! layers:
//!
//! * **Pooled execution** — a [`hsumma_runtime::RankPool`] of `p` rank
//!   threads created once at server start; each job is dispatched to the
//!   living world and demarcated by an epoch (per-job communication
//!   stats, per-job traces, stale-message purging);
//! * **Job service** — [`GemmServer`] with `submit(JobSpec, A, B) →
//!   JobHandle`: a bounded admission gate that rejects with a reason
//!   when full (backpressure, never silent blocking) and, by default,
//!   rejects deadlines the calibrated cost model proves unmeetable
//!   ([`SubmitError::Infeasible`]); an earliest-deadline-first ready
//!   queue with an aging background class; gang scheduling that carves
//!   the pool into sub-pools sized by the planner's strong-scaling
//!   curve so small jobs run concurrently (see `docs/scheduling.md`);
//!   job states `Queued → Running → Done/Failed`, and a per-job
//!   [`JobReport`] carrying the executed plan, wall time and this job's
//!   [`CommStats`] deltas. Beyond dense GEMM the same queue serves
//!   sparse workloads:
//!   `submit_spgemm(spec, A, B)` with CSR operands (routed by the
//!   nnz-aware scoreboard to densify-and-SUMMA or the native 2-D SpGEMM
//!   schedule) and `submit_sddmm(spec, S, A, B)`, both yielding a
//!   [`Product::Sparse`] and honouring deadlines and fault plans exactly
//!   like dense jobs;
//! * **Model-driven planning** — the [`Planner`] picks SUMMA vs HSUMMA
//!   vs Cannon and the `(G, B, b)` grouping from the paper's closed-form
//!   cost models, refines HSUMMA's `G` on the timing simulator, and
//!   memoizes the result per `(p, shape class)` in a plan cache so only
//!   the first job of a shape pays for planning.
//!
//! ```
//! use hsumma_matrix::{seeded_uniform, GridShape};
//! use hsumma_serve::{GemmServer, JobSpec, ServerConfig};
//!
//! let server = GemmServer::new(ServerConfig::new(GridShape::new(2, 2))).unwrap();
//! let a = seeded_uniform(16, 16, 1);
//! let b = seeded_uniform(16, 16, 2);
//! let handle = server.submit(JobSpec::square(16), a, b).unwrap();
//! let out = handle.wait().unwrap();
//! assert_eq!(out.c.shape(), (16, 16));
//! println!("ran {} in {:?}", out.report.plan_desc, out.report.wall);
//! ```
//!
//! [`CommStats`]: hsumma_runtime::CommStats

pub mod job;
pub mod planner;
pub mod sched;
pub mod server;

pub use job::{
    JobError, JobHandle, JobOutcome, JobOutput, JobReport, JobSpec, JobState, PlanHint, Product,
    ServePlan, SubmitError, Workload,
};
pub use planner::{
    sparsity_profile, JobEstimate, PipelinePolicy, Planned, Planner, PlannerConfig, PlannerStats,
    ShapeClass, SparsePlanned, RANK_TOLERANCE,
};
pub use sched::{subgrid, Calibration, PriorityClass, ReadyQueue, AGING_BOUND};
pub use server::{Admission, GemmServer, SchedPolicy, ServerConfig, ServerStats};
