//! Job vocabulary: what a client submits, how it tracks progress, and
//! what it gets back.
//!
//! A *job* is one multiply — dense `C = A·B`, sparse `C = A·B`
//! (SpGEMM), or sampled `C = S ⊙ (A·B)` (SDDMM), per its [`Workload`].
//! The client hands the server a [`JobSpec`] plus the operands and
//! receives a [`JobHandle`] — a cheap, clonable ticket it can poll
//! ([`JobHandle::state`]) or block on ([`JobHandle::wait`]). Completion
//! yields a [`JobOutput`]: the [`Product`] (dense or CSR, matching the
//! workload) and a [`JobReport`] describing exactly what the service did
//! for this job — the plan it ran, the wall time, and the per-rank
//! communication deltas of this job alone (the pool's epoch demarcation
//! guarantees the counters contain nothing from neighbouring jobs).

use hsumma_core::PlannedAlgo;
use hsumma_matrix::sparse::CsrMatrix;
use hsumma_matrix::Matrix;
use hsumma_runtime::CommStats;
use hsumma_trace::{FaultPlan, Trace};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which multiply a job runs — and therefore which submission entry
/// point it must arrive through and which [`Product`] it yields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Dense `C = A·B` via [`GemmServer::submit`]; dense product.
    ///
    /// [`GemmServer::submit`]: crate::GemmServer::submit
    DenseGemm,
    /// Sparse `C = A·B` via [`GemmServer::submit_spgemm`]; CSR product.
    /// The nnz-aware planner decides densify-and-SUMMA vs native 2-D
    /// SpGEMM per job from sampled sparsity profiles.
    ///
    /// [`GemmServer::submit_spgemm`]: crate::GemmServer::submit_spgemm
    SpGemm,
    /// Sampled `C = S ⊙ (A·B)` via [`GemmServer::submit_sddmm`]; CSR
    /// product with exactly `S`'s pattern.
    ///
    /// [`GemmServer::submit_sddmm`]: crate::GemmServer::submit_sddmm
    Sddmm,
}

/// What the client wants multiplied, before operands are attached.
///
/// The dimensions describe `C[m × n] = A[m × k] · B[k × n]`. Dense GEMM
/// jobs accept any positive extents: the planner picks the rectangular
/// grid forms (`hsumma-core::rect`) when the grid tiles the shape and
/// the COSMA brick schedule (which needs no divisibility) otherwise.
/// The sparse workloads still require square grid-divisible operands
/// and reject others at submission with a reason.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Columns of `C` (and of `B`).
    pub n: usize,
    /// Rows of `C` (and of `A`).
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Which multiply this job runs; must match the submission entry
    /// point (`submit` / `submit_spgemm` / `submit_sddmm`).
    pub workload: Workload,
    /// How much freedom the planner has.
    pub hint: PlanHint,
    /// Wall-clock budget from dispatch to gathered product. When the job
    /// overruns it, every rank unwinds with `CommError::Timeout`/
    /// `Cancelled`, the job fails with [`JobError::Timeout`], and the
    /// pool goes on to the next job. `None` = unbounded (pre-existing
    /// behaviour; a stalled job then blocks the FIFO, exactly as a
    /// deadlocked `mpirun` would).
    pub deadline: Option<Duration>,
    /// Deterministic fault schedule injected at this job's send paths —
    /// the service-level entry point to the fault machinery (see
    /// `docs/faults.md`). Faulty jobs should set a `deadline`: a dropped
    /// message otherwise stalls the job forever.
    pub faults: Option<Arc<FaultPlan>>,
}

impl JobSpec {
    /// A square `n × n` dense GEMM job with the planner free to choose.
    pub fn square(n: usize) -> Self {
        JobSpec {
            n,
            m: n,
            k: n,
            workload: Workload::DenseGemm,
            hint: PlanHint::Auto,
            deadline: None,
            faults: None,
        }
    }

    /// A general `C[m × n] = A[m × k] · B[k × n]` dense GEMM job with
    /// the planner free to choose.
    pub fn gemm(m: usize, k: usize, n: usize) -> Self {
        JobSpec {
            m,
            k,
            ..JobSpec::square(n)
        }
    }

    /// A square `n × n` sparse × sparse (SpGEMM) job.
    pub fn spgemm(n: usize) -> Self {
        JobSpec {
            workload: Workload::SpGemm,
            ..JobSpec::square(n)
        }
    }

    /// A square `n × n` sampled dense-dense (SDDMM) job.
    pub fn sddmm(n: usize) -> Self {
        JobSpec {
            workload: Workload::Sddmm,
            ..JobSpec::square(n)
        }
    }

    /// Same spec with a different planning hint.
    pub fn with_hint(mut self, hint: PlanHint) -> Self {
        self.hint = hint;
        self
    }

    /// Same spec with a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same spec with an injected fault schedule.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Client guidance to the planner.
#[derive(Clone, Copy, Debug)]
pub enum PlanHint {
    /// Let the planner choose (cost models + simulator refinement,
    /// memoized per shape class).
    Auto,
    /// Run exactly this plan, bypassing the planner. The escape hatch for
    /// experiments and A/B comparisons; an ill-suited plan fails *this
    /// job*, never the service.
    Force(PlannedAlgo),
}

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in the FIFO queue.
    Queued,
    /// Executing on the rank pool.
    Running,
    /// Finished; the output is (or was) available via [`JobHandle::wait`].
    Done,
    /// Failed; [`JobHandle::wait`] returns the [`JobError`].
    Failed,
}

/// Why a submission was refused at the door. Admission control is
/// synchronous: a rejected job costs the client one mutex acquisition and
/// nothing of the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure. Retry later or
    /// shed load; the error carries the numbers a client needs to decide.
    QueueFull {
        /// Configured queue bound.
        capacity: usize,
        /// Jobs waiting right now (= capacity when rejected).
        queued: usize,
    },
    /// The spec or operands cannot be executed on this service.
    Invalid(String),
    /// Feasibility admission rejected the deadline: the planner's
    /// calibrated duration prediction, plus the work already queued
    /// ahead of this deadline, provably overruns it. The two fields name
    /// the margin — `predicted ≥ deadline` always holds here, and
    /// `predicted − deadline` is how much the client must relax (or how
    /// much queue must drain) before resubmitting.
    Infeasible {
        /// Modeled completion time from now: queue backlog ahead of this
        /// deadline plus this job's own predicted duration.
        predicted: Duration,
        /// The deadline the client asked for.
        deadline: Duration,
    },
    /// The service is shutting down and takes no new work.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, queued } => write!(
                f,
                "admission queue full ({queued}/{capacity} jobs queued); retry later"
            ),
            SubmitError::Invalid(reason) => write!(f, "invalid job: {reason}"),
            SubmitError::Infeasible {
                predicted,
                deadline,
            } => write!(
                f,
                "deadline infeasible: predicted completion {predicted:?} vs deadline \
                 {deadline:?} (short by {:?})",
                predicted.saturating_sub(*deadline)
            ),
            SubmitError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted job did not produce a product.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The job failed while executing (e.g. a rank panicked on a plan
    /// precondition). The service survives; the message names the cause.
    Execution(String),
    /// The job overran its deadline. `detail` names the primary stalled
    /// communication edge (`rank ← peer, ctx/tag/epoch`); the report
    /// carries the per-rank stats — including the `timeouts` and
    /// `faults_injected` counters — of the failed run.
    Timeout {
        /// The primary stalled edge, human-readable.
        detail: String,
        /// What the service observed while the job ran and failed.
        report: Box<JobReport>,
    },
    /// The job was cancelled (watchdog or explicit) before completing.
    Cancelled {
        /// The primary cancelled operation, human-readable.
        detail: String,
        /// What the service observed while the job ran and failed.
        report: Box<JobReport>,
    },
    /// The service shut down before the job ran.
    Shutdown,
}

impl JobError {
    /// The failed run's report, when the job got far enough to have one
    /// (deadline and cancellation failures do; panics and shutdown don't).
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobError::Timeout { report, .. } | JobError::Cancelled { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Execution(msg) => write!(f, "job failed: {msg}"),
            JobError::Timeout { detail, .. } => write!(f, "job timed out: {detail}"),
            JobError::Cancelled { detail, .. } => write!(f, "job cancelled: {detail}"),
            JobError::Shutdown => write!(f, "service shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// How one job's execution resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every rank finished and the product was gathered.
    Completed,
    /// At least one rank hit the job deadline; the primary error was a
    /// timeout.
    TimedOut,
    /// The job was cancelled (primary error `CommError::Cancelled`)
    /// before the deadline diagnosis could be made.
    Cancelled,
}

/// The schedule one job actually executed — dense plans come from the
/// model-driven [`Planner`], sparse ones from the nnz-aware scoreboard.
///
/// [`Planner`]: crate::Planner
#[derive(Clone, Copy, Debug)]
pub enum ServePlan {
    /// A dense GEMM plan on dense operands.
    Dense(PlannedAlgo),
    /// A dense GEMM plan on *densified* CSR operands: the sparse
    /// scoreboard predicted the operands were full enough that shipping
    /// 8-byte dense panels beats CSR's 12-byte entries.
    Densified(PlannedAlgo),
    /// Native 2-D SpGEMM with pivot panel width `block`.
    SpGemm {
        /// Pivot panel width.
        block: usize,
    },
    /// 2-D SDDMM with pivot panel width `block`.
    Sddmm {
        /// Pivot panel width.
        block: usize,
    },
}

impl ServePlan {
    /// Human-readable plan summary.
    pub fn describe(&self) -> String {
        match self {
            ServePlan::Dense(p) => p.describe(),
            ServePlan::Densified(p) => format!("densify→{}", p.describe()),
            ServePlan::SpGemm { block } => format!("spgemm_2d(b={block})"),
            ServePlan::Sddmm { block } => format!("sddmm_2d(b={block})"),
        }
    }
}

/// What the service did for one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Service-assigned job id (submission order).
    pub job_id: u64,
    /// The plan that executed.
    pub plan: ServePlan,
    /// Human-readable plan summary (e.g. `hsumma(G=2x2, B=8, b=8)`).
    pub plan_desc: String,
    /// Whether the plan came from the cache (`true`) or was computed —
    /// model evaluation plus simulator sweep — for this job (`false`).
    pub plan_cached: bool,
    /// Wall time from dequeue to gathered product (scatter + SPMD run +
    /// gather; queueing time excluded).
    pub wall: Duration,
    /// Per-rank communication statistics of this job alone.
    pub stats: Vec<CommStats>,
    /// This job's spans, when the service traces jobs.
    pub trace: Option<Trace>,
    /// How the run resolved. `Completed` reports ride in a
    /// [`JobOutput`]; `TimedOut`/`Cancelled` reports ride in the
    /// corresponding [`JobError`] variant.
    pub outcome: JobOutcome,
    /// Blocking waits that hit the job deadline, summed over ranks.
    pub timeouts: u64,
    /// Operations aborted by cancellation, summed over ranks.
    pub cancelled: u64,
    /// Faults the job's [`FaultPlan`] injected, summed over ranks.
    pub faults_injected: u64,
}

impl JobReport {
    /// All ranks' stats merged into one.
    pub fn merged_stats(&self) -> CommStats {
        let mut total = CommStats::default();
        for s in &self.stats {
            total.merge_in_place(s);
        }
        total
    }
}

/// A finished job's product, typed by workload: dense GEMM jobs yield
/// [`Product::Dense`], SpGEMM and SDDMM jobs yield [`Product::Sparse`]
/// (even when the sparse planner chose to densify internally — the
/// product contract follows the *submission*, not the execution path).
#[derive(Clone, Debug, PartialEq)]
pub enum Product {
    /// A dense result matrix.
    Dense(Matrix),
    /// A CSR result matrix.
    Sparse(CsrMatrix),
}

impl Product {
    /// `(rows, cols)` of the product, either representation.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Product::Dense(m) => m.shape(),
            Product::Sparse(m) => m.shape(),
        }
    }

    /// The dense product.
    ///
    /// # Panics
    /// Panics if the product is sparse (SpGEMM/SDDMM jobs).
    pub fn dense(&self) -> &Matrix {
        match self {
            Product::Dense(m) => m,
            Product::Sparse(_) => panic!("job produced a sparse product, not a dense one"),
        }
    }

    /// The CSR product.
    ///
    /// # Panics
    /// Panics if the product is dense (plain GEMM jobs).
    pub fn sparse(&self) -> &CsrMatrix {
        match self {
            Product::Sparse(m) => m,
            Product::Dense(_) => panic!("job produced a dense product, not a sparse one"),
        }
    }
}

/// A completed job: the product and the report.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The global product (dense or CSR, per the job's [`Workload`]).
    pub c: Product,
    /// What the service did to produce it.
    pub report: JobReport,
}

/// The shared completion cell behind a [`JobHandle`].
pub(crate) struct JobCell {
    state: Mutex<CellState>,
    cv: Condvar,
}

enum CellState {
    Queued,
    Running,
    // Boxed: a JobOutput carries a whole result matrix plus a report,
    // dwarfing the other variants.
    Done(Box<JobOutput>),
    Failed(JobError),
}

impl JobCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(JobCell {
            state: Mutex::new(CellState::Queued),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn set_running(&self) {
        *self.state.lock().expect("job cell lock") = CellState::Running;
        self.cv.notify_all();
    }

    pub(crate) fn finish(&self, outcome: Result<JobOutput, JobError>) {
        let mut st = self.state.lock().expect("job cell lock");
        *st = match outcome {
            Ok(out) => CellState::Done(Box::new(out)),
            Err(e) => CellState::Failed(e),
        };
        self.cv.notify_all();
    }
}

/// The client's ticket for one submitted job. Clonable; any clone may
/// poll, every waiter sees the same outcome.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) cell: Arc<JobCell>,
}

impl JobHandle {
    /// Service-assigned job id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state, without blocking.
    pub fn state(&self) -> JobState {
        match *self.cell.state.lock().expect("job cell lock") {
            CellState::Queued => JobState::Queued,
            CellState::Running => JobState::Running,
            CellState::Done(_) => JobState::Done,
            CellState::Failed(_) => JobState::Failed,
        }
    }

    /// Blocks until the job completes and returns its outcome. The output
    /// is cloned out of the cell, so every clone of the handle can wait.
    pub fn wait(&self) -> Result<JobOutput, JobError> {
        let mut st = self.cell.state.lock().expect("job cell lock");
        loop {
            match &*st {
                CellState::Done(out) => return Ok((**out).clone()),
                CellState::Failed(e) => return Err(e.clone()),
                _ => st = self.cell.cv.wait(st).expect("job cell lock"),
            }
        }
    }
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("state", &self.state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_observes_lifecycle() {
        let cell = JobCell::new();
        let h = JobHandle {
            id: 7,
            cell: Arc::clone(&cell),
        };
        assert_eq!(h.state(), JobState::Queued);
        cell.set_running();
        assert_eq!(h.state(), JobState::Running);
        cell.finish(Err(JobError::Shutdown));
        assert_eq!(h.state(), JobState::Failed);
        assert!(matches!(h.wait().unwrap_err(), JobError::Shutdown));
    }

    #[test]
    fn wait_blocks_until_finish_and_all_clones_see_it() {
        let cell = JobCell::new();
        let h = JobHandle {
            id: 1,
            cell: Arc::clone(&cell),
        };
        let h2 = h.clone();
        let waiter = std::thread::spawn(move || h2.wait());
        cell.finish(Err(JobError::Execution("boom".into())));
        let got = waiter.join().expect("waiter thread");
        assert!(matches!(got.unwrap_err(), JobError::Execution(msg) if msg == "boom"));
        assert!(matches!(h.wait().unwrap_err(), JobError::Execution(msg) if msg == "boom"));
    }

    #[test]
    fn submit_errors_render_reasons() {
        let e = SubmitError::QueueFull {
            capacity: 4,
            queued: 4,
        };
        assert!(e.to_string().contains("4/4"));
        assert!(SubmitError::Invalid("m != n".into())
            .to_string()
            .contains("m != n"));
    }

    #[test]
    fn square_spec_is_square() {
        let s = JobSpec::square(64);
        assert_eq!((s.m, s.k, s.n), (64, 64, 64));
        assert!(matches!(s.hint, PlanHint::Auto));
        assert_eq!(s.workload, Workload::DenseGemm);
    }

    #[test]
    fn workload_constructors_set_the_workload() {
        assert_eq!(JobSpec::spgemm(64).workload, Workload::SpGemm);
        assert_eq!(JobSpec::sddmm(64).workload, Workload::Sddmm);
        assert_eq!((JobSpec::sddmm(64).m, JobSpec::sddmm(64).n), (64, 64));
    }

    #[test]
    fn serve_plan_describe_names_the_schedule() {
        assert_eq!(ServePlan::SpGemm { block: 8 }.describe(), "spgemm_2d(b=8)");
        assert_eq!(ServePlan::Sddmm { block: 4 }.describe(), "sddmm_2d(b=4)");
    }

    #[test]
    fn product_accessors_type_check() {
        let d = Product::Dense(Matrix::zeros(3, 5));
        assert_eq!(d.shape(), (3, 5));
        assert_eq!(d.dense().shape(), (3, 5));
        let s = Product::Sparse(CsrMatrix::zeros(4, 6));
        assert_eq!(s.shape(), (4, 6));
        assert_eq!(s.sparse().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "sparse product")]
    fn dense_accessor_rejects_sparse_products() {
        let _ = Product::Sparse(CsrMatrix::zeros(2, 2)).dense();
    }
}
