//! The model-driven planner: from a job's shape to an executable
//! [`PlannedAlgo`], memoized per shape class.
//!
//! Planning is two passes, exactly as ROADMAP.md sketches for the
//! serving layer:
//!
//! 1. **Closed form** — [`hsumma_model::advise_gemm`] compares SUMMA,
//!    HSUMMA at its predicted-best `G` (seeded by the paper's `G = √p`
//!    extremum), Cannon, and the COSMA-style brick schedule on the
//!    configured `(α, β, γ)`, in microseconds of arithmetic;
//! 2. **Simulator refinement** — when the advice is HSUMMA, the analytic
//!    `G` is cross-checked against the timing simulator
//!    ([`hsumma_core::tuning::sweep_groups`]), which prices the *actual
//!    schedule* (pipelining, per-step dependencies) rather than the
//!    closed form. The simulator sweep is the expensive part — tens of
//!    milliseconds for large `p` — which is why its outcome is cached.
//!
//! The plan cache is keyed by `(p, shape class)` where the shape class
//! is `(⌈log₂ m⌉, ⌈log₂ k⌉, ⌈log₂ n⌉)`: two problems within a factor of
//! two of each other in every extent get the same plan, a deliberate
//! coarsening that makes a serving workload of "roughly n = 256" jobs
//! hit the cache after the first one. Cache statistics
//! ([`PlannerStats`]) are part of the public API so tests and operators
//! can *prove* the second same-shape job skipped the sweep.
//!
//! Shapes the grid cannot tile (extents not divisible by the grid rows
//! and columns) bypass both the cache and the model: only the brick
//! schedule ([`hsumma_core::cosma()`]) can serve them, so planning is one
//! decomposition search per job.

use hsumma_core::tuning::{best_by_comm, power_of_two_gs, sweep_groups_engine};
use hsumma_core::SimEngine;
use hsumma_core::{BrickDecomp, CosmaConfig, HierGrid, HsummaConfig, PlannedAlgo, SummaConfig};
use hsumma_matrix::sparse::CsrMatrix;
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_model::{
    advise_gemm, advise_ranks, advise_sparse, AlgoChoice, BcastModel, ModelParams, SparseAdvice,
    SparseChoice, SparsityProfile,
};
use hsumma_netsim::{Platform, SimBcast};
use std::collections::HashMap;

/// Planner configuration: which cost model and which simulated platform
/// rank the candidates.
///
/// The platform prices *relative* choices (which algorithm, which `G`),
/// not absolute in-process speed — the default Grid5000 profile has the
/// latency/bandwidth ratio closest to thread-mailbox messaging among the
/// presets.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Simulated platform used for the refinement sweep and, via its
    /// `(α, β, γ)`, for the closed-form pass.
    pub platform: Platform,
    /// Broadcast cost model of the closed-form pass.
    pub bcast: BcastModel,
    /// Whether to refine HSUMMA's `G` on the simulator (pass 2). When
    /// `false` the analytic `G` is used directly and no sweeps run.
    pub refine_with_sim: bool,
    /// When to take the double-buffered overlap GEMM path.
    pub pipeline: PipelinePolicy,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            platform: Platform::grid5000(),
            bcast: BcastModel::Binomial,
            refine_with_sim: true,
            pipeline: PipelinePolicy::Auto,
        }
    }
}

/// Whether plans use the pipelined (double-buffered overlap) GEMM path
/// or the blocking collectives.
///
/// In the pure cost model pipelining never loses — `α + max(β·m, γ·f)`
/// is at most `α + β·m + γ·f` — so an unconditional "always pipeline"
/// rule would make the choice vacuous. `Auto` instead demands a
/// *material* modeled win before taking the pipelined path, mirroring
/// the `fault_overhead` guard: the handle machinery is only free when
/// there is real transfer time to hide behind real compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelinePolicy {
    /// Pipeline when the model predicts the overlap hides more than 2%
    /// of the blocking execution time ([`hsumma_model::PlanAdvice::overlap_win_fraction`]).
    Auto,
    /// Always use the blocking collectives (pre-pipeline behavior).
    Blocking,
    /// Always use the pipelined path (where one exists; Cannon and the
    /// Cosma brick schedule have none, and rectangular shapes run the
    /// blocking rect forms).
    Pipelined,
}

/// `Auto`'s threshold: the modeled fraction of blocking time the
/// pipeline must hide before it is worth the handle machinery.
const AUTO_MIN_WIN: f64 = 0.02;

/// Cache key: problems of the same rank count and size class share a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// Rank count the plan was made for.
    pub p: usize,
    /// `⌈log₂ m⌉` of `C`'s row extent.
    pub log2_m: u32,
    /// `⌈log₂ k⌉` of the shared (contraction) extent.
    pub log2_k: u32,
    /// `⌈log₂ n⌉` of `C`'s column extent.
    pub log2_n: u32,
}

fn log2_class(extent: usize) -> u32 {
    (extent.max(1) as f64).log2().ceil() as u32
}

impl ShapeClass {
    /// The class of an `n × n` problem on `p` ranks.
    pub fn of(p: usize, n: usize) -> Self {
        ShapeClass::of_gemm(p, n, n, n)
    }

    /// The class of a `C(m×n) = A(m×k)·B(k×n)` problem on `p` ranks.
    pub fn of_gemm(p: usize, m: usize, k: usize, n: usize) -> Self {
        ShapeClass {
            p,
            log2_m: log2_class(m),
            log2_k: log2_class(k),
            log2_n: log2_class(n),
        }
    }
}

/// Counters proving what the planner did (and did not) compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans computed fresh (model + optional sweep).
    pub misses: u64,
    /// Individual simulator evaluations run (one per candidate `G` per
    /// refinement sweep). Stays flat across cache hits.
    pub sims_run: u64,
    /// Brick decomposition searches run ([`BrickDecomp::search`]). Stays
    /// flat when a cosma job of an exact `(m, k, n)` repeats — the
    /// decomposition is memoized.
    pub brick_searches: u64,
}

/// What the cache remembers per shape class: the *decision* — which
/// algorithm and, for HSUMMA, which grouping. The panel width is NOT
/// cached: two sizes of the same class (say 24 and 32) need different
/// blocks to satisfy the tile-divisibility preconditions, so the block
/// is re-derived per job — a divisor search, not a simulator sweep.
#[derive(Clone, Copy, Debug)]
enum CachedChoice {
    Summa {
        pipelined: bool,
    },
    Hsumma {
        groups: GridShape,
        pipelined: bool,
    },
    Cannon,
    /// The COSMA brick schedule. Only the *decision* is cached: the
    /// `(a, b, c)` decomposition depends on the exact `(m, k, n)`, so
    /// materialization re-runs the (cheap) brick search per job.
    Cosma,
}

/// Plans jobs for one fixed grid, with a [`ShapeClass`]-keyed memo.
pub struct Planner {
    config: PlannerConfig,
    grid: GridShape,
    cache: HashMap<ShapeClass, CachedChoice>,
    /// Searched brick decompositions by *exact* `(m, k, n)` — unlike the
    /// choice cache, a decomposition is only valid for the extents it
    /// was searched for, so the key is not coarsened to a shape class.
    brick_cache: HashMap<(usize, usize, usize), BrickDecomp>,
    /// Scheduler-facing estimates (preferred rank count + modeled
    /// duration), memoized per shape class like the plan choice.
    estimate_cache: HashMap<ShapeClass, JobEstimate>,
    stats: PlannerStats,
}

/// What the scheduler asks the planner about a job before running it:
/// how many ranks it is worth, and how long the model thinks it takes
/// there. See [`Planner::estimate`].
#[derive(Clone, Copy, Debug)]
pub struct JobEstimate {
    /// Smallest rank count within [`RANK_TOLERANCE`] of the best
    /// predicted total — the job's perfect-scaling range endpoint
    /// (capped at the planner's grid size).
    pub ranks: usize,
    /// Predicted total seconds of the scoreboard winner at `ranks`, in
    /// *model* time (the configured platform's `(α, β, γ)`), not
    /// wall-clock — the scheduler's calibration maps between the two.
    pub model_secs: f64,
}

/// How much predicted slowdown the packing policy tolerates for running
/// a job on fewer ranks: a job is given the smallest rank count within
/// 10% of its best predicted total, freeing the rest of the pool for
/// concurrent jobs.
pub const RANK_TOLERANCE: f64 = 0.10;

/// A planning outcome plus its provenance.
#[derive(Clone, Copy, Debug)]
pub struct Planned {
    /// The executable plan.
    pub plan: PlannedAlgo,
    /// `true` when served from the cache without recomputation.
    pub cached: bool,
}

impl Planner {
    /// A planner for jobs executing on `grid`.
    pub fn new(grid: GridShape, config: PlannerConfig) -> Self {
        Planner {
            config,
            grid,
            cache: HashMap::new(),
            brick_cache: HashMap::new(),
            estimate_cache: HashMap::new(),
            stats: PlannerStats::default(),
        }
    }

    /// The grid this planner plans for.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Cache/sweep counters so far.
    pub fn stats(&self) -> PlannerStats {
        self.stats
    }

    /// Plans a square `n × n` multiply: [`Planner::plan_gemm`] with
    /// `m = k = n`, the historical entry point.
    pub fn plan_square(&mut self, n: usize) -> Planned {
        self.plan_gemm(n, n, n)
    }

    /// Plans a general `C(m×n) = A(m×k)·B(k×n)` multiply, consulting the
    /// cache first. Any positive extents are accepted: shapes the grid
    /// does not divide route straight to the brick schedule, which needs
    /// no divisibility at all.
    pub fn plan_gemm(&mut self, m: usize, k: usize, n: usize) -> Planned {
        if !self.grid_divides(m, k, n) {
            // Cosma is the only executable plan for this shape; no model
            // consultation or caching, just the decomposition search.
            return Planned {
                plan: self.materialize(CachedChoice::Cosma, m, k, n),
                cached: false,
            };
        }
        let key = ShapeClass::of_gemm(self.grid.size(), m, k, n);
        if let Some(&choice) = self.cache.get(&key) {
            self.stats.hits += 1;
            return Planned {
                plan: self.materialize(choice, m, k, n),
                cached: true,
            };
        }
        self.stats.misses += 1;
        let choice = self.compute_choice(m, k, n);
        self.cache.insert(key, choice);
        Planned {
            plan: self.materialize(choice, m, k, n),
            cached: false,
        }
    }

    /// Whether the grid algorithms' tile preconditions hold: `A`'s
    /// `m × k` and `B`'s `k × n` must block-checkerboard evenly (the
    /// shared dimension is cut both ways — see `rect::check_rect`).
    fn grid_divides(&self, m: usize, k: usize, n: usize) -> bool {
        m.is_multiple_of(self.grid.rows)
            && k.is_multiple_of(self.grid.cols)
            && k.is_multiple_of(self.grid.rows)
            && n.is_multiple_of(self.grid.cols)
    }

    /// The expensive half: model comparison plus (for HSUMMA) the
    /// simulator sweep. Runs once per shape class; only called for
    /// shapes the grid divides.
    fn compute_choice(&mut self, m: usize, k: usize, n: usize) -> CachedChoice {
        let p = self.grid.size();
        let square = m == n && k == n;
        // The shared-dimension tile extents: every grid algorithm's
        // panel width must divide these (for square shapes they equal
        // the n-tile extents, matching the historical behavior).
        let block = preferred_block(k / self.grid.rows, k / self.grid.cols);
        let params = ModelParams {
            alpha: self.config.platform.net.alpha,
            beta: self.config.platform.net.beta,
            gamma: self.config.platform.gamma,
        };
        let advice = advise_gemm(
            &params,
            self.config.bcast,
            m as f64,
            n as f64,
            k as f64,
            p as f64,
            block as f64,
        );
        // Path decision: does the modeled overlap win justify the
        // pipelined schedule for this shape class? The double-buffered
        // pivot pipelines are square-only, so rectangular shapes always
        // take the blocking collectives.
        let pipelined = square
            && match self.config.pipeline {
                PipelinePolicy::Auto => advice.overlap_win_fraction() > AUTO_MIN_WIN,
                PipelinePolicy::Blocking => false,
                PipelinePolicy::Pipelined => true,
            };
        // A forced pipelined path restricts the candidates to schedules
        // that *have* one: Cosma (like Cannon) is blocking-only, so the
        // operator's policy overrides the scoreboard with its best 2-D
        // pipelined candidate.
        let choice = match (advice.choice, self.config.pipeline) {
            (AlgoChoice::Cosma { .. }, PipelinePolicy::Pipelined) if square => {
                let (g, h) = advice.hsumma;
                if h.comm() < advice.summa.comm() {
                    AlgoChoice::Hsumma { g }
                } else {
                    AlgoChoice::Summa
                }
            }
            (c, _) => c,
        };
        match choice {
            AlgoChoice::Cosma { .. } => CachedChoice::Cosma,
            AlgoChoice::Cannon if square && self.grid.rows == self.grid.cols => {
                CachedChoice::Cannon
            }
            AlgoChoice::Summa | AlgoChoice::Cannon => CachedChoice::Summa { pipelined },
            AlgoChoice::Hsumma { g } => {
                // The simulator sweep prices the square schedule only;
                // rectangular shapes keep the analytic G.
                let g = if self.config.refine_with_sim && square {
                    self.refine_g(n, block)
                } else {
                    g as usize
                };
                match HierGrid::factor_groups(self.grid, g) {
                    Some(groups) => CachedChoice::Hsumma { groups, pipelined },
                    // No valid factorization of the advised G on this
                    // grid: fall back to the G = 1 degenerate (SUMMA).
                    None => CachedChoice::Summa { pipelined },
                }
            }
        }
    }

    /// The cheap half: turn a cached decision into an executable plan for
    /// this exact `(m, k, n)` — the panel width must divide this job's
    /// tiles, and the brick decomposition fits this job's cube.
    fn materialize(&mut self, choice: CachedChoice, m: usize, k: usize, n: usize) -> PlannedAlgo {
        let block = preferred_block(k / self.grid.rows, k / self.grid.cols);
        match choice {
            CachedChoice::Summa { pipelined } => {
                let cfg = SummaConfig {
                    block,
                    ..SummaConfig::default()
                };
                if pipelined {
                    PlannedAlgo::SummaPipelined(cfg)
                } else {
                    PlannedAlgo::Summa(cfg)
                }
            }
            CachedChoice::Hsumma { groups, pipelined } => {
                let cfg = HsummaConfig::uniform(groups, block);
                if pipelined {
                    PlannedAlgo::HsummaPipelined(cfg)
                } else {
                    PlannedAlgo::Hsumma(cfg)
                }
            }
            CachedChoice::Cannon => PlannedAlgo::Cannon {
                kernel: GemmKernel::Packed,
            },
            CachedChoice::Cosma => {
                // The decomposition search is the whole planning cost of
                // a cosma job; memoize it by exact extents so repeats of
                // the same shape pay a map lookup.
                let p = self.grid.size();
                let decomp = *self.brick_cache.entry((m, k, n)).or_insert_with(|| {
                    self.stats.brick_searches += 1;
                    BrickDecomp::search(p, m, n, k)
                });
                PlannedAlgo::Cosma(CosmaConfig::with_decomp(decomp))
            }
        }
    }

    /// The scheduler's pre-dispatch question, memoized per shape class:
    /// how many ranks is a `C(m×n) = A(m×k)·B(k×n)` job worth
    /// ([`hsumma_model::advise_ranks`] over power-of-two sub-pool sizes,
    /// tolerance [`RANK_TOLERANCE`]), and what total does the model
    /// predict at that count? Feasibility admission compares the
    /// calibrated prediction against the client's deadline; the packing
    /// policy uses `ranks` to size the job's sub-pool.
    pub fn estimate(&mut self, m: usize, k: usize, n: usize) -> JobEstimate {
        let key = ShapeClass::of_gemm(self.grid.size(), m, k, n);
        if let Some(&est) = self.estimate_cache.get(&key) {
            return est;
        }
        let params = ModelParams {
            alpha: self.config.platform.net.alpha,
            beta: self.config.platform.net.beta,
            gamma: self.config.platform.gamma,
        };
        let block = m.min(k).min(n).clamp(1, 32);
        let advice = advise_ranks(
            &params,
            self.config.bcast,
            m as f64,
            n as f64,
            k as f64,
            self.grid.size(),
            block as f64,
            RANK_TOLERANCE,
        );
        let model_secs = advice
            .curve
            .iter()
            .find(|pt| pt.ranks == advice.preferred)
            .expect("preferred rank count came from the curve")
            .total;
        let est = JobEstimate {
            ranks: advice.preferred,
            model_secs,
        };
        self.estimate_cache.insert(key, est);
        est
    }

    /// Plans a square `n × n` SpGEMM from the operands' sampled sparsity
    /// profiles: the nnz-aware scoreboard ([`advise_sparse`]) decides
    /// densify-and-SUMMA vs native 2-D SpGEMM by predicted *total* time
    /// (wire bytes `∝ nnz`, flops from the sampled row densities). When
    /// it chooses to densify, the ordinary dense planning pipeline
    /// (cache, simulator refinement) supplies the plan.
    ///
    /// The sparse decision itself is never cached — it is one closed-form
    /// evaluation per job, and unlike shape, *sparsity* varies freely
    /// between same-shaped jobs.
    pub fn plan_spgemm(
        &mut self,
        n: usize,
        a: &SparsityProfile,
        b: &SparsityProfile,
    ) -> SparsePlanned {
        let block = preferred_block(n / self.grid.rows, n / self.grid.cols);
        let params = ModelParams {
            alpha: self.config.platform.net.alpha,
            beta: self.config.platform.net.beta,
            gamma: self.config.platform.gamma,
        };
        let advice = advise_sparse(
            &params,
            n as f64,
            self.grid.size() as f64,
            block as f64,
            a,
            b,
        );
        let dense = matches!(advice.choice, SparseChoice::DenseGemm).then(|| self.plan_square(n));
        SparsePlanned {
            advice,
            block,
            dense,
        }
    }

    /// The pivot panel width an SDDMM job uses on this grid (SDDMM has no
    /// dense-vs-sparse decision to make — `S` never travels).
    pub fn sddmm_block(&self, n: usize) -> usize {
        preferred_block(n / self.grid.rows, n / self.grid.cols)
    }

    /// Pass 2: pick `G` by simulated communication time over the
    /// power-of-two candidates (the paper's Fig. 8 sweep). Priced on the
    /// record-and-replay engine: bit-identical reports to the threaded
    /// simulator (so identical decisions), but no thread spawning per
    /// candidate, which keeps the sweep a planner-budget call even on
    /// pools far past the thread-per-rank scale cap.
    fn refine_g(&mut self, n: usize, block: usize) -> usize {
        let gs = power_of_two_gs(self.grid.size());
        let sweep = sweep_groups_engine(
            SimEngine::Replay,
            &self.config.platform,
            self.grid,
            n,
            block,
            block,
            SimBcast::Binomial,
            SimBcast::Binomial,
            &gs,
        );
        self.stats.sims_run += sweep.len() as u64;
        best_by_comm(&sweep).g
    }
}

/// A sparse planning outcome: the scoreboard's verdict plus whatever the
/// execution path needs — the panel width for native SpGEMM, or the full
/// dense plan when densifying won.
#[derive(Clone, Copy, Debug)]
pub struct SparsePlanned {
    /// The scoreboard: choice plus both candidates' predicted costs.
    pub advice: SparseAdvice,
    /// Pivot panel width for the native SpGEMM schedule.
    pub block: usize,
    /// The dense plan, present exactly when the advice is to densify.
    pub dense: Option<Planned>,
}

/// Estimates a [`SparsityProfile`] for the planner by sampling up to
/// `max_samples` evenly-strided rows of `m` — the planner's view of an
/// operand is a handful of row nnz counts, never the full pattern.
///
/// # Panics
/// Panics if `m` has no rows or `max_samples` is zero.
pub fn sparsity_profile(m: &CsrMatrix, max_samples: usize) -> SparsityProfile {
    assert!(m.rows() > 0 && max_samples > 0, "nothing to sample");
    let stride = (m.rows() / max_samples).max(1);
    let samples: Vec<usize> = (0..m.rows())
        .step_by(stride)
        .map(|i| m.row_nnz(i))
        .collect();
    SparsityProfile::from_row_samples(m.rows() as f64, m.cols() as f64, &samples)
}

/// The largest panel width ≤ 32 dividing both tile extents — the planner
/// never proposes a block the algorithms' divisibility preconditions
/// would reject.
fn preferred_block(tile_rows: usize, tile_cols: usize) -> usize {
    (1..=tile_rows.min(tile_cols).min(32))
        .rev()
        .find(|&b| tile_rows.is_multiple_of(b) && tile_cols.is_multiple_of(b))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preferred_block_divides_both_extents() {
        assert_eq!(preferred_block(64, 64), 32);
        assert_eq!(preferred_block(48, 36), 12);
        assert_eq!(preferred_block(7, 7), 7);
        assert_eq!(preferred_block(3, 5), 1);
    }

    #[test]
    fn shape_class_buckets_by_power_of_two() {
        assert_eq!(ShapeClass::of(16, 256), ShapeClass::of(16, 129));
        assert_ne!(ShapeClass::of(16, 256), ShapeClass::of(16, 257));
        assert_ne!(ShapeClass::of(16, 256), ShapeClass::of(4, 256));
    }

    #[test]
    fn shape_class_distinguishes_every_extent() {
        // The memo key carries m, k and n independently: a tall-skinny
        // job must not collide with the square job of the same n.
        let square = ShapeClass::of_gemm(16, 256, 256, 256);
        assert_eq!(square, ShapeClass::of(16, 256));
        assert_ne!(square, ShapeClass::of_gemm(16, 1024, 256, 256));
        assert_ne!(square, ShapeClass::of_gemm(16, 256, 1024, 256));
        assert_ne!(square, ShapeClass::of_gemm(16, 256, 256, 1024));
    }

    #[test]
    fn second_same_shape_plan_is_a_cache_hit_with_no_new_sims() {
        let mut planner = Planner::new(GridShape::new(4, 4), PlannerConfig::default());
        let first = planner.plan_square(256);
        assert!(!first.cached);
        let after_first = planner.stats();
        assert_eq!(after_first.misses, 1);

        let second = planner.plan_square(256);
        assert!(second.cached);
        let after_second = planner.stats();
        assert_eq!(after_second.hits, 1);
        // The load-bearing claim: no additional simulator work.
        assert_eq!(after_second.sims_run, after_first.sims_run);
        assert_eq!(format!("{:?}", second.plan), format!("{:?}", first.plan));
    }

    #[test]
    fn different_shape_classes_plan_independently() {
        let mut planner = Planner::new(GridShape::new(2, 2), PlannerConfig::default());
        planner.plan_square(64);
        planner.plan_square(512);
        assert_eq!(planner.stats().misses, 2);
        assert_eq!(planner.stats().hits, 0);
    }

    #[test]
    fn plans_are_executable_on_the_grid() {
        // Whatever the planner picks, its block sizes must satisfy the
        // algorithms' divisibility preconditions.
        for (grid, n) in [
            (GridShape::new(2, 2), 16),
            (GridShape::new(4, 4), 64),
            (GridShape::new(2, 4), 32),
        ] {
            let mut planner = Planner::new(grid, PlannerConfig::default());
            let planned = planner.plan_square(n);
            let (th, tw) = (n / grid.rows, n / grid.cols);
            match planned.plan {
                PlannedAlgo::Summa(cfg) | PlannedAlgo::SummaPipelined(cfg) => {
                    assert_eq!(th % cfg.block, 0);
                    assert_eq!(tw % cfg.block, 0);
                }
                PlannedAlgo::Hsumma(cfg) | PlannedAlgo::HsummaPipelined(cfg) => {
                    assert_eq!(th % cfg.inner_block, 0);
                    assert_eq!(tw % cfg.inner_block, 0);
                    assert_eq!(grid.rows % cfg.groups.rows, 0);
                    assert_eq!(grid.cols % cfg.groups.cols, 0);
                }
                PlannedAlgo::Cannon { .. } => assert_eq!(grid.rows, grid.cols),
                PlannedAlgo::Cosma(cfg) => {
                    assert!(cfg.decomp.ranks() <= grid.size());
                    assert!(cfg.steps >= 1);
                }
            }
        }
    }

    #[test]
    fn non_divisible_shapes_plan_to_cosma_without_caching() {
        // 7 × 5 × 9 on a 2 × 2 grid: no grid algorithm can tile it, so
        // the planner must route to the brick schedule, and must do so
        // without polluting the shape-class cache.
        let mut planner = Planner::new(GridShape::new(2, 2), PlannerConfig::default());
        let planned = planner.plan_gemm(7, 9, 5);
        assert!(!planned.cached);
        assert!(
            matches!(planned.plan, PlannedAlgo::Cosma(_)),
            "got {}",
            planned.plan.describe()
        );
        let stats = planner.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // Same shape again: still uncached (the brick search is the
        // whole cost), still executable.
        assert!(!planner.plan_gemm(7, 9, 5).cached);
    }

    #[test]
    fn rectangular_divisible_shapes_are_planned_and_memoized() {
        // A grid-divisible rectangular job flows through the ordinary
        // model + cache pipeline.
        let grid = GridShape::new(2, 2);
        let mut planner = Planner::new(grid, PlannerConfig::default());
        let first = planner.plan_gemm(64, 32, 16);
        assert!(!first.cached);
        let second = planner.plan_gemm(64, 32, 16);
        assert!(second.cached);
        assert_eq!(format!("{:?}", second.plan), format!("{:?}", first.plan));
        // Rectangular shapes never take the square-only pipelined paths.
        assert_eq!(first.plan.gemm_path(), "blocking");
    }

    #[test]
    fn pipeline_policy_forces_the_path() {
        // Non-square grid so Cannon (which has no pipelined variant) is
        // out of the running and the forced policies can pin the path.
        for (policy, want) in [
            (PipelinePolicy::Blocking, "blocking"),
            (PipelinePolicy::Pipelined, "pipelined"),
        ] {
            let config = PlannerConfig {
                pipeline: policy,
                ..PlannerConfig::default()
            };
            let mut planner = Planner::new(GridShape::new(2, 4), config);
            assert_eq!(planner.plan_square(256).plan.gemm_path(), want);
        }
    }

    #[test]
    fn auto_policy_agrees_with_the_model_overlap_win() {
        // Auto's decision must be exactly the model's: pipeline iff the
        // predicted overlap hides more than the threshold fraction. The
        // equivalence applies to the plans that *have* a pipelined
        // variant — a Cosma or Cannon winner is blocking by
        // construction, whatever the model's overlap term says.
        let grid = GridShape::new(2, 4);
        let config = PlannerConfig::default();
        for n in [64usize, 256, 1024] {
            let params = hsumma_model::ModelParams {
                alpha: config.platform.net.alpha,
                beta: config.platform.net.beta,
                gamma: config.platform.gamma,
            };
            let block = preferred_block(n / grid.rows, n / grid.cols);
            let advice = hsumma_model::advise_square(
                &params,
                config.bcast,
                n as f64,
                grid.size() as f64,
                block as f64,
            );
            let mut planner = Planner::new(grid, config.clone());
            let plan = planner.plan_square(n).plan;
            if matches!(plan, PlannedAlgo::Cosma(_) | PlannedAlgo::Cannon { .. }) {
                assert_eq!(plan.gemm_path(), "blocking");
                continue;
            }
            assert_eq!(
                plan.gemm_path() == "pipelined",
                advice.overlap_win_fraction() > AUTO_MIN_WIN,
                "n={n}: plan {} vs modeled win {}",
                plan.describe(),
                advice.overlap_win_fraction()
            );
        }
    }

    #[test]
    fn sparsity_profile_samples_row_densities() {
        // Exact when every row is sampled.
        let m = hsumma_matrix::seeded_sparse(64, 64, 0.2, 9);
        let full = sparsity_profile(&m, 64);
        assert!((full.nnz() - m.nnz() as f64).abs() < 1e-9);
        // A strided sample is an estimate of the same quantity.
        let sampled = sparsity_profile(&m, 8);
        assert!((sampled.density() - full.density()).abs() < 0.1);
    }

    #[test]
    fn spgemm_plan_follows_the_scoreboard() {
        let mut planner = Planner::new(GridShape::new(2, 2), PlannerConfig::default());
        let n = 64;
        // Nearly empty operands: native SpGEMM must win, no dense plan.
        let lo = SparsityProfile::uniform(n as f64, n as f64, 0.01);
        let sp = planner.plan_spgemm(n, &lo, &lo);
        assert_eq!(sp.advice.choice, SparseChoice::SpGemm);
        assert!(sp.dense.is_none());
        assert_eq!(n / 2 % sp.block, 0, "block must divide the tile");
        // Fully dense operands: densify, carrying an executable plan.
        let hi = SparsityProfile::uniform(n as f64, n as f64, 1.0);
        let sp = planner.plan_spgemm(n, &hi, &hi);
        assert_eq!(sp.advice.choice, SparseChoice::DenseGemm);
        assert!(sp.dense.is_some());
    }

    #[test]
    fn repeated_cosma_shapes_search_the_brick_decomposition_once() {
        // 7 × 5 × 9 routes to cosma (nothing divides the 2 × 2 grid).
        // The decision is uncached by design, but the decomposition
        // search — the actual cost — must be memoized by exact extents.
        let mut planner = Planner::new(GridShape::new(2, 2), PlannerConfig::default());
        let first = planner.plan_gemm(7, 9, 5);
        assert_eq!(planner.stats().brick_searches, 1);
        let second = planner.plan_gemm(7, 9, 5);
        assert_eq!(planner.stats().brick_searches, 1, "second search memoized");
        assert_eq!(format!("{:?}", second.plan), format!("{:?}", first.plan));
        // A different exact shape is a different decomposition.
        planner.plan_gemm(7, 9, 10);
        assert_eq!(planner.stats().brick_searches, 2);
    }

    #[test]
    fn estimate_is_memoized_and_capped_at_the_grid() {
        let mut planner = Planner::new(GridShape::new(8, 8), PlannerConfig::default());
        let est = planner.estimate(128, 128, 128);
        assert!(est.ranks >= 1 && est.ranks <= 64);
        assert!(est.ranks.is_power_of_two());
        assert!(est.model_secs > 0.0);
        let again = planner.estimate(128, 128, 128);
        assert_eq!(est.ranks, again.ranks);
        assert_eq!(est.model_secs, again.model_secs);
    }

    #[test]
    fn disabling_refinement_runs_no_sims() {
        let config = PlannerConfig {
            refine_with_sim: false,
            ..PlannerConfig::default()
        };
        let mut planner = Planner::new(GridShape::new(4, 4), config);
        planner.plan_square(256);
        assert_eq!(planner.stats().sims_run, 0);
    }
}
