//! The GEMM job service: bounded admission, FIFO scheduling, pooled
//! execution.
//!
//! One [`GemmServer`] owns three things:
//!
//! * a **[`RankPool`]** of `p` worker threads, created once at server
//!   start — jobs pay no thread spawn/teardown (the reason the pooled
//!   throughput benchmark beats back-to-back `Runtime::run` calls);
//! * a **bounded FIFO queue** guarding admission. `submit` never blocks:
//!   a full queue rejects with [`SubmitError::QueueFull`] carrying the
//!   numbers (backpressure is the client's signal to shed or retry);
//! * a **scheduler thread** that drains the queue in order: plan (via
//!   the memoizing [`Planner`]) → scatter → run the SPMD plan on the
//!   pool → gather → complete the client's [`JobHandle`].
//!
//! Failure containment mirrors the pool's: a job whose plan panics on a
//! rank fails *that job* ([`JobError::Execution`]) and the server keeps
//! serving. Shutdown is graceful — queued jobs run to completion before
//! the scheduler exits (`shutdown()`, also invoked by `Drop`).

use crate::job::{
    JobCell, JobError, JobHandle, JobOutcome, JobOutput, JobReport, JobSpec, PlanHint, SubmitError,
};
use crate::planner::{Planned, Planner, PlannerConfig, PlannerStats};
use hsumma_core::run_planned;
use hsumma_matrix::{BlockDist, GridShape, Matrix};
use hsumma_runtime::{CommStats, JobOptions, PoolRun, RankPool, RuntimeError};
use hsumma_trace::{primary_comm_error, CommError, CommErrorKind, Tracer};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Processor grid; the pool has `grid.size()` ranks.
    pub grid: GridShape,
    /// Admission queue bound (jobs waiting, excluding the running one).
    pub queue_capacity: usize,
    /// Record a per-job [`hsumma_trace::Trace`] into every report.
    pub trace_jobs: bool,
    /// Planner configuration (cost model, simulator, refinement).
    pub planner: PlannerConfig,
}

impl ServerConfig {
    /// Defaults: queue of 32, no tracing, default planner.
    pub fn new(grid: GridShape) -> Self {
        ServerConfig {
            grid,
            queue_capacity: 32,
            trace_jobs: false,
            planner: PlannerConfig::default(),
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    a: Matrix,
    b: Matrix,
    cell: Arc<JobCell>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    /// Jobs submitted (admitted) so far; also the next job id.
    submitted: u64,
    /// Submissions refused because the queue was full.
    rejected: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the scheduler: work available or shutdown requested.
    cv: Condvar,
}

/// Aggregate service counters (see also [`GemmServer::planner_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs admitted to the queue since start.
    pub submitted: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Jobs currently waiting (excludes the running job).
    pub queued: usize,
}

/// A persistent GEMM job service over a pooled rank runtime. See the
/// [module docs](self).
pub struct GemmServer {
    shared: Arc<Shared>,
    planner: Arc<Mutex<Planner>>,
    scheduler: Option<JoinHandle<()>>,
    grid: GridShape,
    capacity: usize,
}

impl GemmServer {
    /// Starts the service: spawns the rank pool (surfacing
    /// [`RuntimeError::Spawn`] instead of aborting) and the scheduler.
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0` (a queue that can hold nothing
    /// rejects everything).
    pub fn new(config: ServerConfig) -> Result<Self, RuntimeError> {
        assert!(config.queue_capacity > 0, "queue capacity must be ≥ 1");
        let pool = RankPool::new(config.grid.size())?;
        let planner = Arc::new(Mutex::new(Planner::new(
            config.grid,
            config.planner.clone(),
        )));
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
                submitted: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            let planner = Arc::clone(&planner);
            let grid = config.grid;
            let trace_jobs = config.trace_jobs;
            std::thread::Builder::new()
                .name("gemm-scheduler".into())
                .spawn(move || scheduler_loop(shared, planner, pool, grid, trace_jobs))
                .map_err(|source| RuntimeError::Spawn {
                    rank: config.grid.size(),
                    source,
                })?
        };
        Ok(GemmServer {
            shared,
            planner,
            scheduler: Some(scheduler),
            grid: config.grid,
            capacity: config.queue_capacity,
        })
    }

    /// The service's processor grid.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Submits one job. Non-blocking admission control: the job is either
    /// queued (returning a [`JobHandle`]) or refused with the reason.
    ///
    /// `a` and `b` must match the spec's dimensions; the current service
    /// additionally requires square shapes divisible by the grid (see
    /// [`JobSpec`]).
    pub fn submit(&self, spec: JobSpec, a: Matrix, b: Matrix) -> Result<JobHandle, SubmitError> {
        self.validate(&spec, &a, &b)?;
        let mut st = self.shared.state.lock().expect("queue lock");
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if st.jobs.len() >= self.capacity {
            st.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                queued: st.jobs.len(),
            });
        }
        let id = st.submitted;
        st.submitted += 1;
        let cell = JobCell::new();
        st.jobs.push_back(QueuedJob {
            id,
            spec,
            a,
            b,
            cell: Arc::clone(&cell),
        });
        drop(st);
        self.shared.cv.notify_all();
        Ok(JobHandle { id, cell })
    }

    /// Admission validation — every rejection names its reason.
    fn validate(&self, spec: &JobSpec, a: &Matrix, b: &Matrix) -> Result<(), SubmitError> {
        let invalid = |reason: String| Err(SubmitError::Invalid(reason));
        if spec.n == 0 || spec.m == 0 || spec.k == 0 {
            return invalid("dimensions must be positive".into());
        }
        if spec.m != spec.n || spec.k != spec.n {
            return invalid(format!(
                "only square jobs are served (m = k = n); got m={}, k={}, n={}",
                spec.m, spec.k, spec.n
            ));
        }
        if a.shape() != (spec.m, spec.k) {
            return invalid(format!(
                "A is {:?}, spec says {:?}",
                a.shape(),
                (spec.m, spec.k)
            ));
        }
        if b.shape() != (spec.k, spec.n) {
            return invalid(format!(
                "B is {:?}, spec says {:?}",
                b.shape(),
                (spec.k, spec.n)
            ));
        }
        if !spec.n.is_multiple_of(self.grid.rows) || !spec.n.is_multiple_of(self.grid.cols) {
            return invalid(format!(
                "n={} not divisible by the {}x{} grid",
                spec.n, self.grid.rows, self.grid.cols
            ));
        }
        Ok(())
    }

    /// Queue and admission counters at this instant.
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.state.lock().expect("queue lock");
        ServerStats {
            submitted: st.submitted,
            rejected: st.rejected,
            queued: st.jobs.len(),
        }
    }

    /// The planner's cache/sweep counters (see [`PlannerStats`]).
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.lock().expect("planner lock").stats()
    }

    /// Graceful shutdown: stops admitting, runs every queued job to
    /// completion, then joins the scheduler and the rank pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("queue lock");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GemmServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The scheduler: FIFO over the queue until shutdown *and* empty.
fn scheduler_loop(
    shared: Arc<Shared>,
    planner: Arc<Mutex<Planner>>,
    mut pool: RankPool,
    grid: GridShape,
    trace_jobs: bool,
) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("queue lock");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).expect("queue lock");
            }
        };
        job.cell.set_running();
        let outcome = execute(&planner, &mut pool, grid, trace_jobs, &job);
        job.cell.finish(outcome);
    }
}

/// Plan → scatter → pooled SPMD run → gather, with per-job accounting.
fn execute(
    planner: &Arc<Mutex<Planner>>,
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let planned = match job.spec.hint {
        PlanHint::Auto => planner.lock().expect("planner lock").plan_square(n),
        PlanHint::Force(plan) => Planned {
            plan,
            cached: false,
        },
    };
    let started = Instant::now();

    let dist = BlockDist::new(grid, n, n);
    let a_tiles = Arc::new(dist.scatter(&job.a));
    let b_tiles = Arc::new(dist.scatter(&job.b));
    let plan = planned.plan;
    let tracer = if trace_jobs {
        Tracer::new(grid.size())
    } else {
        Tracer::disabled()
    };
    let mut opts = JobOptions::default();
    if let Some(d) = job.spec.deadline {
        opts = opts.with_deadline(d);
    }
    if let Some(f) = &job.spec.faults {
        opts = opts.with_faults(Arc::clone(f));
    }
    let run = pool.run_opts(&tracer, &opts, move |comm| {
        let at = a_tiles[comm.rank()].clone();
        let bt = b_tiles[comm.rank()].clone();
        run_planned(comm, grid, n, &at, &bt, &plan)
    });
    let PoolRun { results, stats } = match run {
        Ok(run) => run,
        Err(e) => return Err(JobError::Execution(e.to_string())),
    };
    let report = |outcome: JobOutcome, stats: Vec<CommStats>| {
        let merged = stats
            .iter()
            .fold(CommStats::default(), |acc, s| acc.merge(s));
        JobReport {
            job_id: job.id,
            plan,
            plan_desc: plan.describe(),
            plan_cached: planned.cached,
            wall: started.elapsed(),
            timeouts: merged.timeouts,
            cancelled: merged.cancelled,
            faults_injected: merged.faults_injected,
            stats,
            trace: trace_jobs.then(|| tracer.collect()),
            outcome,
        }
    };
    let errors: Vec<&CommError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    match primary_comm_error(errors) {
        None => {
            let tiles: Vec<Matrix> = results
                .into_iter()
                .map(|r| r.expect("no errors means every rank produced a tile"))
                .collect();
            let c = dist.gather(&tiles);
            Ok(JobOutput {
                c,
                report: report(JobOutcome::Completed, stats),
            })
        }
        Some(primary) => {
            let detail = primary.to_string();
            match primary.kind() {
                CommErrorKind::Timeout => Err(JobError::Timeout {
                    detail,
                    report: Box::new(report(JobOutcome::TimedOut, stats)),
                }),
                CommErrorKind::Cancelled => Err(JobError::Cancelled {
                    detail,
                    report: Box::new(report(JobOutcome::Cancelled, stats)),
                }),
                // A dead or poisoned peer without any timeout is an
                // execution failure (e.g. a kill-rank fault with no
                // deadline racing ahead of the peers' own timeouts).
                CommErrorKind::PeerDead | CommErrorKind::Shutdown => {
                    Err(JobError::Execution(detail))
                }
            }
        }
    }
}
