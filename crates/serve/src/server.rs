//! The GEMM job service: feasibility admission, EDF scheduling, gang
//! execution on carved sub-pools.
//!
//! One [`GemmServer`] owns four things:
//!
//! * a **[`RankPool`]** of `p` worker threads, created once at server
//!   start — jobs pay no thread spawn/teardown (the reason the pooled
//!   throughput benchmark beats back-to-back `Runtime::run` calls);
//! * a **bounded admission gate**. `submit` never blocks: a full queue
//!   rejects with [`SubmitError::QueueFull`], and under
//!   [`Admission::Feasible`] a deadline the calibrated model proves
//!   unmeetable rejects with [`SubmitError::Infeasible`] naming the
//!   predicted-vs-deadline margin;
//! * a **[`ReadyQueue`]** ordering admitted jobs: earliest-deadline-
//!   first for the deadline class, an aging FIFO for deadline-less
//!   background jobs (see `crate::sched`). The legacy
//!   [`SchedPolicy::Fifo`] mode keeps strict submission order instead;
//! * a **scheduler thread** dispatching in *waves*: the queue head gets
//!   a sub-pool sized by the planner's strong-scaling curve, leftover
//!   ranks are backfilled with the next queued jobs that fit, the pool
//!   is carved ([`RankPool::carve`]) and every job of the wave runs
//!   concurrently — each on its own grid, with the full per-job
//!   deadline/fault/stats/trace machinery. A job alone in the queue
//!   still gets the whole pool.
//!
//! The queue carries three workloads through one pipeline: dense GEMM
//! ([`GemmServer::submit`]), sparse SpGEMM ([`GemmServer::submit_spgemm`]
//! — routed by the nnz-aware scoreboard to either densify-and-SUMMA or
//! the native 2-D CSR schedule) and SDDMM
//! ([`GemmServer::submit_sddmm`]). Deadlines, fault injection, per-job
//! stats demarcation and tracing apply identically to all three — they
//! live in the pooled-run tail every workload shares. Planner-routed
//! jobs gang regardless of workload: dense jobs are sized by the dense
//! strong-scaling curve, sparse jobs by the nnz-aware sweep over their
//! sampled profiles (clamped to sub-grids the CSR scatter can tile).
//! Only forced-plan jobs always run on the whole pool — their plans are
//! bound to the configured grid.
//!
//! Failure containment mirrors the pool's: a job whose plan panics on a
//! rank fails *that job* ([`JobError::Execution`]) and the server keeps
//! serving. Shutdown is graceful — queued jobs run to completion before
//! the scheduler exits (`shutdown()`, also invoked by `Drop`).

use crate::job::{
    JobCell, JobError, JobHandle, JobOutcome, JobOutput, JobReport, JobSpec, PlanHint, Product,
    ServePlan, SubmitError, Workload,
};
use crate::planner::{
    sparsity_profile, Planned, Planner, PlannerConfig, PlannerStats, ShapeClass, RANK_TOLERANCE,
};
use crate::sched::{subgrid, Calibration, ReadyQueue, AGING_BOUND};
use hsumma_core::{run_planned_gemm, Distribution};
use hsumma_matrix::sparse::CsrMatrix;
use hsumma_matrix::{BlockDist, GridShape, Matrix};
use hsumma_model::{advise_sddmm_ranks, advise_spgemm_ranks, ModelParams};
use hsumma_runtime::{Comm, CommStats, JobOptions, PoolExec, PoolRun, RankPool, RuntimeError};
use hsumma_sparse::{gather_csr, scatter_csr, sddmm_2d, spgemm_2d, SparseConfig};
use hsumma_trace::{primary_comm_error, CommError, CommErrorKind, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Rows sampled per CSR operand when estimating a sparsity profile for
/// the planner.
const PROFILE_SAMPLES: usize = 64;

/// How the scheduler orders and places admitted jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict submission order, one job at a time on the whole pool —
    /// the pre-scheduler behaviour, kept as the benchmark baseline.
    Fifo,
    /// Earliest-deadline-first with priority classes and bounded aging,
    /// gang-scheduled onto carved sub-pools sized by the planner's
    /// strong-scaling curve. The default.
    EdfGang,
}

/// Whether submit-time deadline feasibility is enforced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admit any well-formed job (pre-scheduler behaviour).
    Open,
    /// Reject a deadline the calibrated model proves unmeetable —
    /// [`SubmitError::Infeasible`] names the margin. Applies to jobs the
    /// planner can price (dense GEMM under [`PlanHint::Auto`]); sparse
    /// and forced-plan jobs are admitted as before. The default.
    Feasible,
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Processor grid; the pool has `grid.size()` ranks.
    pub grid: GridShape,
    /// Admission queue bound (jobs waiting, excluding running ones).
    pub queue_capacity: usize,
    /// Record a per-job [`hsumma_trace::Trace`] into every report.
    pub trace_jobs: bool,
    /// Planner configuration (cost model, simulator, refinement).
    pub planner: PlannerConfig,
    /// Dispatch order and placement policy.
    pub sched: SchedPolicy,
    /// Submit-time deadline feasibility.
    pub admission: Admission,
}

impl ServerConfig {
    /// Defaults: queue of 32, no tracing, default planner, EDF + gang
    /// scheduling with feasibility admission.
    pub fn new(grid: GridShape) -> Self {
        ServerConfig {
            grid,
            queue_capacity: 32,
            trace_jobs: false,
            planner: PlannerConfig::default(),
            sched: SchedPolicy::EdfGang,
            admission: Admission::Feasible,
        }
    }
}

/// A queued job's operands, matching its spec's [`Workload`].
enum JobOperands {
    Dense { a: Matrix, b: Matrix },
    SpGemm { a: CsrMatrix, b: CsrMatrix },
    Sddmm { s: CsrMatrix, a: Matrix, b: Matrix },
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    operands: JobOperands,
    cell: Arc<JobCell>,
    /// Sub-pool size the packing policy will give this job — the
    /// planner's preferred rank count for plannable dense jobs, the
    /// whole pool otherwise.
    ranks: usize,
    /// The planner's modeled duration at `ranks`, in model seconds;
    /// `0.0` when the job is not plannable (sparse / forced plans), in
    /// which case it contributes nothing to the feasibility backlog.
    model_secs: f64,
    /// The shape class the job was priced under, so its completion
    /// feeds that class's calibration cell; `None` for jobs the model
    /// cannot price.
    class: Option<ShapeClass>,
}

struct QueueState {
    ready: ReadyQueue<QueuedJob>,
    shutdown: bool,
    /// Jobs submitted (admitted) so far; also the next job id.
    submitted: u64,
    /// Submissions refused because the queue was full.
    rejected: u64,
    /// Submissions refused by feasibility admission.
    infeasible: u64,
    /// Dispatch waves that ran more than one job concurrently.
    gangs: u64,
    /// Jobs that ran on carved sub-pools (members of those waves).
    gang_jobs: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the scheduler: work available or shutdown requested.
    cv: Condvar,
}

/// The per-grid planner registry. The whole-pool grid's planner exists
/// from server start; gang scheduling lazily adds one planner per
/// sub-pool grid it actually uses, each with its own shape-class cache.
struct Planners {
    config: PlannerConfig,
    map: Mutex<HashMap<GridShape, Planner>>,
}

impl Planners {
    fn new(whole: GridShape, config: PlannerConfig) -> Self {
        let mut map = HashMap::new();
        map.insert(whole, Planner::new(whole, config.clone()));
        Planners {
            config,
            map: Mutex::new(map),
        }
    }

    /// Runs `f` with the planner for `grid`, creating it on first use.
    fn with<R>(&self, grid: GridShape, f: impl FnOnce(&mut Planner) -> R) -> R {
        let mut map = self.map.lock().expect("planner lock");
        let planner = map
            .entry(grid)
            .or_insert_with(|| Planner::new(grid, self.config.clone()));
        f(planner)
    }
}

/// Aggregate service counters (see also [`GemmServer::planner_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs admitted to the queue since start.
    pub submitted: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Submissions rejected by feasibility admission
    /// ([`SubmitError::Infeasible`]).
    pub infeasible: u64,
    /// Jobs currently waiting (excludes running jobs).
    pub queued: usize,
    /// Dispatch waves that ran more than one job concurrently on carved
    /// sub-pools.
    pub gangs: u64,
    /// Jobs executed as members of those concurrent waves.
    pub gang_jobs: u64,
}

/// A persistent GEMM job service over a pooled rank runtime. See the
/// [module docs](self).
pub struct GemmServer {
    shared: Arc<Shared>,
    planners: Arc<Planners>,
    calibration: Arc<Mutex<Calibration>>,
    scheduler: Option<JoinHandle<()>>,
    grid: GridShape,
    capacity: usize,
    admission: Admission,
    sched: SchedPolicy,
}

impl GemmServer {
    /// Starts the service: spawns the rank pool (surfacing
    /// [`RuntimeError::Spawn`] instead of aborting) and the scheduler.
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0` (a queue that can hold nothing
    /// rejects everything).
    pub fn new(config: ServerConfig) -> Result<Self, RuntimeError> {
        assert!(config.queue_capacity > 0, "queue capacity must be ≥ 1");
        let pool = RankPool::new(config.grid.size())?;
        let planners = Arc::new(Planners::new(config.grid, config.planner.clone()));
        let calibration = Arc::new(Mutex::new(Calibration::new()));
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                ready: ReadyQueue::new(AGING_BOUND),
                shutdown: false,
                submitted: 0,
                rejected: 0,
                infeasible: 0,
                gangs: 0,
                gang_jobs: 0,
            }),
            cv: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            let planners = Arc::clone(&planners);
            let calibration = Arc::clone(&calibration);
            let grid = config.grid;
            let trace_jobs = config.trace_jobs;
            let sched = config.sched;
            std::thread::Builder::new()
                .name("gemm-scheduler".into())
                .spawn(move || {
                    scheduler_loop(shared, planners, calibration, pool, grid, trace_jobs, sched)
                })
                .map_err(|source| RuntimeError::Spawn {
                    rank: config.grid.size(),
                    source,
                })?
        };
        Ok(GemmServer {
            shared,
            planners,
            calibration,
            scheduler: Some(scheduler),
            grid: config.grid,
            capacity: config.queue_capacity,
            admission: config.admission,
            sched: config.sched,
        })
    }

    /// The service's processor grid.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Submits one dense GEMM job. Non-blocking admission control: the
    /// job is either queued (returning a [`JobHandle`]) or refused with
    /// the reason.
    ///
    /// `a` and `b` must match the spec's dimensions. Any positive
    /// `(m, k, n)` is served: shapes the grid cannot tile run the brick
    /// schedule, which needs no divisibility (see [`JobSpec`]).
    pub fn submit(&self, spec: JobSpec, a: Matrix, b: Matrix) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::DenseGemm)?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::Dense { a, b })
    }

    /// Submits one sparse × sparse (SpGEMM) job; the product is CSR.
    /// The planner samples both operands' row densities and routes the
    /// job — densify-and-SUMMA or native 2-D SpGEMM — by predicted total
    /// time. A [`PlanHint::Force`] hint forces the densified path with
    /// exactly that dense plan.
    pub fn submit_spgemm(
        &self,
        spec: JobSpec,
        a: CsrMatrix,
        b: CsrMatrix,
    ) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::SpGemm)?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::SpGemm { a, b })
    }

    /// Submits one SDDMM job `C = S ⊙ (A·B)`: sparse sample matrix `S`,
    /// dense operands; the product is CSR with exactly `S`'s pattern.
    pub fn submit_sddmm(
        &self,
        spec: JobSpec,
        s: CsrMatrix,
        a: Matrix,
        b: Matrix,
    ) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::Sddmm)?;
        self.validate_shape("S", s.shape(), (spec.m, spec.n))?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::Sddmm { s, a, b })
    }

    /// Shared admission tail: queue bound, feasibility, id assignment,
    /// handle.
    fn admit(&self, spec: JobSpec, operands: JobOperands) -> Result<JobHandle, SubmitError> {
        // Price the job before taking the queue lock: the planner has
        // its own lock, and the estimate is memoized per shape class.
        let estimate = match (spec.workload, &spec.hint) {
            (Workload::DenseGemm, PlanHint::Auto) => Some(
                self.planners
                    .with(self.grid, |p| p.estimate(spec.m, spec.k, spec.n)),
            ),
            _ => None,
        };
        let class = estimate
            .is_some()
            .then(|| ShapeClass::of_gemm(self.grid.size(), spec.m, spec.k, spec.n));
        // Sparse jobs gang too: the nnz-aware strong-scaling sweep sizes
        // their sub-pool; anything else unpriceable keeps the whole pool.
        let ranks = match estimate {
            Some(e) => e.ranks,
            None => sparse_ranks(&self.planners.config, self.grid.size(), &spec, &operands)
                .unwrap_or(self.grid.size()),
        };
        let now = Instant::now();
        let mut st = self.shared.state.lock().expect("queue lock");
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if st.ready.len() >= self.capacity {
            st.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                queued: st.ready.len(),
            });
        }
        if self.admission == Admission::Feasible {
            if let (Some(est), Some(deadline)) = (estimate, spec.deadline) {
                // Feasibility bound: the job's own calibrated duration
                // plus the deadline-class work queued ahead of it. With
                // an empty queue this reduces to the invariant the tests
                // pin: admitted ⇒ calibrated(model) ≤ deadline.
                let calibration = self.calibration.lock().expect("calibration lock");
                let predicted = calibration.wall_secs(class, est.model_secs)
                    + backlog_ahead(&st.ready, &calibration, now + deadline, self.grid.size());
                drop(calibration);
                if predicted > deadline.as_secs_f64() {
                    st.infeasible += 1;
                    return Err(SubmitError::Infeasible {
                        predicted: Duration::from_secs_f64(predicted),
                        deadline,
                    });
                }
            }
        }
        let id = st.submitted;
        st.submitted += 1;
        let cell = JobCell::new();
        let job = QueuedJob {
            id,
            cell: Arc::clone(&cell),
            ranks,
            model_secs: estimate.map_or(0.0, |e| e.model_secs),
            class,
            operands,
            spec,
        };
        match (self.sched, job.spec.deadline) {
            // FIFO keeps strict submission order: every job goes to the
            // background lane, where order is always submission order.
            (SchedPolicy::EdfGang, Some(d)) => st.ready.push_deadline(now + d, job),
            _ => st.ready.push_background(now, job),
        }
        drop(st);
        self.shared.cv.notify_all();
        Ok(JobHandle { id, cell })
    }

    /// Spec-level admission validation — every rejection names its
    /// reason. `expected` is the workload implied by the entry point.
    ///
    /// Dense GEMM accepts any positive `(m, k, n)`: the planner routes
    /// shapes the grid cannot tile to the brick schedule. The sparse
    /// workloads' CSR scatter/gather still assumes square grid-divisible
    /// operands, so they keep the stricter contract.
    fn validate_spec(&self, spec: &JobSpec, expected: Workload) -> Result<(), SubmitError> {
        let invalid = |reason: String| Err(SubmitError::Invalid(reason));
        if spec.workload != expected {
            return invalid(format!(
                "spec workload is {:?} but the submission entry point serves {:?}",
                spec.workload, expected
            ));
        }
        if spec.n == 0 || spec.m == 0 || spec.k == 0 {
            return invalid("dimensions must be positive".into());
        }
        if expected == Workload::DenseGemm {
            return Ok(());
        }
        if spec.m != spec.n || spec.k != spec.n {
            return invalid(format!(
                "sparse workloads are served square (m = k = n); got m={}, k={}, n={}",
                spec.m, spec.k, spec.n
            ));
        }
        if !spec.n.is_multiple_of(self.grid.rows) || !spec.n.is_multiple_of(self.grid.cols) {
            return invalid(format!(
                "n={} not divisible by the {}x{} grid",
                spec.n, self.grid.rows, self.grid.cols
            ));
        }
        Ok(())
    }

    /// One operand's shape against the spec's.
    fn validate_shape(
        &self,
        name: &str,
        got: (usize, usize),
        want: (usize, usize),
    ) -> Result<(), SubmitError> {
        if got != want {
            return Err(SubmitError::Invalid(format!(
                "{name} is {got:?}, spec says {want:?}"
            )));
        }
        Ok(())
    }

    /// Queue and admission counters at this instant.
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.state.lock().expect("queue lock");
        ServerStats {
            submitted: st.submitted,
            rejected: st.rejected,
            infeasible: st.infeasible,
            queued: st.ready.len(),
            gangs: st.gangs,
            gang_jobs: st.gang_jobs,
        }
    }

    /// The whole-pool planner's cache/sweep counters (see
    /// [`PlannerStats`]). Sub-pool grids' planners are created lazily by
    /// gang scheduling and keep their own counters.
    pub fn planner_stats(&self) -> PlannerStats {
        self.planners.with(self.grid, |p| p.stats())
    }

    /// The scheduler's current *global* model-to-wall calibration ratio
    /// (`wall / model`, EWMA over completed plannable jobs; `1.0` until
    /// the first one). Feasibility admission resolves per shape class
    /// where a class has completions — this is the fallback ratio new
    /// classes start from (see [`Calibration`]).
    pub fn calibration_ratio(&self) -> f64 {
        self.calibration.lock().expect("calibration lock").ratio()
    }

    /// Graceful shutdown: stops admitting, runs every queued job to
    /// completion, then joins the scheduler and the rank pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("queue lock");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GemmServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The sub-pool size a planner-routed sparse job is worth: the
/// nnz-aware strong-scaling sweep ([`advise_spgemm_ranks`] /
/// [`advise_sddmm_ranks`] over sampled operand profiles, tolerance
/// [`RANK_TOLERANCE`]), clamped down to a power of two whose
/// near-square [`subgrid`] divides `n` — the CSR scatter's contract.
/// `r = 1` always qualifies (a 1 × 1 grid tiles anything), so the clamp
/// terminates. `None` for dense operands or a forced plan (forced plans
/// are bound to the configured grid and keep the whole pool).
fn sparse_ranks(
    config: &PlannerConfig,
    p_max: usize,
    spec: &JobSpec,
    operands: &JobOperands,
) -> Option<usize> {
    if !matches!(spec.hint, PlanHint::Auto) {
        return None;
    }
    let params = ModelParams {
        alpha: config.platform.net.alpha,
        beta: config.platform.net.beta,
        gamma: config.platform.gamma,
    };
    let n = spec.n as f64;
    let block = spec.n.clamp(1, 32) as f64;
    let advice = match operands {
        JobOperands::Dense { .. } => return None,
        JobOperands::SpGemm { a, b } => {
            let pa = sparsity_profile(a, PROFILE_SAMPLES);
            let pb = sparsity_profile(b, PROFILE_SAMPLES);
            advise_spgemm_ranks(&params, n, p_max, block, &pa, &pb, RANK_TOLERANCE)
        }
        JobOperands::Sddmm { s, .. } => {
            let ps = sparsity_profile(s, PROFILE_SAMPLES);
            advise_sddmm_ranks(&params, n, p_max, block, &ps, RANK_TOLERANCE)
        }
    };
    let mut r = advice.preferred;
    while r > 1 {
        let g = subgrid(r);
        if spec.n.is_multiple_of(g.rows) && spec.n.is_multiple_of(g.cols) {
            break;
        }
        r /= 2;
    }
    Some(r)
}

/// Rank-seconds of deadline-class work queued ahead of `deadline_at`,
/// normalized by the pool width: under EDF every queued job with an
/// earlier deadline runs first, so its calibrated duration × its rank
/// share delays the candidate. Jobs the model cannot price
/// (`model_secs == 0`) contribute nothing — the bound stays a *provable*
/// under-estimate, so a rejection is always justified.
fn backlog_ahead(
    ready: &ReadyQueue<QueuedJob>,
    calibration: &Calibration,
    deadline_at: Instant,
    p: usize,
) -> f64 {
    let rank_seconds: f64 = ready
        .deadline_iter()
        .take_while(|(d, _)| *d <= deadline_at)
        .map(|(_, j)| calibration.wall_secs(j.class, j.model_secs) * j.ranks as f64)
        .sum();
    rank_seconds / p as f64
}

/// One dispatch wave: the popped head plus any backfilled jobs, with
/// the sub-pool size each will get.
struct Wave {
    jobs: Vec<QueuedJob>,
}

/// The scheduler: waves until shutdown *and* empty.
fn scheduler_loop(
    shared: Arc<Shared>,
    planners: Arc<Planners>,
    calibration: Arc<Mutex<Calibration>>,
    mut pool: RankPool,
    grid: GridShape,
    trace_jobs: bool,
    sched: SchedPolicy,
) {
    let p = grid.size();
    loop {
        let wave = {
            let mut st = shared.state.lock().expect("queue lock");
            let wave = loop {
                let now = Instant::now();
                if let Some((_, head)) = st.ready.pop(now) {
                    break collect_wave(&mut st, head, now, p, sched);
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).expect("queue lock");
            };
            if wave.jobs.len() > 1 {
                st.gangs += 1;
                st.gang_jobs += wave.jobs.len() as u64;
            }
            wave
        };
        run_wave(wave, &planners, &calibration, &mut pool, grid, trace_jobs);
    }
}

/// Packs one wave under the queue lock: the head claims its preferred
/// rank count, then the leftover ranks are backfilled with the
/// highest-priority queued jobs that fit. A head that wants the whole
/// pool — or a queue with nothing else that fits — yields a singleton
/// wave, which runs on the whole pool.
fn collect_wave(
    st: &mut QueueState,
    head: QueuedJob,
    now: Instant,
    p: usize,
    sched: SchedPolicy,
) -> Wave {
    let mut jobs = vec![head];
    if sched == SchedPolicy::EdfGang {
        let mut remaining = p.saturating_sub(jobs[0].ranks);
        while remaining > 0 {
            match st.ready.pop_fitting(now, |j| j.ranks <= remaining) {
                Some((_, job)) => {
                    remaining -= job.ranks;
                    jobs.push(job);
                }
                None => break,
            }
        }
    }
    Wave { jobs }
}

/// Executes one wave: a singleton runs on the whole pool (a lone job
/// has no reason to leave ranks idle); a gang carves the pool and runs
/// every member concurrently, one dispatcher thread per sub-pool.
fn run_wave(
    mut wave: Wave,
    planners: &Planners,
    calibration: &Mutex<Calibration>,
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
) {
    if wave.jobs.len() == 1 {
        let job = wave.jobs.pop().expect("singleton wave");
        finish_job(job, planners, calibration, pool, grid, trace_jobs);
        return;
    }
    let sizes: Vec<usize> = wave.jobs.iter().map(|j| j.ranks).collect();
    let subs = pool.carve(&sizes);
    std::thread::scope(|scope| {
        for (mut sub, job) in subs.into_iter().zip(wave.jobs.drain(..)) {
            scope.spawn(move || {
                let sub_grid = subgrid(sub.size());
                finish_job(job, planners, calibration, &mut sub, sub_grid, trace_jobs);
            });
        }
    });
}

/// Runs one job on its execution target, feeds the calibration, and
/// completes the client's handle.
fn finish_job<P: PoolExec>(
    job: QueuedJob,
    planners: &Planners,
    calibration: &Mutex<Calibration>,
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
) {
    job.cell.set_running();
    let outcome = execute(planners, pool, grid, trace_jobs, &job);
    if job.model_secs > 0.0 {
        if let Ok(out) = &outcome {
            calibration.lock().expect("calibration lock").observe(
                job.class,
                job.model_secs,
                out.report.wall.as_secs_f64(),
            );
        }
    }
    job.cell.finish(outcome);
}

/// Plan → scatter → pooled SPMD run → gather, routed by workload.
fn execute<P: PoolExec>(
    planners: &Planners,
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let started = Instant::now();
    match &job.operands {
        JobOperands::Dense { a, b } => {
            let planned = match job.spec.hint {
                PlanHint::Auto => planners.with(grid, |p| p.plan_gemm(job.spec.m, job.spec.k, n)),
                PlanHint::Force(plan) => Planned {
                    plan,
                    cached: false,
                },
            };
            run_dense(pool, grid, trace_jobs, job, started, planned, a, b, false)
        }
        JobOperands::SpGemm { a, b } => {
            // A forced dense plan bypasses the scoreboard: densify and
            // run exactly that plan.
            if let PlanHint::Force(plan) = job.spec.hint {
                let planned = Planned {
                    plan,
                    cached: false,
                };
                return run_dense(
                    pool,
                    grid,
                    trace_jobs,
                    job,
                    started,
                    planned,
                    &a.to_dense(),
                    &b.to_dense(),
                    true,
                );
            }
            let prof_a = sparsity_profile(a, PROFILE_SAMPLES);
            let prof_b = sparsity_profile(b, PROFILE_SAMPLES);
            let sp = planners.with(grid, |p| p.plan_spgemm(n, &prof_a, &prof_b));
            match sp.dense {
                // The scoreboard says the operands are full enough that
                // dense panels win: densify and run the dense plan.
                Some(planned) => run_dense(
                    pool,
                    grid,
                    trace_jobs,
                    job,
                    started,
                    planned,
                    &a.to_dense(),
                    &b.to_dense(),
                    true,
                ),
                None => run_spgemm(pool, grid, trace_jobs, job, started, sp.block, a, b),
            }
        }
        JobOperands::Sddmm { s, a, b } => {
            let block = planners.with(grid, |p| p.sddmm_block(n));
            run_sddmm(pool, grid, trace_jobs, job, started, block, s, a, b)
        }
    }
}

/// Dense schedule on dense tiles. With `sparsify`, the operands were
/// densified CSR inputs and the product converts back to CSR — the
/// product contract follows the submission, not the execution path.
///
/// Operands are dealt by the [`Distribution`] checkerboard descriptors
/// (exact cover for *any* extents, no divisibility required) and the
/// plan runs through [`run_planned_gemm`] — the same descriptors the
/// planner's brick schedule redistributes from.
#[allow(clippy::too_many_arguments)]
fn run_dense<P: PoolExec>(
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    planned: Planned,
    a: &Matrix,
    b: &Matrix,
    sparsify: bool,
) -> Result<JobOutput, JobError> {
    let (m, k, n) = (job.spec.m, job.spec.k, job.spec.n);
    let c_dist = Distribution::grid2d(grid, m, n);
    let a_tiles = Arc::new(Distribution::grid2d(grid, m, k).scatter(a));
    let b_tiles = Arc::new(Distribution::grid2d(grid, k, n).scatter(b));
    let plan = planned.plan;
    let serve_plan = if sparsify {
        ServePlan::Densified(plan)
    } else {
        ServePlan::Dense(plan)
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        serve_plan,
        planned.cached,
        started,
        move |comm| {
            let at = a_tiles[comm.rank()].clone();
            let bt = b_tiles[comm.rank()].clone();
            run_planned_gemm(comm, grid, m, n, k, &at, &bt, &plan)
        },
    )?;
    let c = c_dist.gather(&tiles);
    let c = if sparsify {
        Product::Sparse(CsrMatrix::from_dense(&c))
    } else {
        Product::Dense(c)
    };
    Ok(JobOutput { c, report })
}

/// Native 2-D SpGEMM on CSR tiles.
#[allow(clippy::too_many_arguments)]
fn run_spgemm<P: PoolExec>(
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    block: usize,
    a: &CsrMatrix,
    b: &CsrMatrix,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let at: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, a).into_iter().map(Arc::new).collect());
    let bt: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, b).into_iter().map(Arc::new).collect());
    let cfg = SparseConfig {
        block,
        ..SparseConfig::default()
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        ServePlan::SpGemm { block },
        false,
        started,
        move |comm| {
            let r = comm.rank();
            spgemm_2d(comm, grid, n, &at[r], &bt[r], &cfg)
        },
    )?;
    let tiles: Vec<CsrMatrix> = tiles.iter().map(|t| (**t).clone()).collect();
    Ok(JobOutput {
        c: Product::Sparse(gather_csr(grid, &tiles)),
        report,
    })
}

/// 2-D SDDMM: CSR sample tiles, dense operand tiles.
#[allow(clippy::too_many_arguments)]
fn run_sddmm<P: PoolExec>(
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    block: usize,
    s: &CsrMatrix,
    a: &Matrix,
    b: &Matrix,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let st: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, s).into_iter().map(Arc::new).collect());
    let dist = BlockDist::new(grid, n, n);
    let at = Arc::new(dist.scatter(a));
    let bt = Arc::new(dist.scatter(b));
    let cfg = SparseConfig {
        block,
        ..SparseConfig::default()
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        ServePlan::Sddmm { block },
        false,
        started,
        move |comm| {
            let r = comm.rank();
            sddmm_2d(comm, grid, n, &st[r], &at[r], &bt[r], &cfg)
        },
    )?;
    let tiles: Vec<CsrMatrix> = tiles.iter().map(|t| (**t).clone()).collect();
    Ok(JobOutput {
        c: Product::Sparse(gather_csr(grid, &tiles)),
        report,
    })
}

/// The pooled-run tail every workload shares: run the SPMD closure under
/// the job's deadline/fault options with per-job stat demarcation, then
/// either hand back the per-rank values with a `Completed` report or
/// diagnose the primary failure into a [`JobError`] carrying the report.
#[allow(clippy::too_many_arguments)]
fn run_pooled<P: PoolExec, T: Send + 'static>(
    pool: &mut P,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    plan: ServePlan,
    plan_cached: bool,
    started: Instant,
    f: impl Fn(&mut Comm) -> Result<T, CommError> + Send + Sync + 'static,
) -> Result<(Vec<T>, JobReport), JobError> {
    let tracer = if trace_jobs {
        Tracer::new(grid.size())
    } else {
        Tracer::disabled()
    };
    let mut opts = JobOptions::default();
    if let Some(d) = job.spec.deadline {
        opts = opts.with_deadline(d);
    }
    if let Some(fp) = &job.spec.faults {
        opts = opts.with_faults(Arc::clone(fp));
    }
    let run = pool.run_job(&tracer, &opts, f);
    let PoolRun { results, stats } = match run {
        Ok(run) => run,
        Err(e) => return Err(JobError::Execution(e.to_string())),
    };
    let report = |outcome: JobOutcome, stats: Vec<CommStats>| {
        let merged = stats
            .iter()
            .fold(CommStats::default(), |acc, s| acc.merge(s));
        JobReport {
            job_id: job.id,
            plan,
            plan_desc: plan.describe(),
            plan_cached,
            wall: started.elapsed(),
            timeouts: merged.timeouts,
            cancelled: merged.cancelled,
            faults_injected: merged.faults_injected,
            stats,
            trace: trace_jobs.then(|| tracer.collect()),
            outcome,
        }
    };
    let errors: Vec<&CommError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    match primary_comm_error(errors) {
        None => {
            let values: Vec<T> = results
                .into_iter()
                .map(|r| match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("no errors means every rank produced a value"),
                })
                .collect();
            Ok((values, report(JobOutcome::Completed, stats)))
        }
        Some(primary) => {
            let detail = primary.to_string();
            match primary.kind() {
                CommErrorKind::Timeout => Err(JobError::Timeout {
                    detail,
                    report: Box::new(report(JobOutcome::TimedOut, stats)),
                }),
                CommErrorKind::Cancelled => Err(JobError::Cancelled {
                    detail,
                    report: Box::new(report(JobOutcome::Cancelled, stats)),
                }),
                // A dead or poisoned peer without any timeout is an
                // execution failure (e.g. a kill-rank fault with no
                // deadline racing ahead of the peers' own timeouts).
                CommErrorKind::PeerDead | CommErrorKind::Shutdown => {
                    Err(JobError::Execution(detail))
                }
            }
        }
    }
}
