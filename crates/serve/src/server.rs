//! The GEMM job service: bounded admission, FIFO scheduling, pooled
//! execution.
//!
//! One [`GemmServer`] owns three things:
//!
//! * a **[`RankPool`]** of `p` worker threads, created once at server
//!   start — jobs pay no thread spawn/teardown (the reason the pooled
//!   throughput benchmark beats back-to-back `Runtime::run` calls);
//! * a **bounded FIFO queue** guarding admission. `submit` never blocks:
//!   a full queue rejects with [`SubmitError::QueueFull`] carrying the
//!   numbers (backpressure is the client's signal to shed or retry);
//! * a **scheduler thread** that drains the queue in order: plan (via
//!   the memoizing [`Planner`]) → scatter → run the SPMD plan on the
//!   pool → gather → complete the client's [`JobHandle`].
//!
//! The queue carries three workloads through one pipeline: dense GEMM
//! ([`GemmServer::submit`]), sparse SpGEMM ([`GemmServer::submit_spgemm`]
//! — routed by the nnz-aware scoreboard to either densify-and-SUMMA or
//! the native 2-D CSR schedule) and SDDMM
//! ([`GemmServer::submit_sddmm`]). Deadlines, fault injection, per-job
//! stats demarcation and tracing apply identically to all three — they
//! live in the pooled-run tail every workload shares.
//!
//! Failure containment mirrors the pool's: a job whose plan panics on a
//! rank fails *that job* ([`JobError::Execution`]) and the server keeps
//! serving. Shutdown is graceful — queued jobs run to completion before
//! the scheduler exits (`shutdown()`, also invoked by `Drop`).

use crate::job::{
    JobCell, JobError, JobHandle, JobOutcome, JobOutput, JobReport, JobSpec, PlanHint, Product,
    ServePlan, SubmitError, Workload,
};
use crate::planner::{sparsity_profile, Planned, Planner, PlannerConfig, PlannerStats};
use hsumma_core::{run_planned_gemm, Distribution};
use hsumma_matrix::sparse::CsrMatrix;
use hsumma_matrix::{BlockDist, GridShape, Matrix};
use hsumma_runtime::{Comm, CommStats, JobOptions, PoolRun, RankPool, RuntimeError};
use hsumma_sparse::{gather_csr, scatter_csr, sddmm_2d, spgemm_2d, SparseConfig};
use hsumma_trace::{primary_comm_error, CommError, CommErrorKind, Tracer};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Rows sampled per CSR operand when estimating a sparsity profile for
/// the planner.
const PROFILE_SAMPLES: usize = 64;

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Processor grid; the pool has `grid.size()` ranks.
    pub grid: GridShape,
    /// Admission queue bound (jobs waiting, excluding the running one).
    pub queue_capacity: usize,
    /// Record a per-job [`hsumma_trace::Trace`] into every report.
    pub trace_jobs: bool,
    /// Planner configuration (cost model, simulator, refinement).
    pub planner: PlannerConfig,
}

impl ServerConfig {
    /// Defaults: queue of 32, no tracing, default planner.
    pub fn new(grid: GridShape) -> Self {
        ServerConfig {
            grid,
            queue_capacity: 32,
            trace_jobs: false,
            planner: PlannerConfig::default(),
        }
    }
}

/// A queued job's operands, matching its spec's [`Workload`].
enum JobOperands {
    Dense { a: Matrix, b: Matrix },
    SpGemm { a: CsrMatrix, b: CsrMatrix },
    Sddmm { s: CsrMatrix, a: Matrix, b: Matrix },
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    operands: JobOperands,
    cell: Arc<JobCell>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
    /// Jobs submitted (admitted) so far; also the next job id.
    submitted: u64,
    /// Submissions refused because the queue was full.
    rejected: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the scheduler: work available or shutdown requested.
    cv: Condvar,
}

/// Aggregate service counters (see also [`GemmServer::planner_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs admitted to the queue since start.
    pub submitted: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Jobs currently waiting (excludes the running job).
    pub queued: usize,
}

/// A persistent GEMM job service over a pooled rank runtime. See the
/// [module docs](self).
pub struct GemmServer {
    shared: Arc<Shared>,
    planner: Arc<Mutex<Planner>>,
    scheduler: Option<JoinHandle<()>>,
    grid: GridShape,
    capacity: usize,
}

impl GemmServer {
    /// Starts the service: spawns the rank pool (surfacing
    /// [`RuntimeError::Spawn`] instead of aborting) and the scheduler.
    ///
    /// # Panics
    /// Panics if `queue_capacity == 0` (a queue that can hold nothing
    /// rejects everything).
    pub fn new(config: ServerConfig) -> Result<Self, RuntimeError> {
        assert!(config.queue_capacity > 0, "queue capacity must be ≥ 1");
        let pool = RankPool::new(config.grid.size())?;
        let planner = Arc::new(Mutex::new(Planner::new(
            config.grid,
            config.planner.clone(),
        )));
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
                submitted: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            let planner = Arc::clone(&planner);
            let grid = config.grid;
            let trace_jobs = config.trace_jobs;
            std::thread::Builder::new()
                .name("gemm-scheduler".into())
                .spawn(move || scheduler_loop(shared, planner, pool, grid, trace_jobs))
                .map_err(|source| RuntimeError::Spawn {
                    rank: config.grid.size(),
                    source,
                })?
        };
        Ok(GemmServer {
            shared,
            planner,
            scheduler: Some(scheduler),
            grid: config.grid,
            capacity: config.queue_capacity,
        })
    }

    /// The service's processor grid.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// Submits one dense GEMM job. Non-blocking admission control: the
    /// job is either queued (returning a [`JobHandle`]) or refused with
    /// the reason.
    ///
    /// `a` and `b` must match the spec's dimensions. Any positive
    /// `(m, k, n)` is served: shapes the grid cannot tile run the brick
    /// schedule, which needs no divisibility (see [`JobSpec`]).
    pub fn submit(&self, spec: JobSpec, a: Matrix, b: Matrix) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::DenseGemm)?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::Dense { a, b })
    }

    /// Submits one sparse × sparse (SpGEMM) job; the product is CSR.
    /// The planner samples both operands' row densities and routes the
    /// job — densify-and-SUMMA or native 2-D SpGEMM — by predicted total
    /// time. A [`PlanHint::Force`] hint forces the densified path with
    /// exactly that dense plan.
    pub fn submit_spgemm(
        &self,
        spec: JobSpec,
        a: CsrMatrix,
        b: CsrMatrix,
    ) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::SpGemm)?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::SpGemm { a, b })
    }

    /// Submits one SDDMM job `C = S ⊙ (A·B)`: sparse sample matrix `S`,
    /// dense operands; the product is CSR with exactly `S`'s pattern.
    pub fn submit_sddmm(
        &self,
        spec: JobSpec,
        s: CsrMatrix,
        a: Matrix,
        b: Matrix,
    ) -> Result<JobHandle, SubmitError> {
        self.validate_spec(&spec, Workload::Sddmm)?;
        self.validate_shape("S", s.shape(), (spec.m, spec.n))?;
        self.validate_shape("A", a.shape(), (spec.m, spec.k))?;
        self.validate_shape("B", b.shape(), (spec.k, spec.n))?;
        self.admit(spec, JobOperands::Sddmm { s, a, b })
    }

    /// Shared admission tail: queue bound, id assignment, handle.
    fn admit(&self, spec: JobSpec, operands: JobOperands) -> Result<JobHandle, SubmitError> {
        let mut st = self.shared.state.lock().expect("queue lock");
        if st.shutdown {
            return Err(SubmitError::Shutdown);
        }
        if st.jobs.len() >= self.capacity {
            st.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                queued: st.jobs.len(),
            });
        }
        let id = st.submitted;
        st.submitted += 1;
        let cell = JobCell::new();
        st.jobs.push_back(QueuedJob {
            id,
            spec,
            operands,
            cell: Arc::clone(&cell),
        });
        drop(st);
        self.shared.cv.notify_all();
        Ok(JobHandle { id, cell })
    }

    /// Spec-level admission validation — every rejection names its
    /// reason. `expected` is the workload implied by the entry point.
    ///
    /// Dense GEMM accepts any positive `(m, k, n)`: the planner routes
    /// shapes the grid cannot tile to the brick schedule. The sparse
    /// workloads' CSR scatter/gather still assumes square grid-divisible
    /// operands, so they keep the stricter contract.
    fn validate_spec(&self, spec: &JobSpec, expected: Workload) -> Result<(), SubmitError> {
        let invalid = |reason: String| Err(SubmitError::Invalid(reason));
        if spec.workload != expected {
            return invalid(format!(
                "spec workload is {:?} but the submission entry point serves {:?}",
                spec.workload, expected
            ));
        }
        if spec.n == 0 || spec.m == 0 || spec.k == 0 {
            return invalid("dimensions must be positive".into());
        }
        if expected == Workload::DenseGemm {
            return Ok(());
        }
        if spec.m != spec.n || spec.k != spec.n {
            return invalid(format!(
                "sparse workloads are served square (m = k = n); got m={}, k={}, n={}",
                spec.m, spec.k, spec.n
            ));
        }
        if !spec.n.is_multiple_of(self.grid.rows) || !spec.n.is_multiple_of(self.grid.cols) {
            return invalid(format!(
                "n={} not divisible by the {}x{} grid",
                spec.n, self.grid.rows, self.grid.cols
            ));
        }
        Ok(())
    }

    /// One operand's shape against the spec's.
    fn validate_shape(
        &self,
        name: &str,
        got: (usize, usize),
        want: (usize, usize),
    ) -> Result<(), SubmitError> {
        if got != want {
            return Err(SubmitError::Invalid(format!(
                "{name} is {got:?}, spec says {want:?}"
            )));
        }
        Ok(())
    }

    /// Queue and admission counters at this instant.
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.state.lock().expect("queue lock");
        ServerStats {
            submitted: st.submitted,
            rejected: st.rejected,
            queued: st.jobs.len(),
        }
    }

    /// The planner's cache/sweep counters (see [`PlannerStats`]).
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.lock().expect("planner lock").stats()
    }

    /// Graceful shutdown: stops admitting, runs every queued job to
    /// completion, then joins the scheduler and the rank pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("queue lock");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GemmServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The scheduler: FIFO over the queue until shutdown *and* empty.
fn scheduler_loop(
    shared: Arc<Shared>,
    planner: Arc<Mutex<Planner>>,
    mut pool: RankPool,
    grid: GridShape,
    trace_jobs: bool,
) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("queue lock");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).expect("queue lock");
            }
        };
        job.cell.set_running();
        let outcome = execute(&planner, &mut pool, grid, trace_jobs, &job);
        job.cell.finish(outcome);
    }
}

/// Plan → scatter → pooled SPMD run → gather, routed by workload.
fn execute(
    planner: &Arc<Mutex<Planner>>,
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let started = Instant::now();
    match &job.operands {
        JobOperands::Dense { a, b } => {
            let planned = match job.spec.hint {
                PlanHint::Auto => planner
                    .lock()
                    .expect("planner lock")
                    .plan_gemm(job.spec.m, job.spec.k, n),
                PlanHint::Force(plan) => Planned {
                    plan,
                    cached: false,
                },
            };
            run_dense(pool, grid, trace_jobs, job, started, planned, a, b, false)
        }
        JobOperands::SpGemm { a, b } => {
            // A forced dense plan bypasses the scoreboard: densify and
            // run exactly that plan.
            if let PlanHint::Force(plan) = job.spec.hint {
                let planned = Planned {
                    plan,
                    cached: false,
                };
                return run_dense(
                    pool,
                    grid,
                    trace_jobs,
                    job,
                    started,
                    planned,
                    &a.to_dense(),
                    &b.to_dense(),
                    true,
                );
            }
            let prof_a = sparsity_profile(a, PROFILE_SAMPLES);
            let prof_b = sparsity_profile(b, PROFILE_SAMPLES);
            let sp = planner
                .lock()
                .expect("planner lock")
                .plan_spgemm(n, &prof_a, &prof_b);
            match sp.dense {
                // The scoreboard says the operands are full enough that
                // dense panels win: densify and run the dense plan.
                Some(planned) => run_dense(
                    pool,
                    grid,
                    trace_jobs,
                    job,
                    started,
                    planned,
                    &a.to_dense(),
                    &b.to_dense(),
                    true,
                ),
                None => run_spgemm(pool, grid, trace_jobs, job, started, sp.block, a, b),
            }
        }
        JobOperands::Sddmm { s, a, b } => {
            let block = planner.lock().expect("planner lock").sddmm_block(n);
            run_sddmm(pool, grid, trace_jobs, job, started, block, s, a, b)
        }
    }
}

/// Dense schedule on dense tiles. With `sparsify`, the operands were
/// densified CSR inputs and the product converts back to CSR — the
/// product contract follows the submission, not the execution path.
///
/// Operands are dealt by the [`Distribution`] checkerboard descriptors
/// (exact cover for *any* extents, no divisibility required) and the
/// plan runs through [`run_planned_gemm`] — the same descriptors the
/// planner's brick schedule redistributes from.
#[allow(clippy::too_many_arguments)]
fn run_dense(
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    planned: Planned,
    a: &Matrix,
    b: &Matrix,
    sparsify: bool,
) -> Result<JobOutput, JobError> {
    let (m, k, n) = (job.spec.m, job.spec.k, job.spec.n);
    let c_dist = Distribution::grid2d(grid, m, n);
    let a_tiles = Arc::new(Distribution::grid2d(grid, m, k).scatter(a));
    let b_tiles = Arc::new(Distribution::grid2d(grid, k, n).scatter(b));
    let plan = planned.plan;
    let serve_plan = if sparsify {
        ServePlan::Densified(plan)
    } else {
        ServePlan::Dense(plan)
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        serve_plan,
        planned.cached,
        started,
        move |comm| {
            let at = a_tiles[comm.rank()].clone();
            let bt = b_tiles[comm.rank()].clone();
            run_planned_gemm(comm, grid, m, n, k, &at, &bt, &plan)
        },
    )?;
    let c = c_dist.gather(&tiles);
    let c = if sparsify {
        Product::Sparse(CsrMatrix::from_dense(&c))
    } else {
        Product::Dense(c)
    };
    Ok(JobOutput { c, report })
}

/// Native 2-D SpGEMM on CSR tiles.
#[allow(clippy::too_many_arguments)]
fn run_spgemm(
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    block: usize,
    a: &CsrMatrix,
    b: &CsrMatrix,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let at: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, a).into_iter().map(Arc::new).collect());
    let bt: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, b).into_iter().map(Arc::new).collect());
    let cfg = SparseConfig {
        block,
        ..SparseConfig::default()
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        ServePlan::SpGemm { block },
        false,
        started,
        move |comm| {
            let r = comm.rank();
            spgemm_2d(comm, grid, n, &at[r], &bt[r], &cfg)
        },
    )?;
    let tiles: Vec<CsrMatrix> = tiles.iter().map(|t| (**t).clone()).collect();
    Ok(JobOutput {
        c: Product::Sparse(gather_csr(grid, &tiles)),
        report,
    })
}

/// 2-D SDDMM: CSR sample tiles, dense operand tiles.
#[allow(clippy::too_many_arguments)]
fn run_sddmm(
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    started: Instant,
    block: usize,
    s: &CsrMatrix,
    a: &Matrix,
    b: &Matrix,
) -> Result<JobOutput, JobError> {
    let n = job.spec.n;
    let st: Arc<Vec<Arc<CsrMatrix>>> =
        Arc::new(scatter_csr(grid, s).into_iter().map(Arc::new).collect());
    let dist = BlockDist::new(grid, n, n);
    let at = Arc::new(dist.scatter(a));
    let bt = Arc::new(dist.scatter(b));
    let cfg = SparseConfig {
        block,
        ..SparseConfig::default()
    };
    let (tiles, report) = run_pooled(
        pool,
        grid,
        trace_jobs,
        job,
        ServePlan::Sddmm { block },
        false,
        started,
        move |comm| {
            let r = comm.rank();
            sddmm_2d(comm, grid, n, &st[r], &at[r], &bt[r], &cfg)
        },
    )?;
    let tiles: Vec<CsrMatrix> = tiles.iter().map(|t| (**t).clone()).collect();
    Ok(JobOutput {
        c: Product::Sparse(gather_csr(grid, &tiles)),
        report,
    })
}

/// The pooled-run tail every workload shares: run the SPMD closure under
/// the job's deadline/fault options with per-job stat demarcation, then
/// either hand back the per-rank values with a `Completed` report or
/// diagnose the primary failure into a [`JobError`] carrying the report.
#[allow(clippy::too_many_arguments)]
fn run_pooled<T: Send + 'static>(
    pool: &mut RankPool,
    grid: GridShape,
    trace_jobs: bool,
    job: &QueuedJob,
    plan: ServePlan,
    plan_cached: bool,
    started: Instant,
    f: impl Fn(&mut Comm) -> Result<T, CommError> + Send + Sync + 'static,
) -> Result<(Vec<T>, JobReport), JobError> {
    let tracer = if trace_jobs {
        Tracer::new(grid.size())
    } else {
        Tracer::disabled()
    };
    let mut opts = JobOptions::default();
    if let Some(d) = job.spec.deadline {
        opts = opts.with_deadline(d);
    }
    if let Some(fp) = &job.spec.faults {
        opts = opts.with_faults(Arc::clone(fp));
    }
    let run = pool.run_opts(&tracer, &opts, f);
    let PoolRun { results, stats } = match run {
        Ok(run) => run,
        Err(e) => return Err(JobError::Execution(e.to_string())),
    };
    let report = |outcome: JobOutcome, stats: Vec<CommStats>| {
        let merged = stats
            .iter()
            .fold(CommStats::default(), |acc, s| acc.merge(s));
        JobReport {
            job_id: job.id,
            plan,
            plan_desc: plan.describe(),
            plan_cached,
            wall: started.elapsed(),
            timeouts: merged.timeouts,
            cancelled: merged.cancelled,
            faults_injected: merged.faults_injected,
            stats,
            trace: trace_jobs.then(|| tracer.collect()),
            outcome,
        }
    };
    let errors: Vec<&CommError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    match primary_comm_error(errors) {
        None => {
            let values: Vec<T> = results
                .into_iter()
                .map(|r| match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("no errors means every rank produced a value"),
                })
                .collect();
            Ok((values, report(JobOutcome::Completed, stats)))
        }
        Some(primary) => {
            let detail = primary.to_string();
            match primary.kind() {
                CommErrorKind::Timeout => Err(JobError::Timeout {
                    detail,
                    report: Box::new(report(JobOutcome::TimedOut, stats)),
                }),
                CommErrorKind::Cancelled => Err(JobError::Cancelled {
                    detail,
                    report: Box::new(report(JobOutcome::Cancelled, stats)),
                }),
                // A dead or poisoned peer without any timeout is an
                // execution failure (e.g. a kill-rank fault with no
                // deadline racing ahead of the peers' own timeouts).
                CommErrorKind::PeerDead | CommErrorKind::Shutdown => {
                    Err(JobError::Execution(detail))
                }
            }
        }
    }
}
