//! The scheduler subsystem: priority classes, the EDF ready queue with
//! aging, the planner-to-wall-clock calibration behind feasibility
//! admission, and the sub-pool packing helpers.
//!
//! The [`GemmServer`] scheduling pipeline is three stages (see
//! `docs/scheduling.md` for the full picture):
//!
//! 1. **Feasibility admission** — at submit, a deadline job's modeled
//!    duration ([`Planner::estimate`], memoized per shape class) is
//!    mapped to wall-clock by the online [`Calibration`] and checked
//!    against the deadline together with the rank-seconds already
//!    queued ahead of it; a provably unmeetable deadline is rejected
//!    with `SubmitError::Infeasible` naming the margin.
//! 2. **EDF dispatch** — admitted jobs wait in a [`ReadyQueue`]:
//!    deadline jobs in an earliest-deadline-first order, deadline-less
//!    jobs in a background FIFO that a bounded aging rule promotes so
//!    deadline traffic can never starve it.
//! 3. **Gang packing** — the dispatched head runs on a sub-pool sized
//!    by the planner's strong-scaling curve (never more ranks than its
//!    perfect-scaling range uses), and the leftover ranks are backfilled
//!    with the next queued jobs that fit, one carve per wave.
//!
//! Everything here is deliberately free of the server's locking and
//! execution machinery: the queue and calibration take explicit `now`
//! instants, so ordering and aging are unit- and property-testable
//! without a running service.
//!
//! [`GemmServer`]: crate::GemmServer
//! [`Planner::estimate`]: crate::Planner::estimate

use crate::planner::ShapeClass;
use hsumma_matrix::GridShape;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Which of the two scheduling classes a job belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PriorityClass {
    /// The job carries a deadline: scheduled earliest-deadline-first,
    /// ahead of the background class.
    Deadline,
    /// No deadline: FIFO among themselves, behind all deadline jobs
    /// until the aging bound promotes them.
    Background,
}

/// How long a background job may wait behind deadline traffic before
/// the aging rule promotes it ahead of the deadline class. This bounds
/// starvation: under sustained deadline load a background job is
/// dispatched at most `AGING_BOUND` (plus one in-flight wave) after
/// submission order would have dispatched it.
pub const AGING_BOUND: Duration = Duration::from_millis(250);

/// The deadline-ordered ready queue: an EDF heap for the deadline class
/// and an aging FIFO for the background class.
///
/// Ordering contract (the property `tests/sched.rs` pins):
///
/// * deadline jobs pop in deadline order, ties broken by submission;
/// * a background job pops ahead of a waiting deadline job **only**
///   when it has waited at least the aging bound — otherwise the
///   classes never invert;
/// * among themselves, background jobs pop in submission order.
///
/// All time is an explicit `now` parameter so the scheduler (and the
/// tests) control the clock.
#[derive(Debug)]
pub struct ReadyQueue<T> {
    /// EDF order: `(deadline, submission seq) → job`. A `BTreeMap` is
    /// the binary heap with deterministic FIFO tie-breaks and ordered
    /// iteration for the feasibility scan.
    urgent: BTreeMap<(Instant, u64), T>,
    /// Background FIFO: `(submitted-at, submission seq, job)`.
    background: VecDeque<(Instant, u64, T)>,
    aging: Duration,
    seq: u64,
}

impl<T> ReadyQueue<T> {
    /// An empty queue promoting background jobs after `aging`.
    pub fn new(aging: Duration) -> Self {
        ReadyQueue {
            urgent: BTreeMap::new(),
            background: VecDeque::new(),
            aging,
            seq: 0,
        }
    }

    /// Jobs waiting, both classes.
    pub fn len(&self) -> usize {
        self.urgent.len() + self.background.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.urgent.is_empty() && self.background.is_empty()
    }

    /// Enqueues a deadline-class job due at `deadline`.
    pub fn push_deadline(&mut self, deadline: Instant, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.urgent.insert((deadline, seq), item);
    }

    /// Enqueues a background-class job submitted at `now`.
    pub fn push_background(&mut self, now: Instant, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.background.push_back((now, seq, item));
    }

    /// Whether the background head has waited past the aging bound.
    fn background_aged(&self, now: Instant) -> bool {
        self.background
            .front()
            .is_some_and(|(submitted, _, _)| now.duration_since(*submitted) >= self.aging)
    }

    /// Dequeues the next job to dispatch at `now`: an aged background
    /// head first (the starvation bound), else the earliest deadline,
    /// else the background head.
    pub fn pop(&mut self, now: Instant) -> Option<(PriorityClass, T)> {
        if self.background_aged(now) || self.urgent.is_empty() {
            if let Some((_, _, item)) = self.background.pop_front() {
                return Some((PriorityClass::Background, item));
            }
        }
        self.urgent
            .pop_first()
            .map(|(_, item)| (PriorityClass::Deadline, item))
    }

    /// Dequeues the highest-priority job satisfying `fits` — the
    /// backfill step: after the wave head claims its ranks, the leftover
    /// capacity goes to the next jobs small enough to use it. Priority
    /// order is the same as [`ReadyQueue::pop`]'s.
    pub fn pop_fitting(
        &mut self,
        now: Instant,
        mut fits: impl FnMut(&T) -> bool,
    ) -> Option<(PriorityClass, T)> {
        if self.background_aged(now) {
            if let Some(found) = self.pop_background_fitting(&mut fits) {
                return Some(found);
            }
        }
        let key = self
            .urgent
            .iter()
            .find(|(_, item)| fits(item))
            .map(|(&key, _)| key);
        if let Some(key) = key {
            let item = self.urgent.remove(&key).expect("key came from the map");
            return Some((PriorityClass::Deadline, item));
        }
        self.pop_background_fitting(&mut fits)
    }

    fn pop_background_fitting(
        &mut self,
        fits: &mut impl FnMut(&T) -> bool,
    ) -> Option<(PriorityClass, T)> {
        let idx = self.background.iter().position(|(_, _, item)| fits(item))?;
        let (_, _, item) = self
            .background
            .remove(idx)
            .expect("index came from position");
        Some((PriorityClass::Background, item))
    }

    /// The deadline class in EDF order — the feasibility check walks
    /// this to total the work queued ahead of a candidate deadline.
    pub fn deadline_iter(&self) -> impl Iterator<Item = (Instant, &T)> {
        self.urgent.iter().map(|(&(d, _), item)| (d, item))
    }
}

/// Exponentially-weighted online calibration from the planner's *model*
/// seconds to observed wall-clock seconds, resolved per shape class.
///
/// The cost models price algorithms on a simulated platform's
/// `(α, β, γ)` — the right *relative* signal (which algorithm, which
/// `G`, how many ranks) but not in-process wall time. Feasibility
/// admission needs absolute time, so the scheduler maintains EWMAs of
/// `wall / model` over completed jobs and scales predictions by them.
///
/// A single global ratio systematically mis-prices a mixed workload:
/// small jobs are dominated by per-message overheads the model's `α`
/// under-weights in-process, large jobs by bandwidth and compute the
/// model tracks well, so their true `wall / model` ratios differ by
/// orders of magnitude. The calibration therefore keeps one EWMA per
/// [`ShapeClass`] — the same coarsening the planner memoizes plans
/// under — and falls back to the global EWMA (over *all* completions)
/// until a class has seen its first completion.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// EWMA over every completed plannable job — the fallback for
    /// classes with no completions yet. Starts at the identity.
    global: f64,
    /// Per-class EWMAs; a class's first sample seeds its cell directly
    /// (no decay from the identity), so one completion is enough to
    /// price that class near its own regime.
    per_class: HashMap<ShapeClass, f64>,
}

/// EWMA weight of the newest observation.
const CALIBRATION_ALPHA: f64 = 0.3;

fn fold(ratio: f64, sample: f64) -> f64 {
    (1.0 - CALIBRATION_ALPHA) * ratio + CALIBRATION_ALPHA * sample
}

impl Calibration {
    /// Starts uncalibrated: model seconds are taken at face value until
    /// the first observation.
    pub fn new() -> Self {
        Calibration {
            global: 1.0,
            per_class: HashMap::new(),
        }
    }

    /// Folds in one completed job's `(model prediction, observed wall)`
    /// pair, attributed to `class` when the job was priced under one.
    /// Degenerate observations (non-positive either side) are dropped
    /// rather than poisoning the ratios.
    pub fn observe(&mut self, class: Option<ShapeClass>, model_secs: f64, wall_secs: f64) {
        if model_secs <= 0.0 || wall_secs <= 0.0 {
            return;
        }
        let sample = wall_secs / model_secs;
        self.global = fold(self.global, sample);
        if let Some(class) = class {
            self.per_class
                .entry(class)
                .and_modify(|r| *r = fold(*r, sample))
                .or_insert(sample);
        }
    }

    /// Maps a model prediction to expected wall-clock seconds using the
    /// class's own ratio when that class has completed at least one job,
    /// the global ratio otherwise.
    pub fn wall_secs(&self, class: Option<ShapeClass>, model_secs: f64) -> f64 {
        model_secs * self.ratio_for(class)
    }

    /// The ratio [`Calibration::wall_secs`] would apply for `class`.
    pub fn ratio_for(&self, class: Option<ShapeClass>) -> f64 {
        class
            .and_then(|c| self.per_class.get(&c).copied())
            .unwrap_or(self.global)
    }

    /// The global `wall / model` ratio (EWMA over all completions).
    pub fn ratio(&self) -> f64 {
        self.global
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::new()
    }
}

/// The near-square processor grid for an `r`-rank sub-pool: the divisor
/// pair closest to `√r`, rows ≤ cols (the same convention the
/// benchmarks use). Dense jobs run on any grid — shapes the grid cannot
/// tile fall back to the brick schedule — so packing never has to
/// reject a sub-pool size.
pub fn subgrid(r: usize) -> GridShape {
    assert!(r >= 1, "a sub-pool has at least one rank");
    let mut s = (r as f64).sqrt() as usize;
    while s > 1 && !r.is_multiple_of(s) {
        s -= 1;
    }
    let s = s.max(1);
    GridShape::new(s, r / s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn deadline_jobs_pop_in_edf_order() {
        let now = t0();
        let mut q = ReadyQueue::new(AGING_BOUND);
        q.push_deadline(now + Duration::from_millis(30), "late");
        q.push_deadline(now + Duration::from_millis(10), "soon");
        q.push_deadline(now + Duration::from_millis(20), "mid");
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, "soon")));
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, "mid")));
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, "late")));
        assert_eq!(q.pop(now), None);
    }

    #[test]
    fn background_waits_behind_deadlines_until_aged() {
        let now = t0();
        let mut q = ReadyQueue::new(Duration::from_millis(100));
        q.push_background(now, "bg");
        q.push_deadline(now + Duration::from_secs(1), "dl");
        // Fresh background: the deadline class goes first.
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, "dl")));
        q.push_deadline(now + Duration::from_secs(2), "dl2");
        // Past the aging bound the background head is promoted even
        // though a deadline job waits.
        let later = now + Duration::from_millis(100);
        assert_eq!(q.pop(later), Some((PriorityClass::Background, "bg")));
        assert_eq!(q.pop(later), Some((PriorityClass::Deadline, "dl2")));
    }

    #[test]
    fn ties_break_by_submission_order() {
        let now = t0();
        let d = now + Duration::from_millis(5);
        let mut q = ReadyQueue::new(AGING_BOUND);
        q.push_deadline(d, 1);
        q.push_deadline(d, 2);
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, 1)));
        assert_eq!(q.pop(now), Some((PriorityClass::Deadline, 2)));
    }

    #[test]
    fn pop_fitting_respects_priority_within_the_fit() {
        let now = t0();
        let mut q = ReadyQueue::new(AGING_BOUND);
        q.push_deadline(now + Duration::from_millis(1), 16usize);
        q.push_deadline(now + Duration::from_millis(2), 4);
        q.push_background(now, 2);
        // Only 8 ranks left: the 16-rank EDF head does not fit, the
        // 4-rank deadline job is the best fitting choice.
        assert_eq!(
            q.pop_fitting(now, |&r| r <= 8),
            Some((PriorityClass::Deadline, 4))
        );
        // Nothing under 2 ranks but the background job.
        assert_eq!(
            q.pop_fitting(now, |&r| r <= 2),
            Some((PriorityClass::Background, 2))
        );
        assert_eq!(q.len(), 1, "the 16-rank head still waits");
    }

    #[test]
    fn calibration_tracks_the_wall_model_ratio() {
        let mut c = Calibration::new();
        assert_eq!(c.wall_secs(None, 2.0), 2.0, "uncalibrated is identity");
        for _ in 0..64 {
            c.observe(None, 1.0, 3.0);
        }
        assert!((c.ratio() - 3.0).abs() < 0.01, "converges to 3x");
        // Degenerate samples are ignored.
        let before = c.ratio();
        c.observe(None, 0.0, 5.0);
        c.observe(None, 1.0, 0.0);
        assert_eq!(c.ratio(), before);
    }

    #[test]
    fn interleaved_classes_converge_to_their_own_ratios() {
        // A small class running 8× slower than the model and a large
        // class running 2× slower, strictly interleaved: under a single
        // global EWMA each completion drags the shared ratio toward the
        // other regime, so neither class is ever priced correctly. With
        // per-class cells each converges to its own ratio.
        let small = ShapeClass::of(16, 64);
        let large = ShapeClass::of(16, 4096);
        let mut c = Calibration::new();
        for _ in 0..64 {
            c.observe(Some(small), 1.0, 8.0);
            c.observe(Some(large), 1.0, 2.0);
        }
        assert!(
            (c.ratio_for(Some(small)) - 8.0).abs() < 1e-9,
            "small class pinned to its own 8x regime, got {}",
            c.ratio_for(Some(small))
        );
        assert!(
            (c.ratio_for(Some(large)) - 2.0).abs() < 1e-9,
            "large class pinned to its own 2x regime, got {}",
            c.ratio_for(Some(large))
        );
        assert_eq!(
            c.wall_secs(Some(small), 2.0),
            2.0 * c.ratio_for(Some(small))
        );
        // The global EWMA sits strictly between the two regimes and is
        // what an unseen class falls back to.
        let unseen = ShapeClass::of(16, 1 << 20);
        let g = c.ratio_for(Some(unseen));
        assert_eq!(g, c.ratio(), "unseen class falls back to global");
        assert!(g > 2.0 && g < 8.0, "global blends the regimes, got {g}");
    }

    #[test]
    fn subgrids_are_near_square_factorizations() {
        assert_eq!(subgrid(1), GridShape::new(1, 1));
        assert_eq!(subgrid(2), GridShape::new(1, 2));
        assert_eq!(subgrid(4), GridShape::new(2, 2));
        assert_eq!(subgrid(8), GridShape::new(2, 4));
        assert_eq!(subgrid(16), GridShape::new(4, 4));
        assert_eq!(subgrid(7), GridShape::new(1, 7));
    }
}
