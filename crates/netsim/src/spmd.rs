//! SPMD execution of communication schedules on the simulated network.
//!
//! The pre-refactor simulator replayed each algorithm from a hand-written
//! central driver — a second copy of every schedule that had to be kept
//! in sync with the executable one by eye. This module removes the need
//! for that copy: it runs the *same* per-rank program the threaded
//! runtime runs, but over [`SimNet`] virtual clocks and phantom payloads
//! (sizes only, no data).
//!
//! [`SimWorld::run`] spawns one thread per simulated rank, hands each a
//! [`SimComm`] handle, and lets the ranks exchange messages through
//! tag-addressed mailboxes of [`crate::sim::PendingMsg`]s. Determinism does not
//! depend on thread scheduling: every [`SimNet`] operation only moves the
//! clock of the rank performing it (`isend` the sender, `deliver` the
//! receiver, `compute` the owner), so each rank's virtual timeline is a
//! function of its own program order plus which messages it matched —
//! both fixed by the algorithm, not by the interleaving. This is what
//! lets the SPMD path reproduce the old central-driver timings
//! bit-for-bit (see `tests/sim_golden_parity.rs` at the workspace root).
//!
//! Threads block on per-rank condition variables; a sender wakes only the
//! destination rank, so a `p`-rank simulation does `O(1)` wakeups per
//! message rather than `O(p)`. Stacks are kept small so `p = 4096` ranks
//! (the paper's Fig. 7 scale) fit comfortably.

use crate::sim::{SimNet, SimReport};
use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Mailbox key: `(context, src, dst, tag)`, world ranks. FIFO per key
/// gives MPI's non-overtaking guarantee, matching the runtime's mailboxes.
type MailKey = (u64, usize, usize, u64);

/// One split subgroup: `(child context, world ranks)`, keyed by color.
type SplitGroups = HashMap<u64, (u64, Arc<Vec<usize>>)>;

/// In-progress `split` rendezvous for one `(parent context, epoch)`.
struct SplitState {
    /// `(color, key)` deposited by each member of the parent group.
    table: Vec<Option<(u64, i64)>>,
    arrived: usize,
    departed: usize,
    /// Filled by the last arriver.
    groups: Option<SplitGroups>,
}

/// In-progress group barrier for one `(context, sequence number)`.
struct BarrierState {
    arrived: usize,
    departed: usize,
    done: bool,
}

struct WorldState {
    net: SimNet,
    mail: HashMap<MailKey, VecDeque<crate::sim::PendingMsg>>,
    splits: HashMap<(u64, u64), SplitState>,
    barriers: HashMap<(u64, u64), BarrierState>,
    /// Next fresh communicator context id (0 is the world context).
    next_ctx: u64,
}

/// A simulated machine shared by all rank threads of one SPMD run.
pub struct SimWorld {
    state: Mutex<WorldState>,
    /// One condition variable per world rank: senders wake only the
    /// destination, barriers and splits wake only their members.
    wake: Vec<Condvar>,
    gamma: f64,
    step_sync: bool,
}

impl SimWorld {
    /// Runs `f` as an SPMD program: one thread per rank of `net`, each
    /// receiving its own [`SimComm`] spanning the whole world. Returns
    /// the network (with all accounting) and the per-rank results.
    ///
    /// `gamma` is the virtual cost of one multiply-add pair in seconds
    /// (see [`SimComm::compute`]); `step_sync` makes
    /// [`SimComm::maybe_step_sync`] a world-wide clock alignment.
    pub fn run<R, F>(net: SimNet, gamma: f64, step_sync: bool, f: F) -> (SimNet, Vec<R>)
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        let p = net.size();
        let world = SimWorld {
            state: Mutex::new(WorldState {
                net,
                mail: HashMap::new(),
                splits: HashMap::new(),
                barriers: HashMap::new(),
                next_ctx: 1,
            }),
            wake: (0..p).map(|_| Condvar::new()).collect(),
            gamma,
            step_sync,
        };
        let members: Arc<Vec<usize>> = Arc::new((0..p).collect());
        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for rank in 0..p {
                let comm = SimComm {
                    world: &world,
                    ctx: 0,
                    members: members.clone(),
                    my_rank: rank,
                    epoch: Cell::new(0),
                    barrier_seq: Cell::new(0),
                };
                let f = &f;
                let handle = std::thread::Builder::new()
                    .name(format!("sim-rank-{rank}"))
                    // Schedules recurse shallowly; small stacks keep
                    // thousands of rank threads cheap.
                    .stack_size(512 * 1024)
                    .spawn_scoped(scope, move || f(&comm))
                    .expect("failed to spawn simulated rank thread");
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(r) => results[rank] = Some(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let state = world.state.into_inner().expect("no rank may hold the lock");
        assert!(
            state.mail.values().all(VecDeque::is_empty),
            "simulated program left undelivered messages behind"
        );
        (state.net, results.into_iter().map(Option::unwrap).collect())
    }

    fn lock(&self) -> MutexGuard<'_, WorldState> {
        self.state.lock().expect("a simulated rank panicked")
    }
}

/// One rank's handle onto a [`SimWorld`]: the simulator-substrate
/// counterpart of the runtime's `Comm`. Supports the same communicator
/// algebra (`rank`/`size`/`split`) plus phantom point-to-point transfers
/// that move virtual clocks instead of data.
pub struct SimComm<'w> {
    world: &'w SimWorld,
    ctx: u64,
    /// World ranks of this communicator's members, in rank order.
    members: Arc<Vec<usize>>,
    my_rank: usize,
    /// Per-communicator split counter (disambiguates successive splits).
    epoch: Cell<u64>,
    /// Per-communicator barrier counter (sequences successive barriers).
    barrier_seq: Cell<u64>,
}

impl<'w> SimComm<'w> {
    /// Rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of this communicator's rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    fn world_me(&self) -> usize {
        self.members[self.my_rank]
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> f64 {
        let st = self.world.lock();
        st.net.now(self.world_me())
    }

    /// Whether [`SimComm::maybe_step_sync`] aligns clocks.
    pub fn step_sync(&self) -> bool {
        self.world.step_sync
    }

    /// Sends `bytes` phantom payload bytes to `dst` (communicator rank):
    /// occupies this rank's clock for the transfer and enqueues the
    /// message for `dst`. Zero-byte messages model control traffic.
    pub fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) {
        let src_w = self.world_me();
        let dst_w = self.members[dst];
        let mut st = self.world.lock();
        let msg = st.net.isend(src_w, dst_w, bytes);
        st.mail
            .entry((self.ctx, src_w, dst_w, tag))
            .or_default()
            .push_back(msg);
        drop(st);
        self.world.wake[dst_w].notify_all();
    }

    /// Receives the next phantom message from `src` (communicator rank)
    /// with `tag`, blocking this rank's virtual clock until it arrives.
    /// Returns the payload size in bytes.
    pub fn recv_bytes(&self, src: usize, tag: u64) -> u64 {
        let src_w = self.members[src];
        let dst_w = self.world_me();
        let key = (self.ctx, src_w, dst_w, tag);
        let mut st = self.world.lock();
        loop {
            if let Some(msg) = st.mail.get_mut(&key).and_then(VecDeque::pop_front) {
                let bytes = msg.payload_bytes();
                st.net.deliver(dst_w, msg);
                return bytes;
            }
            st = self.world.wake[dst_w]
                .wait(st)
                .expect("a simulated rank panicked");
        }
    }

    /// Charges `pairs` multiply-add pairs of local compute to this rank's
    /// clock at the world's `γ` seconds per pair — the paper's compute
    /// model. `pairs` is fractional because non-GEMM kernels charge
    /// fractions of a cube (LU's diagonal factorization is `bs³/3` pairs,
    /// a triangular solve `m·bs²/2`). `flops` stamps the accounting only.
    pub fn compute(&self, pairs: f64, flops: u64) {
        let me = self.world_me();
        let seconds = self.world.gamma * pairs;
        let mut st = self.world.lock();
        st.net.compute_flops(me, seconds, flops);
    }

    /// Records a pivot-step span around `f` on this rank's trace track.
    pub fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        let me = self.world_me();
        let t0 = {
            let st = self.world.lock();
            st.net.now(me)
        };
        let out = f();
        let st = self.world.lock();
        st.net.record_step(me, k, outer, inner, t0, st.net.now(me));
        out
    }

    /// Aligns every member of this communicator to the group's latest
    /// clock; the wait is accounted as communication. No messages are
    /// modelled — this is the idealized barrier the analytic model uses.
    pub fn barrier(&self) {
        let seq = self.barrier_seq.get();
        self.barrier_seq.set(seq + 1);
        let key = (self.ctx, seq);
        let group = self.members.len();
        let me_w = self.world_me();
        let mut st = self.world.lock();
        let entry = st.barriers.entry(key).or_insert(BarrierState {
            arrived: 0,
            departed: 0,
            done: false,
        });
        entry.arrived += 1;
        if entry.arrived == group {
            entry.done = true;
            let members = self.members.clone();
            st.net.barrier_group(&members);
            for &m in members.iter() {
                if m != me_w {
                    self.world.wake[m].notify_all();
                }
            }
        } else {
            while !st.barriers[&key].done {
                st = self.world.wake[me_w]
                    .wait(st)
                    .expect("a simulated rank panicked");
            }
        }
        let entry = st.barriers.get_mut(&key).expect("barrier entry vanished");
        entry.departed += 1;
        if entry.departed == group {
            st.barriers.remove(&key);
        }
    }

    /// A world-wide clock alignment after a schedule step, if this run
    /// was configured with `step_sync` (the per-step-synchronized
    /// variants of the `sim_*` drivers); otherwise a no-op.
    pub fn maybe_step_sync(&self) {
        if self.world.step_sync {
            // Alignment is world-wide regardless of which communicator
            // the handle spans, matching the old drivers' `barrier_all`.
            let world_members = self.members.len() == self.world.wake.len();
            assert!(
                world_members,
                "maybe_step_sync must be called on the world communicator"
            );
            self.barrier();
        }
    }

    /// Splits this communicator by `color`; members of the new group are
    /// ordered by `(key, parent rank)`. Pure control plane: unlike the
    /// runtime's split (which gathers and broadcasts the color table in
    /// zero-byte messages), the simulator charges nothing, matching the
    /// analytic model.
    pub fn split(&self, color: u64, key: i64) -> SimComm<'w> {
        let epoch = self.epoch.get();
        self.epoch.set(epoch + 1);
        let rkey = (self.ctx, epoch);
        let group = self.members.len();
        let me_w = self.world_me();
        let mut st = self.world.lock();
        let entry = st.splits.entry(rkey).or_insert_with(|| SplitState {
            table: vec![None; group],
            arrived: 0,
            departed: 0,
            groups: None,
        });
        entry.table[self.my_rank] = Some((color, key));
        entry.arrived += 1;
        if entry.arrived == group {
            // Last arriver computes every color's membership and context.
            let table: Vec<(u64, i64)> = entry.table.iter().map(|e| e.unwrap()).collect();
            let mut colors: Vec<u64> = table.iter().map(|&(c, _)| c).collect();
            colors.sort_unstable();
            colors.dedup();
            let mut groups = HashMap::new();
            let mut next_ctx = st.next_ctx;
            for &c in &colors {
                let mut members: Vec<(i64, usize)> = table
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(mc, _))| mc == c)
                    .map(|(parent_rank, &(_, k))| (k, parent_rank))
                    .collect();
                members.sort_unstable();
                let world: Vec<usize> = members
                    .into_iter()
                    .map(|(_, parent_rank)| self.members[parent_rank])
                    .collect();
                groups.insert(c, (next_ctx, Arc::new(world)));
                next_ctx += 1;
            }
            st.next_ctx = next_ctx;
            let entry = st.splits.get_mut(&rkey).expect("split entry vanished");
            entry.groups = Some(groups);
            for &m in self.members.iter() {
                if m != me_w {
                    self.world.wake[m].notify_all();
                }
            }
        } else {
            while st.splits[&rkey].groups.is_none() {
                st = self.world.wake[me_w]
                    .wait(st)
                    .expect("a simulated rank panicked");
            }
        }
        let entry = st.splits.get_mut(&rkey).expect("split entry vanished");
        let (ctx, members) = entry.groups.as_ref().expect("groups just computed")[&color].clone();
        entry.departed += 1;
        if entry.departed == group {
            st.splits.remove(&rkey);
        }
        drop(st);
        let my_rank = members
            .iter()
            .position(|&w| w == me_w)
            .expect("caller must be a member of its own color group");
        SimComm {
            world: self.world,
            ctx,
            members,
            my_rank,
            epoch: Cell::new(0),
            barrier_seq: Cell::new(0),
        }
    }
}

/// Convenience wrapper: runs `f` SPMD over a fresh flat network and
/// returns the final [`SimReport`].
pub fn simulate<F>(p: usize, net: SimNet, gamma: f64, step_sync: bool, f: F) -> SimReport
where
    F: Fn(&SimComm) + Sync,
{
    assert_eq!(p, net.size(), "rank count must match the network");
    let (net, _) = SimWorld::run(net, gamma, step_sync, f);
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hockney;

    fn world(p: usize) -> SimNet {
        SimNet::new(p, Hockney::new(1e-3, 1e-6))
    }

    #[test]
    fn spmd_send_matches_central_driver() {
        // Central driver.
        let mut net = world(2);
        net.send(0, 1, 1000);
        let want = net.report();
        // SPMD program.
        let (net2, _) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, 1000);
            } else {
                assert_eq!(comm.recv_bytes(0, 7), 1000);
            }
        });
        assert_eq!(net2.report(), want);
    }

    #[test]
    fn messages_between_same_pair_are_fifo() {
        let (_, sizes) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                for b in [10, 20, 30] {
                    comm.send_bytes(1, 3, b);
                }
                vec![]
            } else {
                (0..3).map(|_| comm.recv_bytes(0, 3)).collect::<Vec<_>>()
            }
        });
        assert_eq!(sizes[1], vec![10, 20, 30]);
    }

    #[test]
    fn distinct_tags_do_not_interfere() {
        let (_, got) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 1, 111);
                comm.send_bytes(1, 2, 222);
                (0, 0)
            } else {
                // Receive in the opposite order of sending.
                let b2 = comm.recv_bytes(0, 2);
                let b1 = comm.recv_bytes(0, 1);
                (b1, b2)
            }
        });
        assert_eq!(got[1], (111, 222));
    }

    #[test]
    fn compute_charges_gamma_per_pair() {
        let gamma = 2e-9;
        let (net, _) = SimWorld::run(world(1), gamma, false, |comm| comm.compute(500.0, 1000));
        assert_eq!(net.report().comp_time, gamma * 500.0);
    }

    #[test]
    fn split_is_free_and_orders_by_key_then_parent_rank() {
        let (net, ranks) = SimWorld::run(world(4), 0.0, false, |comm| {
            // Two colors; reversed keys flip the rank order.
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, -(comm.rank() as i64));
            (sub.rank(), sub.size(), sub.world_rank_of(0))
        });
        // Color 0 holds world ranks {0, 2} with keys {0, -2}: rank order 2, 0.
        assert_eq!(ranks[0], (1, 2, 2));
        assert_eq!(ranks[2], (0, 2, 2));
        // Color 1 holds world ranks {1, 3} with keys {-1, -3}: order 3, 1.
        assert_eq!(ranks[1], (1, 2, 3));
        assert_eq!(ranks[3], (0, 2, 3));
        let r = net.report();
        assert_eq!((r.msgs, r.bytes), (0, 0), "split must cost nothing");
    }

    #[test]
    fn sub_communicator_messages_are_isolated() {
        let (net, _) = SimWorld::run(world(4), 0.0, false, |comm| {
            let sub = comm.split((comm.rank() / 2) as u64, comm.rank() as i64);
            if sub.rank() == 0 {
                comm.send_bytes(comm.rank() + 1, 5, 64); // world-context send
                sub.send_bytes(1, 5, 32); // same tag, sub-context
            } else {
                let w = comm.recv_bytes(comm.rank() - 1, 5);
                let s = sub.recv_bytes(0, 5);
                assert_eq!((w, s), (64, 32));
            }
        });
        assert_eq!(net.report().msgs, 4);
    }

    #[test]
    fn barrier_aligns_group_clocks() {
        let (net, _) = SimWorld::run(world(3), 1e-6, false, |comm| {
            if comm.rank() == 1 {
                comm.compute(1_000_000.0, 2_000_000); // 1 second ahead
            }
            comm.barrier();
            assert_eq!(comm.now(), 1.0);
        });
        let r = net.report();
        assert_eq!(r.msgs, 0, "barrier models no messages");
        assert_eq!(r.total_time, 1.0);
        assert_eq!(r.comm_time, 1.0, "waiting at the barrier is comm time");
    }

    #[test]
    fn successive_barriers_do_not_entangle() {
        let (net, _) = SimWorld::run(world(2), 1e-6, false, |comm| {
            for step in 0..3 {
                if comm.rank() == step % 2 {
                    comm.compute(1_000_000.0, 2_000_000);
                }
                comm.barrier();
            }
        });
        assert_eq!(net.report().total_time, 3.0);
    }

    #[test]
    #[should_panic(expected = "undelivered messages")]
    fn leftover_messages_are_detected() {
        let _ = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 9, 8);
            }
        });
    }
}
