//! SPMD execution of communication schedules on the simulated network.
//!
//! The pre-refactor simulator replayed each algorithm from a hand-written
//! central driver — a second copy of every schedule that had to be kept
//! in sync with the executable one by eye. This module removes the need
//! for that copy: it runs the *same* per-rank program the threaded
//! runtime runs, but over [`SimNet`] virtual clocks and phantom payloads
//! (sizes only, no data).
//!
//! [`SimWorld::run`] spawns one thread per simulated rank, hands each a
//! [`SimComm`] handle, and lets the ranks exchange messages through
//! tag-addressed mailboxes of [`crate::sim::PendingMsg`]s. Determinism does not
//! depend on thread scheduling: every [`SimNet`] operation only moves the
//! clock of the rank performing it (`isend` the sender, `deliver` the
//! receiver, `compute` the owner), so each rank's virtual timeline is a
//! function of its own program order plus which messages it matched —
//! both fixed by the algorithm, not by the interleaving. This is what
//! lets the SPMD path reproduce the old central-driver timings
//! bit-for-bit (see `tests/sim_golden_parity.rs` at the workspace root).
//!
//! Threads block on per-rank condition variables; a sender wakes only the
//! destination rank, so a `p`-rank simulation does `O(1)` wakeups per
//! message rather than `O(p)`. Stacks are kept small so `p = 4096` ranks
//! (the paper's Fig. 7 scale) fit comfortably.
//!
//! Like the threaded runtime, the simulated substrate is **fallible**:
//! every transfer returns `Result<_, CommError>`, a run can carry a
//! virtual-time deadline ([`SimRunOptions::deadline`]) and a
//! deterministic [`FaultPlan`] replayed at the send path — the same plan
//! type, with the same replay-cursor semantics, as the threaded runtime,
//! so one fault scenario can be compared across both substrates. A
//! blocked rank whose matching message will never come does not hang the
//! simulation: when every live rank is blocked, the world either advances
//! the stuck clocks to the deadline (turning the stall into per-rank
//! `CommError::Timeout`s) or, with no deadline set, panics with a
//! deadlock diagnosis.

use crate::sim::{SimNet, SimReport};
use hsumma_trace::{CommEdge, CommError, FaultDecision, FaultPlan, FaultState};
use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Mailbox key: `(context, src, dst, tag)`, world ranks. FIFO per key
/// gives MPI's non-overtaking guarantee, matching the runtime's mailboxes.
type MailKey = (u64, usize, usize, u64);

/// Ghost tag for the extra copy a `FaultAction::Duplicate` injects: no
/// receive ever matches it, mirroring the threaded runtime's reserved
/// duplicate tag, so a duplicate is stray wire traffic on both substrates
/// rather than a second deliverable copy.
const SIM_TAG_FAULT_DUP: u64 = u64::MAX;

const DEADLOCK_MSG: &str = "simulated program deadlocked: every live rank is blocked on a message \
     that can never arrive (set a deadline via SimRunOptions to turn stalls into timeouts)";

/// One split subgroup: `(child context, world ranks)`, keyed by color.
type SplitGroups = HashMap<u64, (u64, Arc<Vec<usize>>)>;

/// Failure policy for one simulated run: the virtual-time twin of the
/// runtime's `JobOptions`.
#[derive(Clone, Default)]
pub struct SimRunOptions {
    /// Virtual deadline in seconds. A rank still blocked when the world
    /// quiesces has its clock advanced to the deadline and fails with
    /// [`CommError::Timeout`]; a rank whose own clock passes the deadline
    /// fails at its next communication call.
    pub deadline: Option<f64>,
    /// Fault plan replayed at every rank's send path (same plan type and
    /// cursor semantics as the threaded runtime).
    pub faults: Option<Arc<FaultPlan>>,
}

impl SimRunOptions {
    /// Clean, unbounded options.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Sets the virtual deadline (seconds).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// What a simulated run produced: the network (with all accounting), the
/// per-rank results, and how many faults the plan actually injected —
/// comparable one-to-one with the threaded runtime's `faults_injected`
/// stats counter for substrate-parity checks.
pub struct SimOutcome<R> {
    /// The network after the run, with clocks and accounting final.
    pub net: SimNet,
    /// Per-rank results, indexed by rank.
    pub results: Vec<R>,
    /// Total faults injected across all ranks (kills count once).
    pub faults_injected: u64,
}

/// In-progress `split` rendezvous for one `(parent context, epoch)`.
struct SplitState {
    /// `(color, key)` deposited by each member of the parent group.
    table: Vec<Option<(u64, i64)>>,
    arrived: usize,
    departed: usize,
    /// Filled by the last arriver.
    groups: Option<SplitGroups>,
}

/// In-progress group barrier for one `(context, sequence number)`.
struct BarrierState {
    arrived: usize,
    departed: usize,
    done: bool,
}

struct WorldState {
    net: SimNet,
    mail: HashMap<MailKey, VecDeque<crate::sim::PendingMsg>>,
    splits: HashMap<(u64, u64), SplitState>,
    barriers: HashMap<(u64, u64), BarrierState>,
    /// Next fresh communicator context id (0 is the world context).
    next_ctx: u64,
    /// Ranks currently blocked on a condition variable *with no pending
    /// wake signal*. A notified-but-not-yet-scheduled rank is runnable,
    /// so it must not count towards quiescence.
    waiting: usize,
    /// Per-rank wake-signal generation: bumped (under the lock) whenever
    /// someone wakes that rank, so `park` can tell a real signal from a
    /// spurious wakeup and the quiescence census stays exact.
    signals: Vec<u64>,
    /// Whether each rank is currently parked with no pending signal
    /// (i.e. counted in `waiting`). Cleared by the *waker*, not the
    /// waker's target, so the census updates at signal time.
    parked: Vec<bool>,
    /// Ranks whose SPMD closure has returned (or unwound).
    finished: usize,
    /// Raised when the world quiesced with a deadline set: every blocked
    /// wait turns into a `Timeout` at the deadline.
    timed_out: bool,
    /// Raised when the world quiesced with no deadline: every blocked
    /// rank panics with a deadlock diagnosis.
    deadlocked: bool,
    /// Virtual deadline, if any.
    deadline: Option<f64>,
    /// Per-world-rank fault replay cursors, if a plan is attached.
    faults: Option<Vec<FaultState>>,
}

/// A simulated machine shared by all rank threads of one SPMD run.
pub struct SimWorld {
    state: Mutex<WorldState>,
    /// One condition variable per world rank: senders wake only the
    /// destination, barriers and splits wake only their members.
    wake: Vec<Condvar>,
    gamma: f64,
    step_sync: bool,
}

impl SimWorld {
    /// Runs `f` as an SPMD program: one thread per rank of `net`, each
    /// receiving its own [`SimComm`] spanning the whole world. Returns
    /// the network (with all accounting) and the per-rank results.
    ///
    /// `gamma` is the virtual cost of one multiply-add pair in seconds
    /// (see [`SimComm::compute`]); `step_sync` makes
    /// [`SimComm::maybe_step_sync`] a world-wide clock alignment.
    pub fn run<R, F>(net: SimNet, gamma: f64, step_sync: bool, f: F) -> (SimNet, Vec<R>)
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        let out = Self::run_with(net, gamma, step_sync, &SimRunOptions::default(), f);
        (out.net, out.results)
    }

    /// Like [`SimWorld::run`] with a failure policy: a virtual deadline
    /// and/or a fault plan (see [`SimRunOptions`]).
    ///
    /// # Panics
    /// Panics if the plan contains kill rules but no deadline is set (a
    /// killed rank's peers can only unblock by timing out), or if the
    /// program deadlocks with no deadline set.
    pub fn run_with<R, F>(
        net: SimNet,
        gamma: f64,
        step_sync: bool,
        opts: &SimRunOptions,
        f: F,
    ) -> SimOutcome<R>
    where
        R: Send,
        F: Fn(&SimComm) -> R + Sync,
    {
        let p = net.size();
        if let Some(plan) = &opts.faults {
            assert!(
                !plan.has_kills() || opts.deadline.is_some(),
                "kill faults require a deadline: a killed rank's peers can only unblock by timing out"
            );
        }
        // A run under faults or a deadline may legitimately leave
        // undelivered messages behind (dropped receives, ghost
        // duplicates, ranks that timed out mid-schedule).
        let relaxed = opts.deadline.is_some() || opts.faults.is_some();
        let fault_states = opts.faults.as_ref().map(|plan| {
            (0..p)
                .map(|r| FaultState::new(Arc::clone(plan), r))
                .collect()
        });
        let world = SimWorld {
            state: Mutex::new(WorldState {
                net,
                mail: HashMap::new(),
                splits: HashMap::new(),
                barriers: HashMap::new(),
                next_ctx: 1,
                waiting: 0,
                signals: vec![0; p],
                parked: vec![false; p],
                finished: 0,
                timed_out: false,
                deadlocked: false,
                deadline: opts.deadline,
                faults: fault_states,
            }),
            wake: (0..p).map(|_| Condvar::new()).collect(),
            gamma,
            step_sync,
        };
        let members: Arc<Vec<usize>> = Arc::new((0..p).collect());
        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for rank in 0..p {
                let comm = SimComm {
                    world: &world,
                    ctx: 0,
                    members: members.clone(),
                    my_rank: rank,
                    epoch: Cell::new(0),
                    barrier_seq: Cell::new(0),
                };
                let f = &f;
                let world = &world;
                let handle = std::thread::Builder::new()
                    .name(format!("sim-rank-{rank}"))
                    // Schedules recurse shallowly; small stacks keep
                    // thousands of rank threads cheap.
                    .stack_size(512 * 1024)
                    .spawn_scoped(scope, move || {
                        let out = f(&comm);
                        // This rank is done; if everyone still out is
                        // blocked, the world has quiesced — resolve it.
                        let mut st = world.lock();
                        st.finished += 1;
                        let dead = world.check_quiescence(&mut st);
                        drop(st);
                        if dead {
                            panic!("{DEADLOCK_MSG}");
                        }
                        out
                    })
                    .expect("failed to spawn simulated rank thread");
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(r) => results[rank] = Some(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let state = world.state.into_inner().expect("no rank may hold the lock");
        if !relaxed {
            assert!(
                state.mail.values().all(VecDeque::is_empty),
                "simulated program left undelivered messages behind"
            );
        }
        let faults_injected = state
            .faults
            .as_ref()
            .map(|v| v.iter().map(FaultState::injected).sum())
            .unwrap_or(0);
        SimOutcome {
            net: state.net,
            results: results.into_iter().map(Option::unwrap).collect(),
            faults_injected,
        }
    }

    fn lock(&self) -> MutexGuard<'_, WorldState> {
        self.state.lock().expect("a simulated rank panicked")
    }

    /// If every live rank is blocked, no message can ever arrive again:
    /// with a deadline, raise `timed_out` (blocked waits become
    /// `Timeout`s at the deadline); without one, raise `deadlocked`
    /// (blocked ranks panic). Returns the `deadlocked` flag so callers
    /// holding the lock can drop it before panicking.
    fn check_quiescence(&self, st: &mut WorldState) -> bool {
        if st.waiting + st.finished == self.wake.len()
            && st.waiting > 0
            && !st.timed_out
            && !st.deadlocked
        {
            if st.deadline.is_some() {
                st.timed_out = true;
            } else {
                st.deadlocked = true;
            }
            for cv in &self.wake {
                cv.notify_all();
            }
        }
        st.deadlocked
    }

    /// Bumps `m`'s wake-signal generation and notifies its condition
    /// variable. Must be called with the world lock held so the census
    /// and the signal move together.
    fn wake_rank(&self, st: &mut WorldState, m: usize) {
        st.signals[m] += 1;
        if st.parked[m] {
            // The target is runnable from this instant; take it out of
            // the census now rather than when it gets scheduled, or a
            // fast waker re-parking could trip a false quiescence.
            st.parked[m] = false;
            st.waiting -= 1;
        }
        self.wake[m].notify_all();
    }

    /// Parks `me_w` on its condition variable until someone signals it
    /// (or the world resolves a quiescence), maintaining the waiting
    /// census and running the quiescence check. Returns the reacquired
    /// guard plus the deadlock flag (callers drop the guard, then panic).
    fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, WorldState>,
        me_w: usize,
    ) -> (MutexGuard<'a, WorldState>, bool) {
        let gen = st.signals[me_w];
        st.parked[me_w] = true;
        st.waiting += 1;
        if self.check_quiescence(&mut st) {
            st.parked[me_w] = false;
            st.waiting -= 1;
            return (st, true);
        }
        while st.signals[me_w] == gen && !st.timed_out && !st.deadlocked {
            st = self.wake[me_w].wait(st).expect("a simulated rank panicked");
        }
        // A quiescence resolution (timeout/deadlock) wakes us without a
        // signal; clean up our own census entry in that case.
        if st.parked[me_w] {
            st.parked[me_w] = false;
            st.waiting -= 1;
        }
        let dead = st.deadlocked;
        (st, dead)
    }
}

/// One rank's handle onto a [`SimWorld`]: the simulator-substrate
/// counterpart of the runtime's `Comm`. Supports the same communicator
/// algebra (`rank`/`size`/`split`) plus phantom point-to-point transfers
/// that move virtual clocks instead of data.
pub struct SimComm<'w> {
    world: &'w SimWorld,
    ctx: u64,
    /// World ranks of this communicator's members, in rank order.
    members: Arc<Vec<usize>>,
    my_rank: usize,
    /// Per-communicator split counter (disambiguates successive splits).
    epoch: Cell<u64>,
    /// Per-communicator barrier counter (sequences successive barriers).
    barrier_seq: Cell<u64>,
}

impl<'w> SimComm<'w> {
    /// Rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of this communicator's rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    fn world_me(&self) -> usize {
        self.members[self.my_rank]
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> f64 {
        let st = self.world.lock();
        st.net.now(self.world_me())
    }

    /// Whether [`SimComm::maybe_step_sync`] aligns clocks.
    pub fn step_sync(&self) -> bool {
        self.world.step_sync
    }

    fn timeout(&self, rank_w: usize, peer_w: usize, tag: u64, op: &'static str) -> CommError {
        CommError::Timeout {
            edge: CommEdge {
                rank: rank_w,
                peer: peer_w,
                ctx: self.ctx,
                tag,
                epoch: 0,
            },
            op,
        }
    }

    /// Sends `bytes` phantom payload bytes to `dst` (communicator rank):
    /// occupies this rank's clock for the transfer and enqueues the
    /// message for `dst`. Zero-byte messages model control traffic.
    ///
    /// Fails with [`CommError::Timeout`] if this rank's clock is already
    /// past the deadline, and with [`CommError::Shutdown`] if the fault
    /// plan kills this rank at this send.
    pub fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) -> Result<(), CommError> {
        let src_w = self.world_me();
        let dst_w = self.members[dst];
        let mut st = self.world.lock();
        if let Some(d) = st.deadline {
            if st.net.now(src_w) >= d {
                return Err(self.timeout(src_w, dst_w, tag, "send"));
            }
        }
        // Fault injection: same replay-cursor semantics as the threaded
        // runtime (every send here is cursor-eligible — the simulator's
        // barrier/split bookkeeping sends no messages, matching the
        // tags the runtime excludes).
        let mut delay = None;
        let mut duplicate = false;
        if let Some(faults) = st.faults.as_mut() {
            match faults[src_w].on_send(dst_w, tag) {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => {
                    // The sender does the work; the message vanishes.
                    // Uncount it so the world send ledger matches what
                    // receivers can observe (threaded drops do not count
                    // `msgs_sent` either).
                    let msg = st.net.isend(src_w, dst_w, bytes);
                    st.net.uncount_send(msg.payload_bytes());
                    return Ok(());
                }
                FaultDecision::DeliverDelayed(s) => delay = Some(s),
                FaultDecision::DeliverTwice => duplicate = true,
                FaultDecision::Kill => {
                    return Err(CommError::Shutdown {
                        rank: src_w,
                        detail: "killed by fault plan at send".to_string(),
                    });
                }
            }
        }
        let mut msg = st.net.isend(src_w, dst_w, bytes);
        if let Some(s) = delay {
            msg.delay(s);
        }
        if duplicate {
            // Ghost copy on the reserved tag: enqueued but never matched
            // and never counted, mirroring the threaded runtime.
            st.mail
                .entry((self.ctx, src_w, dst_w, SIM_TAG_FAULT_DUP))
                .or_default()
                .push_back(msg);
        }
        st.mail
            .entry((self.ctx, src_w, dst_w, tag))
            .or_default()
            .push_back(msg);
        self.world.wake_rank(&mut st, dst_w);
        Ok(())
    }

    /// Receives the next phantom message from `src` (communicator rank)
    /// with `tag`, blocking this rank's virtual clock until it arrives.
    /// Returns the payload size in bytes.
    ///
    /// Fails with [`CommError::Timeout`] — naming the stalled edge — if
    /// the deadline passes first: because this rank's clock is already
    /// past it, because the matching message would arrive after it, or
    /// because the whole world quiesced with the message never sent.
    pub fn recv_bytes(&self, src: usize, tag: u64) -> Result<u64, CommError> {
        let src_w = self.members[src];
        let dst_w = self.world_me();
        let key = (self.ctx, src_w, dst_w, tag);
        let mut st = self.world.lock();
        loop {
            let d = st.deadline;
            // Deadline before matching, mirroring the runtime's mailbox.
            if let Some(d) = d {
                if st.net.now(dst_w) >= d {
                    return Err(self.timeout(dst_w, src_w, tag, "recv"));
                }
            }
            let head = st.mail.get(&key).and_then(|q| q.front().copied());
            if let Some(msg) = head {
                if let Some(d) = d {
                    if msg.arrival() > d {
                        // The wait for this message would cross the
                        // deadline: fail at the deadline, not at arrival.
                        st.net.wait_until(dst_w, d);
                        return Err(self.timeout(dst_w, src_w, tag, "recv"));
                    }
                }
                let msg = st
                    .mail
                    .get_mut(&key)
                    .and_then(VecDeque::pop_front)
                    .expect("head message vanished under the lock");
                let bytes = msg.payload_bytes();
                st.net.deliver(dst_w, msg);
                return Ok(bytes);
            }
            if st.timed_out {
                // World quiesced: this message will never be sent.
                if let Some(d) = d {
                    st.net.wait_until(dst_w, d);
                }
                return Err(self.timeout(dst_w, src_w, tag, "recv"));
            }
            let (guard, dead) = self.world.park(st, dst_w);
            st = guard;
            if dead {
                drop(st);
                panic!("{DEADLOCK_MSG}");
            }
        }
    }

    /// Non-blocking receive probe in *virtual* time: `Ok(Some(bytes))`
    /// when the next phantom message from `src` with `tag` has arrived
    /// by this rank's current virtual clock (it is then consumed and
    /// delivered, advancing the clock at most to its arrival),
    /// `Ok(None)` when it has not. A negative probe neither advances
    /// the clock nor charges waiting time — polling is free in virtual
    /// time, which is what lets the critical-path analyzer see a
    /// deferred completion as overlapped rather than serialized.
    ///
    /// Determinism: the probe's answer is a function of virtual clocks
    /// only, never of host-thread scheduling. When no matching message
    /// is queued yet the rank *parks in wall-clock time* (conservative
    /// parallel-discrete-event synchronization) until the sender's
    /// matching send is posted — whose virtual `arrival` then decides
    /// Some/None exactly — or the world quiesces. Parking costs no
    /// virtual time, so the probe is still "free"; it merely refuses to
    /// answer before the answer is determined.
    ///
    /// Fails with [`CommError::Timeout`] — naming the stalled edge —
    /// when the deadline has already passed or the world quiesced with
    /// no deliverable message, so a poll loop over a dropped broadcast
    /// diagnoses the stall instead of spinning forever.
    pub fn try_recv_bytes(&self, src: usize, tag: u64) -> Result<Option<u64>, CommError> {
        let src_w = self.members[src];
        let dst_w = self.world_me();
        let key = (self.ctx, src_w, dst_w, tag);
        let mut st = self.world.lock();
        loop {
            let d = st.deadline;
            if let Some(d) = d {
                if st.net.now(dst_w) >= d {
                    return Err(self.timeout(dst_w, src_w, tag, "try_recv"));
                }
            }
            let head = st.mail.get(&key).and_then(|q| q.front().copied());
            if let Some(msg) = head {
                if msg.arrival() <= st.net.now(dst_w) {
                    let msg = st
                        .mail
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .expect("head message vanished under the lock");
                    let bytes = msg.payload_bytes();
                    st.net.deliver(dst_w, msg);
                    return Ok(Some(bytes));
                }
                // Posted but virtually still in flight: a poll at this
                // rank's `now` deterministically sees nothing. Leave it
                // queued for the eventual wait.
                return Ok(None);
            }
            if st.net.now(src_w) > st.net.now(dst_w) {
                // The sender's clock is already past ours, so any send
                // it has yet to post departs later than our `now` and
                // cannot have arrived: deterministically None.
                return Ok(None);
            }
            if st.timed_out {
                // World quiesced: nothing further will arrive, and this
                // rank's clock will never advance to meet an in-flight
                // arrival. Fail at the deadline exactly like `recv_bytes`.
                if let Some(d) = d {
                    st.net.wait_until(dst_w, d);
                }
                return Err(self.timeout(dst_w, src_w, tag, "try_recv"));
            }
            let (guard, dead) = self.world.park(st, dst_w);
            st = guard;
            if dead {
                drop(st);
                panic!("{DEADLOCK_MSG}");
            }
        }
    }

    /// Charges `pairs` multiply-add pairs of local compute to this rank's
    /// clock at the world's `γ` seconds per pair — the paper's compute
    /// model. `pairs` is fractional because non-GEMM kernels charge
    /// fractions of a cube (LU's diagonal factorization is `bs³/3` pairs,
    /// a triangular solve `m·bs²/2`). `flops` stamps the accounting only.
    pub fn compute(&self, pairs: f64, flops: u64) {
        let me = self.world_me();
        let seconds = self.world.gamma * pairs;
        let mut st = self.world.lock();
        st.net.compute_flops(me, seconds, flops);
    }

    /// Records a pivot-step span around `f` on this rank's trace track.
    pub fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        let me = self.world_me();
        let t0 = {
            let st = self.world.lock();
            st.net.now(me)
        };
        let out = f();
        let st = self.world.lock();
        st.net.record_step(me, k, outer, inner, t0, st.net.now(me));
        out
    }

    /// Aligns every member of this communicator to the group's latest
    /// clock; the wait is accounted as communication. No messages are
    /// modelled — this is the idealized barrier the analytic model uses.
    ///
    /// Fails with [`CommError::Timeout`] if the deadline passes while
    /// waiting (e.g. a member died and will never arrive).
    pub fn barrier(&self) -> Result<(), CommError> {
        let seq = self.barrier_seq.get();
        self.barrier_seq.set(seq + 1);
        let key = (self.ctx, seq);
        let group = self.members.len();
        let me_w = self.world_me();
        let mut st = self.world.lock();
        if let Some(d) = st.deadline {
            if st.net.now(me_w) >= d {
                return Err(self.timeout(me_w, me_w, 0, "barrier"));
            }
        }
        let entry = st.barriers.entry(key).or_insert(BarrierState {
            arrived: 0,
            departed: 0,
            done: false,
        });
        entry.arrived += 1;
        if entry.arrived == group {
            entry.done = true;
            let members = self.members.clone();
            st.net.barrier_group(&members);
            for &m in members.iter() {
                if m != me_w {
                    self.world.wake_rank(&mut st, m);
                }
            }
        } else {
            while !st.barriers[&key].done {
                if st.timed_out {
                    if let Some(d) = st.deadline {
                        st.net.wait_until(me_w, d);
                    }
                    return Err(self.timeout(me_w, me_w, 0, "barrier"));
                }
                let (guard, dead) = self.world.park(st, me_w);
                st = guard;
                if dead {
                    drop(st);
                    panic!("{DEADLOCK_MSG}");
                }
            }
        }
        let entry = st.barriers.get_mut(&key).expect("barrier entry vanished");
        entry.departed += 1;
        if entry.departed == group {
            st.barriers.remove(&key);
        }
        Ok(())
    }

    /// A world-wide clock alignment after a schedule step, if this run
    /// was configured with `step_sync` (the per-step-synchronized
    /// variants of the `sim_*` drivers); otherwise a no-op.
    pub fn maybe_step_sync(&self) -> Result<(), CommError> {
        if self.world.step_sync {
            // Alignment is world-wide regardless of which communicator
            // the handle spans, matching the old drivers' `barrier_all`.
            let world_members = self.members.len() == self.world.wake.len();
            assert!(
                world_members,
                "maybe_step_sync must be called on the world communicator"
            );
            self.barrier()?;
        }
        Ok(())
    }

    /// Splits this communicator by `color`; members of the new group are
    /// ordered by `(key, parent rank)`. Pure control plane: unlike the
    /// runtime's split (which gathers and broadcasts the color table in
    /// zero-byte messages), the simulator charges nothing, matching the
    /// analytic model.
    ///
    /// Fails with [`CommError::Timeout`] if the deadline passes while
    /// waiting for the other members to arrive at the rendezvous.
    pub fn split(&self, color: u64, key: i64) -> Result<SimComm<'w>, CommError> {
        let epoch = self.epoch.get();
        self.epoch.set(epoch + 1);
        let rkey = (self.ctx, epoch);
        let group = self.members.len();
        let me_w = self.world_me();
        let mut st = self.world.lock();
        let entry = st.splits.entry(rkey).or_insert_with(|| SplitState {
            table: vec![None; group],
            arrived: 0,
            departed: 0,
            groups: None,
        });
        entry.table[self.my_rank] = Some((color, key));
        entry.arrived += 1;
        if entry.arrived == group {
            // Last arriver computes every color's membership and context.
            let table: Vec<(u64, i64)> = entry.table.iter().map(|e| e.unwrap()).collect();
            let mut colors: Vec<u64> = table.iter().map(|&(c, _)| c).collect();
            colors.sort_unstable();
            colors.dedup();
            let mut groups = HashMap::new();
            let mut next_ctx = st.next_ctx;
            for &c in &colors {
                let mut members: Vec<(i64, usize)> = table
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(mc, _))| mc == c)
                    .map(|(parent_rank, &(_, k))| (k, parent_rank))
                    .collect();
                members.sort_unstable();
                let world: Vec<usize> = members
                    .into_iter()
                    .map(|(_, parent_rank)| self.members[parent_rank])
                    .collect();
                groups.insert(c, (next_ctx, Arc::new(world)));
                next_ctx += 1;
            }
            st.next_ctx = next_ctx;
            let entry = st.splits.get_mut(&rkey).expect("split entry vanished");
            entry.groups = Some(groups);
            let members = self.members.clone();
            for &m in members.iter() {
                if m != me_w {
                    self.world.wake_rank(&mut st, m);
                }
            }
        } else {
            while st.splits[&rkey].groups.is_none() {
                if st.timed_out {
                    if let Some(d) = st.deadline {
                        st.net.wait_until(me_w, d);
                    }
                    return Err(self.timeout(me_w, me_w, 0, "split"));
                }
                let (guard, dead) = self.world.park(st, me_w);
                st = guard;
                if dead {
                    drop(st);
                    panic!("{DEADLOCK_MSG}");
                }
            }
        }
        let entry = st.splits.get_mut(&rkey).expect("split entry vanished");
        let (ctx, members) = entry.groups.as_ref().expect("groups just computed")[&color].clone();
        entry.departed += 1;
        if entry.departed == group {
            st.splits.remove(&rkey);
        }
        drop(st);
        let my_rank = members
            .iter()
            .position(|&w| w == me_w)
            .expect("caller must be a member of its own color group");
        Ok(SimComm {
            world: self.world,
            ctx,
            members,
            my_rank,
            epoch: Cell::new(0),
            barrier_seq: Cell::new(0),
        })
    }
}

/// Convenience wrapper: runs `f` SPMD over a fresh flat network and
/// returns the final [`SimReport`].
pub fn simulate<F>(p: usize, net: SimNet, gamma: f64, step_sync: bool, f: F) -> SimReport
where
    F: Fn(&SimComm) + Sync,
{
    assert_eq!(p, net.size(), "rank count must match the network");
    let (net, _) = SimWorld::run(net, gamma, step_sync, f);
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hockney;
    use hsumma_trace::TagClass;

    fn world(p: usize) -> SimNet {
        SimNet::new(p, Hockney::new(1e-3, 1e-6))
    }

    #[test]
    fn spmd_send_matches_central_driver() {
        // Central driver.
        let mut net = world(2);
        net.send(0, 1, 1000);
        let want = net.report();
        // SPMD program.
        let (net2, _) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, 1000).unwrap();
            } else {
                assert_eq!(comm.recv_bytes(0, 7).unwrap(), 1000);
            }
        });
        assert_eq!(net2.report(), want);
    }

    #[test]
    fn messages_between_same_pair_are_fifo() {
        let (_, sizes) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                for b in [10, 20, 30] {
                    comm.send_bytes(1, 3, b).unwrap();
                }
                vec![]
            } else {
                (0..3)
                    .map(|_| comm.recv_bytes(0, 3).unwrap())
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(sizes[1], vec![10, 20, 30]);
    }

    #[test]
    fn distinct_tags_do_not_interfere() {
        let (_, got) = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 1, 111).unwrap();
                comm.send_bytes(1, 2, 222).unwrap();
                (0, 0)
            } else {
                // Receive in the opposite order of sending.
                let b2 = comm.recv_bytes(0, 2).unwrap();
                let b1 = comm.recv_bytes(0, 1).unwrap();
                (b1, b2)
            }
        });
        assert_eq!(got[1], (111, 222));
    }

    #[test]
    fn compute_charges_gamma_per_pair() {
        let gamma = 2e-9;
        let (net, _) = SimWorld::run(world(1), gamma, false, |comm| comm.compute(500.0, 1000));
        assert_eq!(net.report().comp_time, gamma * 500.0);
    }

    #[test]
    fn split_is_free_and_orders_by_key_then_parent_rank() {
        let (net, ranks) = SimWorld::run(world(4), 0.0, false, |comm| {
            // Two colors; reversed keys flip the rank order.
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, -(comm.rank() as i64)).unwrap();
            (sub.rank(), sub.size(), sub.world_rank_of(0))
        });
        // Color 0 holds world ranks {0, 2} with keys {0, -2}: rank order 2, 0.
        assert_eq!(ranks[0], (1, 2, 2));
        assert_eq!(ranks[2], (0, 2, 2));
        // Color 1 holds world ranks {1, 3} with keys {-1, -3}: order 3, 1.
        assert_eq!(ranks[1], (1, 2, 3));
        assert_eq!(ranks[3], (0, 2, 3));
        let r = net.report();
        assert_eq!((r.msgs, r.bytes), (0, 0), "split must cost nothing");
    }

    #[test]
    fn sub_communicator_messages_are_isolated() {
        let (net, _) = SimWorld::run(world(4), 0.0, false, |comm| {
            let sub = comm
                .split((comm.rank() / 2) as u64, comm.rank() as i64)
                .unwrap();
            if sub.rank() == 0 {
                comm.send_bytes(comm.rank() + 1, 5, 64).unwrap(); // world-context send
                sub.send_bytes(1, 5, 32).unwrap(); // same tag, sub-context
            } else {
                let w = comm.recv_bytes(comm.rank() - 1, 5).unwrap();
                let s = sub.recv_bytes(0, 5).unwrap();
                assert_eq!((w, s), (64, 32));
            }
        });
        assert_eq!(net.report().msgs, 4);
    }

    #[test]
    fn barrier_aligns_group_clocks() {
        let (net, _) = SimWorld::run(world(3), 1e-6, false, |comm| {
            if comm.rank() == 1 {
                comm.compute(1_000_000.0, 2_000_000); // 1 second ahead
            }
            comm.barrier().unwrap();
            assert_eq!(comm.now(), 1.0);
        });
        let r = net.report();
        assert_eq!(r.msgs, 0, "barrier models no messages");
        assert_eq!(r.total_time, 1.0);
        assert_eq!(r.comm_time, 1.0, "waiting at the barrier is comm time");
    }

    #[test]
    fn successive_barriers_do_not_entangle() {
        let (net, _) = SimWorld::run(world(2), 1e-6, false, |comm| {
            for step in 0..3 {
                if comm.rank() == step % 2 {
                    comm.compute(1_000_000.0, 2_000_000);
                }
                comm.barrier().unwrap();
            }
        });
        assert_eq!(net.report().total_time, 3.0);
    }

    #[test]
    #[should_panic(expected = "undelivered messages")]
    fn leftover_messages_are_detected() {
        let _ = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 9, 8).unwrap();
            }
        });
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn stall_without_deadline_panics_with_deadlock_diagnosis() {
        let _ = SimWorld::run(world(2), 0.0, false, |comm| {
            if comm.rank() == 1 {
                // Wait for a message rank 0 never sends.
                let _ = comm.recv_bytes(0, 9);
            }
        });
    }

    #[test]
    fn stall_with_deadline_times_out_naming_the_edge() {
        let opts = SimRunOptions::default().with_deadline(2.5);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 1 {
                comm.recv_bytes(0, 9).map(|_| ())
            } else {
                Ok(())
            }
        });
        match &out.results[1] {
            Err(CommError::Timeout { edge, op }) => {
                assert_eq!((edge.rank, edge.peer, edge.tag), (1, 0, 9));
                assert_eq!(*op, "recv");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        // The blocked rank's clock was advanced to the deadline and the
        // wait charged as communication.
        assert_eq!(out.net.now(1), 2.5);
        assert_eq!(out.net.comm_of(1), 2.5);
        assert_eq!(out.faults_injected, 0);
    }

    #[test]
    fn dropped_message_times_out_the_receiver() {
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = SimRunOptions::default()
            .with_deadline(1.0)
            .with_faults(plan);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 100)?;
                Ok(0)
            } else {
                comm.recv_bytes(0, 4)
            }
        });
        assert!(out.results[0].is_ok());
        assert!(matches!(
            &out.results[1],
            Err(CommError::Timeout { edge, .. }) if edge.peer == 0
        ));
        assert_eq!(out.faults_injected, 1);
        // The dropped message is not in the world's send ledger.
        assert_eq!(out.net.report().msgs, 0);
    }

    #[test]
    fn killed_rank_shuts_down_and_peer_times_out() {
        let plan = Arc::new(FaultPlan::new().kill_rank(0, 0));
        let opts = SimRunOptions::default()
            .with_deadline(1.0)
            .with_faults(plan);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 100)?;
                Ok(0)
            } else {
                comm.recv_bytes(0, 4)
            }
        });
        assert!(matches!(
            &out.results[0],
            Err(CommError::Shutdown { rank: 0, .. })
        ));
        assert!(matches!(&out.results[1], Err(CommError::Timeout { .. })));
        assert_eq!(out.faults_injected, 1);
    }

    #[test]
    #[should_panic(expected = "kill faults require a deadline")]
    fn kills_without_deadline_are_rejected() {
        let plan = Arc::new(FaultPlan::new().kill_rank(0, 0));
        let opts = SimRunOptions::default().with_faults(plan);
        let _ = SimWorld::run_with(world(2), 0.0, false, &opts, |_| ());
    }

    #[test]
    fn delayed_message_arrives_late_but_within_deadline() {
        let plan = Arc::new(FaultPlan::new().delay_nth(Some(0), Some(1), TagClass::App, 0, 0.75));
        let opts = SimRunOptions::default()
            .with_deadline(10.0)
            .with_faults(plan);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 1000)?;
                Ok::<f64, CommError>(0.0)
            } else {
                comm.recv_bytes(0, 4)?;
                Ok(comm.now())
            }
        });
        let base = 1e-3 + 1000.0 * 1e-6; // α + m·β
        let arrived_at = out.results[1].as_ref().copied().unwrap();
        assert!(
            (arrived_at - (base + 0.75)).abs() < 1e-12,
            "expected delayed arrival, got {arrived_at}"
        );
        assert_eq!(out.faults_injected, 1);
    }

    #[test]
    fn delayed_message_beyond_deadline_times_out_at_the_deadline() {
        let plan = Arc::new(FaultPlan::new().delay_nth(Some(0), Some(1), TagClass::App, 0, 5.0));
        let opts = SimRunOptions::default()
            .with_deadline(2.0)
            .with_faults(plan);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 1000)?;
                Ok(())
            } else {
                comm.recv_bytes(0, 4).map(|_| ())
            }
        });
        assert!(matches!(&out.results[1], Err(CommError::Timeout { .. })));
        assert_eq!(out.net.now(1), 2.0, "failed at the deadline, not arrival");
    }

    #[test]
    fn duplicate_ghost_is_never_matched_and_run_completes() {
        let plan = Arc::new(FaultPlan::new().duplicate_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = SimRunOptions::default()
            .with_deadline(10.0)
            .with_faults(plan);
        let out = SimWorld::run_with(world(2), 0.0, false, &opts, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 50)?;
                comm.send_bytes(1, 4, 60)?;
                Ok::<Vec<u64>, CommError>(vec![])
            } else {
                Ok(vec![comm.recv_bytes(0, 4)?, comm.recv_bytes(0, 4)?])
            }
        });
        // FIFO preserved: the duplicate does not shift matching.
        assert_eq!(out.results[1].as_ref().unwrap(), &vec![50, 60]);
        assert_eq!(out.faults_injected, 1);
        // The ghost is not double-counted in the ledger.
        assert_eq!(out.net.report().msgs, 2);
    }

    #[test]
    fn same_plan_replays_identically() {
        let run = || {
            let plan = Arc::new(
                FaultPlan::new()
                    .drop_nth(Some(0), None, TagClass::Any, 1)
                    .kill_rank(2, 1),
            );
            let opts = SimRunOptions::default()
                .with_deadline(5.0)
                .with_faults(plan);
            let out = SimWorld::run_with(world(3), 0.0, false, &opts, |comm| {
                let next = (comm.rank() + 1) % 3;
                let prev = (comm.rank() + 2) % 3;
                for round in 0..3u64 {
                    comm.send_bytes(next, round, 10)?;
                    comm.recv_bytes(prev, round)?;
                }
                Ok(())
            });
            let kinds: Vec<Option<hsumma_trace::CommErrorKind>> = out
                .results
                .iter()
                .map(|r| r.as_ref().err().map(CommError::kind))
                .collect();
            (kinds, out.faults_injected)
        };
        assert_eq!(run(), run());
    }
}
