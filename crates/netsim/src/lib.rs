//! Discrete-event network simulator under the Hockney model.
//!
//! The paper's evaluation ran on platforms we cannot access (a 16-rack
//! BlueGene/P and the Grid5000 Graphene cluster). Its *analysis*, however,
//! is entirely in terms of the Hockney point-to-point model
//! `T(m) = α + m·β` (§IV). This crate turns that model into an executable
//! substrate:
//!
//! * [`model::Hockney`] / [`model::Platform`] — latency/bandwidth/compute
//!   parameters, with presets for the paper's three platforms (Grid5000,
//!   BlueGene/P, the exascale roadmap of §V-C);
//! * [`sim::SimNet`] — per-rank virtual clocks advanced message-by-message
//!   (eager sends: a sender is busy for `α + m·β`, the receiver waits for
//!   arrival), with communication and computation time accounted
//!   separately per rank;
//! * [`spmd`] — SPMD execution over the simulated network: one thread per
//!   rank, each holding a [`spmd::SimComm`] with the same communicator
//!   algebra as the real runtime's `Comm` (rank/size/split, tagged
//!   point-to-point, barriers), but carrying phantom payloads (sizes
//!   only) and advancing virtual clocks. This is what lets the *same*
//!   generic algorithm code run on both substrates — there is no longer a
//!   separate hand-written replay of each schedule;
//! * [`topology`] — an optional 3-D torus latency refinement (per-hop
//!   latency), the mechanism behind the "zigzags" the paper observes on
//!   BlueGene/P when a group layout maps badly onto the torus.
//!
//! The broadcast-algorithm selector ([`SimBcast`]) is the shared
//! [`hsumma_trace::BcastAlgorithm`]: one enum for both substrates, so the
//! runtime and the simulator cannot drift apart. The schedules themselves
//! live once, generically, in `hsumma-core`.
//!
//! Simulated clocks are `f64` seconds; the simulation is deterministic —
//! including under [`NoiseModel`] jitter, whose draws are keyed by
//! `(sender, message index)` rather than a global sequence.

pub mod model;
pub mod record;
pub mod replay;
pub mod sim;
pub mod spmd;
pub mod topology;

/// The shared broadcast-algorithm selector, re-exported under the name
/// the simulator APIs have always used.
pub use hsumma_trace::BcastAlgorithm as SimBcast;
pub use model::{Hockney, Platform};
pub use record::{record, Op, RecordComm, RecordedProgram};
pub use replay::{EventLoopSim, ReplayOutcome};
pub use sim::{NoiseModel, SimNet, SimReport};
pub use spmd::{SimComm, SimOutcome, SimRunOptions, SimWorld};
pub use topology::{Topology, Torus3D};
