//! Discrete-event network simulator under the Hockney model.
//!
//! The paper's evaluation ran on platforms we cannot access (a 16-rack
//! BlueGene/P and the Grid5000 Graphene cluster). Its *analysis*, however,
//! is entirely in terms of the Hockney point-to-point model
//! `T(m) = α + m·β` (§IV). This crate turns that model into an executable
//! substrate:
//!
//! * [`model::Hockney`] / [`model::Platform`] — latency/bandwidth/compute
//!   parameters, with presets for the paper's three platforms (Grid5000,
//!   BlueGene/P, the exascale roadmap of §V-C);
//! * [`sim::SimNet`] — per-rank virtual clocks advanced message-by-message
//!   (eager sends: a sender is busy for `α + m·β`, the receiver waits for
//!   arrival), with communication and computation time accounted
//!   separately per rank;
//! * [`collectives`] — the same broadcast algorithms as the real runtime
//!   (`hsumma-runtime`), replayed as timed message schedules over arbitrary
//!   rank subsets. Their simulated costs are validated against the closed
//!   forms the paper quotes (binomial: `log₂(p)(α+mβ)`; van de Geijn:
//!   `(log₂p + p−1)α + 2(p−1)/p·mβ`);
//! * [`topology`] — an optional 3-D torus latency refinement (per-hop
//!   latency), the mechanism behind the "zigzags" the paper observes on
//!   BlueGene/P when a group layout maps badly onto the torus.
//!
//! Simulated clocks are `f64` seconds; the simulation is deterministic.

pub mod collectives;
pub mod model;
pub mod sim;
pub mod topology;

pub use collectives::SimBcast;
pub use model::{Hockney, Platform};
pub use sim::{NoiseModel, SimNet, SimReport};
pub use topology::{Topology, Torus3D};
