//! The Hockney communication model and platform presets.
//!
//! Hockney's model (§IV of the paper, citing Hockney 1994) prices a
//! point-to-point message of `m` bytes at `α + m·β`, with `α` the latency
//! and `β` the reciprocal bandwidth. The paper validates its analysis with
//! concrete `(α, β)` pairs for each platform (§V-A.1, §V-B.1, §V-C); those
//! numbers are reproduced in the [`Platform`] presets.

/// Point-to-point communication cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hockney {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Reciprocal bandwidth in seconds per *byte*.
    pub beta: f64,
}

impl Hockney {
    /// Creates a model; both parameters must be non-negative.
    ///
    /// ```
    /// use hsumma_netsim::Hockney;
    ///
    /// let net = Hockney::new(1e-5, 1e-9);
    /// assert_eq!(net.time(0), 1e-5);            // pure latency
    /// assert!(net.time(1_000_000) > 1e-3);      // bandwidth dominates
    /// ```
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0,
            "Hockney parameters must be non-negative"
        );
        Hockney { alpha, beta }
    }

    /// Transfer time for a message of `bytes`.
    #[inline]
    pub fn time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

/// A simulated execution platform: network parameters plus per-core
/// compute speed.
///
/// `gamma` is the time of one *combined* floating-point multiply-add pair,
/// the paper's `γ` (§IV: "a combined floating point computation (for one
/// addition and multiplication) time is γ").
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Point-to-point cost model.
    pub net: Hockney,
    /// Seconds per multiply-add pair on one core.
    pub gamma: f64,
}

/// Size of one matrix element on the wire (`f64`).
pub const ELEM_BYTES: u64 = 8;

impl Platform {
    /// The Graphene cluster of Grid5000's Nancy site (§V-A.1).
    ///
    /// The paper gives `α = 1e-4 s` and reciprocal bandwidth `1e-9` *per
    /// matrix element* (its model-validation inequality `α/β > 2nb/p`
    /// only balances in element units), i.e. `1.25e-10 s/B`. γ is not
    /// used in the Grid5000 experiments (they report communication time
    /// only); we take ~2.5 Gpair/s, a 2009-era Xeon core.
    pub fn grid5000() -> Self {
        Platform {
            name: "Grid5000/Graphene",
            net: Hockney::new(1e-4, 1e-9 / ELEM_BYTES as f64),
            gamma: 4e-10,
        }
    }

    /// Shaheen BlueGene/P (§V-B.1): `α = 3e-6 s`, `β = 1e-9 s/element`
    /// (= `1.25e-10 s/B`; see [`Platform::grid5000`] on units).
    ///
    /// γ is calibrated from the paper's own measurement: on 16384 cores
    /// with `n = 65536` SUMMA spends `50.2 − 36.46 ≈ 13.7 s` computing,
    /// i.e. `13.7 / (n³/p) ≈ 8e-10 s` per multiply-add pair (≈ 2.5 GFLOP/s
    /// per 850 MHz PowerPC 450 core running ESSL DGEMM — consistent with
    /// ~73% of its 3.4 GFLOP/s peak).
    pub fn bluegene_p() -> Self {
        Platform {
            name: "BlueGene/P (Shaheen)",
            net: Hockney::new(3e-6, 1e-9 / ELEM_BYTES as f64),
            gamma: 8e-10,
        }
    }

    /// BlueGene/P with *measured-effective* broadcast parameters.
    ///
    /// The paper's quoted `(α, β)` under-predict its own measured times by
    /// ~two orders of magnitude (36.46 s of SUMMA communication cannot be
    /// produced by `β = 1e-9/element` under any log- or linear-depth
    /// schedule). On the physical torus, a 128-wide broadcast of ~1 MB
    /// panels is limited by root injection bandwidth and shared links —
    /// an effectively *serialized* distribution. Fitting that model
    /// (flat broadcast + per-step blocking) to the measured SUMMA
    /// communication time (36.46 s = 256 steps × 254 transfers ×
    /// (α + m·β) with m = 1 MiB) gives `β_eff ≈ 5.32e-10 s/B`
    /// (≈ 1.9 GB/s — consistent with a node's 6 × 425 MB/s torus links
    /// under contention). Use with `SimBcast::Flat` and per-step sync;
    /// HSUMMA numbers are then *predictions*, fitted only to SUMMA.
    pub fn bluegene_p_effective() -> Self {
        Platform {
            name: "BlueGene/P (measured-effective)",
            net: Hockney::new(3e-6, 5.32e-10),
            gamma: 8e-10,
        }
    }

    /// Grid5000/Graphene with *measured-effective* broadcast parameters.
    ///
    /// Fitted from the paper's two measured SUMMA endpoints on 128 cores
    /// (≈ 24 s at `b = 64`, 4.53 s at `b = 512`, `n = 8192`) under the
    /// serialized-distribution model: solving the two per-step equations
    /// gives `α_eff ≈ 7.9e-3 s` (per-transfer cost of MPICH broadcast
    /// stages over gigabit ethernet) and `β_eff ≈ 1.41e-9 s/B`
    /// (≈ 710 MB/s effective). Use with `SimBcast::Flat` + per-step sync.
    pub fn grid5000_effective() -> Self {
        Platform {
            name: "Grid5000/Graphene (measured-effective)",
            net: Hockney::new(7.9e-3, 1.41e-9),
            gamma: 4e-10,
        }
    }

    /// Exascale roadmap parameters (§V-C, citing the 2012 Japanese
    /// exascale architecture report): 500 ns latency, 100 GB/s links,
    /// 1 EFLOP/s aggregate over `p = 2²⁰` processors.
    pub fn exascale() -> Self {
        // 1e18 flop/s over 2^20 procs → 9.54e11 flop/s per proc →
        // 2.1e-12 s per multiply-add pair.
        Platform {
            name: "Exascale (roadmap)",
            net: Hockney::new(500e-9, 1e-11),
            gamma: 2.1e-12,
        }
    }

    /// Transfer time of `elems` matrix elements.
    #[inline]
    pub fn elem_time(&self, elems: u64) -> f64 {
        self.net.time(elems * ELEM_BYTES)
    }

    /// Compute time of `pairs` multiply-add pairs on one core.
    #[inline]
    pub fn compute_time(&self, pairs: u64) -> f64 {
        self.gamma * pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_time_is_affine_in_size() {
        let h = Hockney::new(1e-4, 1e-9);
        assert_eq!(h.time(0), 1e-4);
        let t1 = h.time(1000);
        let t2 = h.time(2000);
        assert!((t2 - t1 - 1000.0 * 1e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_rejected() {
        let _ = Hockney::new(-1.0, 0.0);
    }

    #[test]
    fn presets_match_paper_parameters() {
        // The paper's β values are per matrix element; ours are per byte.
        let g5k = Platform::grid5000();
        assert_eq!(g5k.net.alpha, 1e-4);
        assert_eq!(g5k.net.beta * ELEM_BYTES as f64, 1e-9);

        let bgp = Platform::bluegene_p();
        assert_eq!(bgp.net.alpha, 3e-6);
        assert_eq!(bgp.net.beta * ELEM_BYTES as f64, 1e-9);

        // The exascale preset is quoted directly in bytes (100 GB/s).
        let exa = Platform::exascale();
        assert_eq!(exa.net.alpha, 5e-7);
        assert_eq!(exa.net.beta, 1e-11);
    }

    #[test]
    fn platform_elem_time_uses_8_byte_elements() {
        // One element costs α + 8·β_byte = α + β_elem = α + 1e-9.
        let p = Platform::grid5000();
        assert!((p.elem_time(1) - (1e-4 + 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn bluegene_gamma_reproduces_paper_compute_time() {
        // SUMMA compute on BG/P: n³/p pairs per core should take ~13.7 s.
        let bgp = Platform::bluegene_p();
        let n: u64 = 65536;
        let p: u64 = 16384;
        let pairs = n * n * n / p;
        let t = bgp.compute_time(pairs);
        assert!((t - 13.7).abs() < 0.3, "got {t}");
    }
}
