//! Network topologies refining the point-to-point latency.
//!
//! The base simulation assumes a flat, fully connected, contention-free
//! network — exactly the assumption of the paper's analysis (§IV-C: "we
//! assume no contention and assume all the links are homogeneous").
//! BlueGene/P, however, is a 3-D torus, and the paper attributes the
//! "zigzags" of Fig. 8 to how communication layouts map onto that torus.
//! [`Torus3D`] adds a per-hop latency term so the simulator can reproduce
//! that effect qualitatively.

/// Maps a rank pair to the extra latency their route incurs.
pub trait Topology: Send {
    /// Additional one-way latency between two ranks, in seconds, added on
    /// top of the platform `α`.
    fn extra_latency(&self, src: usize, dst: usize) -> f64;

    /// Number of ranks the topology spans.
    fn size(&self) -> usize;
}

/// Fully connected network: no extra latency (the paper's model).
#[derive(Clone, Copy, Debug, Default)]
pub struct FullyConnected {
    /// Rank count (used only for bounds checking).
    pub ranks: usize,
}

impl Topology for FullyConnected {
    fn extra_latency(&self, _src: usize, _dst: usize) -> f64 {
        0.0
    }

    fn size(&self) -> usize {
        self.ranks
    }
}

/// A 3-D torus like BlueGene/P's interconnect: ranks are laid out in
/// `x × y × z` XYZ order and each hop costs `hop_latency` seconds.
#[derive(Clone, Copy, Debug)]
pub struct Torus3D {
    /// Extent in each dimension.
    pub dims: [usize; 3],
    /// Seconds per router hop. BlueGene/P measured ~100 ns per hop.
    pub hop_latency: f64,
}

impl Torus3D {
    /// Creates a torus; extents must be positive.
    pub fn new(dims: [usize; 3], hop_latency: f64) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "torus extents must be positive"
        );
        assert!(hop_latency >= 0.0);
        Torus3D { dims, hop_latency }
    }

    /// A near-cubic torus for `p` ranks (BG/P racks are arranged this way).
    ///
    /// # Panics
    /// Panics if `p` has no 3-factor decomposition covering it exactly
    /// (we pick the most cubic factorization of `p`).
    pub fn cubic(p: usize, hop_latency: f64) -> Self {
        let mut best: Option<[usize; 3]> = None;
        let mut best_score = usize::MAX;
        for x in 1..=p {
            if !p.is_multiple_of(x) {
                continue;
            }
            let yz = p / x;
            for y in 1..=yz {
                if !yz.is_multiple_of(y) {
                    continue;
                }
                let z = yz / y;
                // The most cubic factorization minimizes the max extent.
                let score = x.max(y).max(z);
                if score < best_score {
                    best_score = score;
                    best = Some([x, y, z]);
                }
            }
        }
        Torus3D::new(best.expect("p >= 1 always factorizes"), hop_latency)
    }

    /// Coordinates of `rank` in XYZ order.
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        let [dx, dy, _dz] = self.dims;
        [rank % dx, (rank / dx) % dy, rank / (dx * dy)]
    }

    /// Minimal hop count between two ranks (torus wrap-around included).
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let a = self.coords(src);
        let b = self.coords(dst);
        (0..3)
            .map(|d| {
                let dist = a[d].abs_diff(b[d]);
                dist.min(self.dims[d] - dist)
            })
            .sum()
    }
}

impl Topology for Torus3D {
    fn extra_latency(&self, src: usize, dst: usize) -> f64 {
        self.hops(src, dst) as f64 * self.hop_latency
    }

    fn size(&self) -> usize {
        self.dims.iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_has_zero_extra() {
        let t = FullyConnected { ranks: 8 };
        assert_eq!(t.extra_latency(0, 7), 0.0);
        assert_eq!(t.size(), 8);
    }

    #[test]
    fn torus_coords_roundtrip() {
        let t = Torus3D::new([4, 2, 3], 1e-7);
        for rank in 0..t.size() {
            let [x, y, z] = t.coords(rank);
            assert_eq!(rank, x + 4 * y + 8 * z);
        }
    }

    #[test]
    fn torus_hops_use_wraparound() {
        let t = Torus3D::new([8, 1, 1], 1e-7);
        // 0 -> 7 is one hop around the ring, not seven.
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(0, 3), 3);
    }

    #[test]
    fn torus_hops_symmetric_and_zero_on_self() {
        let t = Torus3D::new([4, 4, 4], 1e-7);
        for (a, b) in [(0, 63), (5, 37), (12, 12)] {
            assert_eq!(t.hops(a, b), t.hops(b, a));
        }
        assert_eq!(t.hops(9, 9), 0);
    }

    #[test]
    fn cubic_factorization_is_exact_and_balanced() {
        let t = Torus3D::cubic(64, 1e-7);
        assert_eq!(t.dims.iter().product::<usize>(), 64);
        assert_eq!(t.dims, [4, 4, 4]);

        let t = Torus3D::cubic(16384, 1e-7);
        assert_eq!(t.dims.iter().product::<usize>(), 16384);
        // 16384 = 2^14 -> most cubic split is 32x32x16 (max extent 32).
        assert_eq!(*t.dims.iter().max().unwrap(), 32);
    }

    #[test]
    fn extra_latency_scales_with_hops() {
        let t = Torus3D::new([4, 4, 1], 2e-7);
        assert!((t.extra_latency(0, 5) - 2.0 * 2e-7).abs() < 1e-15);
    }
}
