//! Threadless event-loop execution of recorded op programs.
//!
//! [`EventLoopSim`] runs the p programs of a [`RecordedProgram`] over a
//! [`SimNet`] with a single host thread: a binary heap of rank cursors
//! ordered by virtual clock (conservative PDES — O(log p) per
//! scheduling decision), per-rank program counters, and FIFO mailboxes
//! keyed `(channel, src, dst)`. Memory is O(p) cursor state plus the
//! in-flight mail — no stacks, which is what lets p = 2²⁰ replays run
//! under the default `vm.max_map_count`.
//!
//! **Parity contract.** Replay is bit-identical to the thread-per-rank
//! [`crate::spmd::SimWorld`] run of the same schedule: same
//! [`crate::SimReport`] (to the bit), same per-rank `(src, dst, bytes)`
//! trace multisets, same errors under deadlines and fault plans. The
//! argument: every [`SimNet`] operation moves only the acting rank's
//! clock, so each rank's float timeline is a function of its own op
//! order (fixed by the program) and of which messages it matched (fixed
//! by per-`(channel, src, dst)` FIFO order — the same non-overtaking
//! rule the SPMD mailboxes implement). Noise draws are keyed by
//! `(sender, per-sender sequence)`, both preserved here. The aggregate
//! `msgs`/`bytes` are order-free integer sums and the report's times are
//! per-rank maxima, so heap pop order is unobservable. Every
//! deadline/fault decision point below cites the `spmd.rs` behaviour it
//! mirrors.
//!
//! One deliberate divergence, observably identical: a
//! `FaultAction::Duplicate` ghost message is not enqueued (the SPMD
//! world queues it on a reserved tag that no receive ever matches and
//! never counts it — pure leftover mail, and the leftover assert is
//! relaxed under faults on both engines).

use crate::record::{Op, RecordedProgram};
use crate::sim::SimNet;
use crate::spmd::SimRunOptions;
use hsumma_trace::{CommEdge, CommError, FaultDecision, FaultState};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

const DEADLOCK_MSG: &str = "replayed program deadlocked: every live rank is blocked on a message \
     that can never arrive (set a deadline via SimRunOptions to turn stalls into timeouts)";

/// Outcome of a replay: the network with final accounting, the per-rank
/// errors (`None` = the rank's program completed), and the fault count —
/// all comparable one-to-one with [`crate::spmd::SimOutcome`].
pub struct ReplayOutcome {
    /// The network after the run, with clocks and accounting final.
    pub net: SimNet,
    /// Per-rank failure, if any: a rank that errors halts the remainder
    /// of its program, exactly as the SPMD closures `?`-propagate.
    pub errors: Vec<Option<CommError>>,
    /// Total faults injected across all ranks (kills count once).
    pub faults_injected: u64,
}

impl ReplayOutcome {
    /// The network's aggregate report.
    pub fn report(&self) -> crate::SimReport {
        self.net.report()
    }

    /// Asserts the replay was clean and returns the report.
    pub fn expect_clean(self) -> (SimNet, crate::SimReport) {
        for (r, e) in self.errors.iter().enumerate() {
            assert!(e.is_none(), "rank {r} failed during replay: {e:?}");
        }
        let report = self.net.report();
        (self.net, report)
    }
}

/// What a blocked rank is waiting on — enough to synthesize the same
/// `CommError::Timeout` the SPMD world produces when it quiesces.
#[derive(Clone, Copy)]
enum Blocked {
    /// Waiting for mail on `(chan, src)`.
    Recv { chan: u32, src: u32 },
    /// Waiting at a barrier on communicator `comm`.
    Barrier { comm: u32 },
    /// Waiting at a split rendezvous on communicator `comm`.
    Split { comm: u32 },
}

/// Heap key: total-ordered f64 clock (no NaNs arise — clocks are sums of
/// non-negative finite times), min-first via `Reverse` at the call site.
#[derive(PartialEq)]
struct ClockKey(f64);
impl Eq for ClockKey {}
impl PartialOrd for ClockKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ClockKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Rendezvous bookkeeping for one `(comm, seq, kind)` barrier or split.
struct Rendezvous {
    arrived: usize,
    waiters: Vec<usize>,
}

struct Replay<'p> {
    prog: &'p RecordedProgram,
    net: SimNet,
    gamma: f64,
    deadline: Option<f64>,
    faults: Option<Vec<FaultState>>,
    pc: Vec<usize>,
    blocked: Vec<Option<Blocked>>,
    finished: Vec<bool>,
    live: usize,
    errors: Vec<Option<CommError>>,
    /// Open pivot-step spans per rank: `(k, outer, inner, t0)`.
    steps: Vec<Vec<(u32, u32, u32, f64)>>,
    mail: HashMap<(u32, u32, u32), VecDeque<crate::sim::PendingMsg>>,
    /// `(comm, seq, kind)` → rendezvous state; kind 0 = barrier, 1 = split.
    rendezvous: HashMap<(u32, u32, u8), Rendezvous>,
    heap: BinaryHeap<std::cmp::Reverse<(ClockKey, usize)>>,
    queued: Vec<bool>,
}

/// The threadless replay engine: prices a [`RecordedProgram`] on a
/// [`SimNet`] at `gamma` seconds per multiply-add pair. The network and
/// γ are supplied at replay time — recordings are platform-independent.
pub struct EventLoopSim {
    net: SimNet,
    gamma: f64,
}

impl EventLoopSim {
    /// Wraps a network (optionally carrying a tracer, topology or noise
    /// model) for replay.
    ///
    /// # Panics
    /// At `run` time, if the network does not span the program's ranks.
    pub fn new(net: SimNet, gamma: f64) -> Self {
        EventLoopSim { net, gamma }
    }

    /// Executes every rank's program to completion (or failure) under
    /// `opts`, consuming the engine and returning the final network.
    ///
    /// # Panics
    /// Panics if the program deadlocks with no deadline set, if a clean
    /// run leaves undelivered mail behind, or if kill faults are
    /// configured without a deadline — the same contracts as
    /// [`crate::spmd::SimWorld::run_with`].
    pub fn run(self, prog: &RecordedProgram, opts: &SimRunOptions) -> ReplayOutcome {
        let p = prog.ranks();
        assert_eq!(self.net.size(), p, "network must span the program's ranks");
        if let Some(plan) = &opts.faults {
            assert!(
                !plan.has_kills() || opts.deadline.is_some(),
                "kill faults require a deadline: a killed rank's peers can only unblock by timing out"
            );
        }
        let relaxed = opts.deadline.is_some() || opts.faults.is_some();
        let faults = opts.faults.as_ref().map(|plan| {
            (0..p)
                .map(|r| FaultState::new(Arc::clone(plan), r))
                .collect()
        });
        let mut rp = Replay {
            prog,
            net: self.net,
            gamma: self.gamma,
            deadline: opts.deadline,
            faults,
            pc: vec![0; p],
            blocked: vec![None; p],
            finished: vec![false; p],
            live: p,
            errors: (0..p).map(|_| None).collect(),
            steps: vec![Vec::new(); p],
            mail: HashMap::new(),
            rendezvous: HashMap::new(),
            heap: BinaryHeap::with_capacity(p),
            queued: vec![false; p],
        };
        for r in 0..p {
            rp.push_runnable(r);
        }
        rp.drive();
        if !relaxed {
            assert!(
                rp.mail.values().all(VecDeque::is_empty),
                "replayed program left undelivered messages behind"
            );
        }
        let faults_injected = rp
            .faults
            .as_ref()
            .map(|v| v.iter().map(FaultState::injected).sum())
            .unwrap_or(0);
        ReplayOutcome {
            net: rp.net,
            errors: rp.errors,
            faults_injected,
        }
    }
}

impl<'p> Replay<'p> {
    fn push_runnable(&mut self, r: usize) {
        if !self.queued[r] && !self.finished[r] {
            self.queued[r] = true;
            self.heap
                .push(std::cmp::Reverse((ClockKey(self.net.now(r)), r)));
        }
    }

    fn drive(&mut self) {
        loop {
            while let Some(std::cmp::Reverse((_, r))) = self.heap.pop() {
                self.queued[r] = false;
                if !self.finished[r] && self.blocked[r].is_none() {
                    self.run_rank(r);
                }
            }
            if self.live == 0 {
                return;
            }
            // Quiescence: no rank is runnable and some are still live —
            // every live rank is blocked on something that can never
            // resolve. Mirrors SimWorld::check_quiescence: with a
            // deadline every blocked wait becomes a Timeout *at* the
            // deadline; without one, the deadlock diagnosis panics.
            let Some(d) = self.deadline else {
                panic!("{DEADLOCK_MSG}");
            };
            for r in 0..self.prog.ranks() {
                if self.finished[r] {
                    continue;
                }
                let b = self.blocked[r].take().expect("live rank must be blocked");
                self.net.wait_until(r, d);
                let err = match b {
                    Blocked::Recv { chan, src } => {
                        let (ctx, tag) = self.prog.chans[chan as usize];
                        timeout(r, src as usize, ctx, tag, "recv")
                    }
                    Blocked::Barrier { comm } => timeout(r, r, comm, 0, "barrier"),
                    Blocked::Split { comm } => timeout(r, r, comm, 0, "split"),
                };
                self.fail(r, err);
            }
        }
    }

    /// Fails `r`: record the error, close its open pivot-step spans
    /// (innermost first, spans ending at the rank's current clock —
    /// exactly what nested `trace_step`s record when their closure
    /// returns an `Err` the caller then `?`-propagates), and halt the
    /// rest of its program.
    fn fail(&mut self, r: usize, err: CommError) {
        while let Some((k, outer, inner, t0)) = self.steps[r].pop() {
            self.net.record_step(
                r,
                k as usize,
                outer as usize,
                inner as usize,
                t0,
                self.net.now(r),
            );
        }
        self.errors[r] = Some(err);
        self.finish(r);
    }

    fn finish(&mut self, r: usize) {
        if !self.finished[r] {
            self.finished[r] = true;
            self.live -= 1;
        }
    }

    /// Runs rank `r`'s program until it blocks, fails or completes.
    fn run_rank(&mut self, r: usize) {
        let program = &self.prog.programs[r];
        while let Some(&op) = program.get(self.pc[r]) {
            match op {
                Op::Send { chan, dst, bytes } => {
                    let (ctx, tag) = self.prog.chans[chan as usize];
                    // spmd send_bytes: the deadline check precedes the
                    // fault cursor, which precedes the clock work.
                    if let Some(d) = self.deadline {
                        if self.net.now(r) >= d {
                            self.fail(r, timeout(r, dst as usize, ctx, tag, "send"));
                            return;
                        }
                    }
                    let mut delay = None;
                    if let Some(faults) = self.faults.as_mut() {
                        match faults[r].on_send(dst as usize, tag) {
                            FaultDecision::Deliver => {}
                            FaultDecision::Drop => {
                                // The sender does the work (clock, noise
                                // draw, busy time); the message vanishes
                                // from the ledger and from every mailbox.
                                let msg = self.net.isend(r, dst as usize, bytes);
                                self.net.uncount_send(msg.payload_bytes());
                                self.pc[r] += 1;
                                continue;
                            }
                            FaultDecision::DeliverDelayed(s) => delay = Some(s),
                            FaultDecision::DeliverTwice => {
                                // Ghost copy deliberately not enqueued —
                                // see module docs.
                            }
                            FaultDecision::Kill => {
                                self.fail(
                                    r,
                                    CommError::Shutdown {
                                        rank: r,
                                        detail: "killed by fault plan at send".to_string(),
                                    },
                                );
                                return;
                            }
                        }
                    }
                    let mut msg = self.net.isend(r, dst as usize, bytes);
                    if let Some(s) = delay {
                        msg.delay(s);
                    }
                    self.mail
                        .entry((chan, r as u32, dst))
                        .or_default()
                        .push_back(msg);
                    self.pc[r] += 1;
                    // Wake the receiver iff it is blocked on exactly
                    // this (chan, src) — the SPMD world's targeted wake.
                    let dst = dst as usize;
                    if let Some(Blocked::Recv { chan: bc, src: bs }) = self.blocked[dst] {
                        if bc == chan && bs as usize == r {
                            self.blocked[dst] = None;
                            self.push_runnable(dst);
                        }
                    }
                }
                Op::Recv { chan, src, bytes } => {
                    let (ctx, tag) = self.prog.chans[chan as usize];
                    // spmd recv_bytes: own-clock deadline check first
                    // (no wait charged) …
                    if let Some(d) = self.deadline {
                        if self.net.now(r) >= d {
                            self.fail(r, timeout(r, src as usize, ctx, tag, "recv"));
                            return;
                        }
                    }
                    let key = (chan, src, r as u32);
                    let head = self.mail.get(&key).and_then(|q| q.front().copied());
                    let Some(msg) = head else {
                        self.blocked[r] = Some(Blocked::Recv { chan, src });
                        return;
                    };
                    // … then the arrival-past-deadline check, which
                    // *does* advance the clock to the deadline.
                    if let Some(d) = self.deadline {
                        if msg.arrival() > d {
                            self.net.wait_until(r, d);
                            self.fail(r, timeout(r, src as usize, ctx, tag, "recv"));
                            return;
                        }
                    }
                    let q = self.mail.get_mut(&key).expect("head mail vanished");
                    let msg = q.pop_front().expect("head mail vanished");
                    if q.is_empty() {
                        // Keep the mailbox map O(in-flight), not
                        // O(every channel ever used) — at p = 2²⁰ the
                        // drained queues dominate memory otherwise.
                        self.mail.remove(&key);
                    }
                    if bytes != u64::MAX {
                        assert_eq!(msg.payload_bytes(), bytes, "phantom payload size mismatch");
                    }
                    self.net.deliver(r, msg);
                    self.pc[r] += 1;
                }
                Op::Compute { pairs, flops } => {
                    // spmd compute: no deadline check.
                    self.net.compute_flops(r, self.gamma * pairs, flops);
                    self.pc[r] += 1;
                }
                Op::Barrier { comm, seq } => {
                    // spmd barrier: entry deadline check before the
                    // arrival deposit; the last arriver aligns the group
                    // unconditionally.
                    if let Some(d) = self.deadline {
                        if self.net.now(r) >= d {
                            self.fail(r, timeout(r, r, comm, 0, "barrier"));
                            return;
                        }
                    }
                    self.pc[r] += 1;
                    if !self.arrive(r, comm, seq, 0) {
                        return;
                    }
                }
                Op::Split { comm, seq } => {
                    // spmd split: pure rendezvous — no entry deadline
                    // check, no clock effect. It must still hold ranks
                    // back so fault/deadline quiescence sees the same
                    // blocked set as the threaded world.
                    self.pc[r] += 1;
                    if !self.arrive(r, comm, seq, 1) {
                        return;
                    }
                }
                Op::StepPush { k, outer, inner } => {
                    self.steps[r].push((k, outer, inner, self.net.now(r)));
                    self.pc[r] += 1;
                }
                Op::StepPop => {
                    let (k, outer, inner, t0) =
                        self.steps[r].pop().expect("unbalanced pivot-step spans");
                    self.net.record_step(
                        r,
                        k as usize,
                        outer as usize,
                        inner as usize,
                        t0,
                        self.net.now(r),
                    );
                    self.pc[r] += 1;
                }
            }
        }
        debug_assert!(self.steps[r].is_empty(), "unbalanced pivot-step spans");
        self.finish(r);
    }

    /// Deposits `r`'s arrival at rendezvous `(comm, seq, kind)`. Returns
    /// `true` if the rank may continue (it completed the rendezvous),
    /// `false` if it blocked waiting for the remaining members (its pc
    /// has already advanced past the op; a wake simply resumes it).
    fn arrive(&mut self, r: usize, comm: u32, seq: u32, kind: u8) -> bool {
        let group = self.prog.comms[comm as usize].len();
        let rv = self
            .rendezvous
            .entry((comm, seq, kind))
            .or_insert(Rendezvous {
                arrived: 0,
                waiters: Vec::new(),
            });
        rv.arrived += 1;
        if rv.arrived < group {
            rv.waiters.push(r);
            self.blocked[r] = Some(if kind == 0 {
                Blocked::Barrier { comm }
            } else {
                Blocked::Split { comm }
            });
            return false;
        }
        let rv = self
            .rendezvous
            .remove(&(comm, seq, kind))
            .expect("rendezvous vanished");
        if kind == 0 {
            let members = Arc::clone(&self.prog.comms[comm as usize]);
            self.net.barrier_group(&members);
        }
        for w in rv.waiters {
            self.blocked[w] = None;
            self.push_runnable(w);
        }
        true
    }
}

fn timeout(rank: usize, peer: usize, ctx: u32, tag: u64, op: &'static str) -> CommError {
    CommError::Timeout {
        edge: CommEdge {
            rank,
            peer,
            ctx: ctx as u64,
            tag,
            epoch: 0,
        },
        op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hockney;
    use crate::record::record;
    use crate::spmd::SimWorld;
    use hsumma_trace::{FaultPlan, TagClass};

    fn net(p: usize) -> SimNet {
        SimNet::new(p, Hockney::new(1e-3, 1e-6))
    }

    #[test]
    fn replay_matches_threaded_point_to_point_bitwise() {
        let spmd = |comm: &crate::spmd::SimComm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, 1000).unwrap();
            } else {
                assert_eq!(comm.recv_bytes(0, 7).unwrap(), 1000);
            }
        };
        let (threaded, _) = SimWorld::run(net(2), 0.0, false, spmd);
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, 1000)
            } else {
                comm.recv_bytes_expect(0, 7, 1000)
            }
        });
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &SimRunOptions::unbounded());
        let (_, report) = out.expect_clean();
        assert_eq!(report, threaded.report());
    }

    #[test]
    fn fifo_and_distinct_tags_behave_like_mailboxes() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 1, 10)?;
                comm.send_bytes(1, 1, 20)?;
                comm.send_bytes(1, 2, 99)?;
            } else {
                // Opposite-order tags, in-order FIFO within a tag.
                comm.recv_bytes_expect(0, 2, 99)?;
                comm.recv_bytes_expect(0, 1, 10)?;
                comm.recv_bytes_expect(0, 1, 20)?;
            }
            Ok(())
        });
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &SimRunOptions::unbounded());
        out.expect_clean();
    }

    #[test]
    fn barrier_aligns_clocks_like_threaded() {
        let gamma = 1e-6;
        let (threaded, _) = SimWorld::run(net(3), gamma, false, |comm| {
            if comm.rank() == 1 {
                comm.compute(1_000_000.0, 2_000_000);
            }
            comm.barrier().unwrap();
        });
        let prog = record(3, false, |comm| {
            if comm.rank() == 1 {
                comm.compute(1_000_000.0, 2_000_000);
            }
            comm.barrier()
        });
        let out = EventLoopSim::new(net(3), gamma).run(&prog, &SimRunOptions::unbounded());
        let (_, report) = out.expect_clean();
        assert_eq!(report, threaded.report());
    }

    #[test]
    fn stalled_recv_times_out_naming_the_edge() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 1 {
                // Record against a phantom partner so the recv exists in
                // the program; replay under a plan that drops the send.
                comm.recv_bytes_unchecked(0, 9)?;
            } else {
                comm.send_bytes(1, 9, 8)?;
            }
            Ok(())
        });
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = SimRunOptions::unbounded()
            .with_deadline(2.5)
            .with_faults(plan);
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &opts);
        assert!(out.errors[0].is_none());
        match out.errors[1].as_ref().expect("receiver times out") {
            CommError::Timeout { edge, op } => {
                assert_eq!((edge.rank, edge.peer, edge.tag), (1, 0, 9));
                assert_eq!(*op, "recv");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(out.net.now(1), 2.5);
        assert_eq!(out.net.comm_of(1), 2.5);
        assert_eq!(out.faults_injected, 1);
        // The dropped message is not in the send ledger.
        assert_eq!(out.net.report().msgs, 0);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn unresolvable_stall_without_deadline_panics() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 1 {
                comm.recv_bytes_unchecked(0, 9)?;
            } else {
                comm.send_bytes(1, 9, 8)?;
            }
            Ok(())
        });
        let plan = Arc::new(FaultPlan::new().drop_nth(Some(0), Some(1), TagClass::App, 0));
        // No deadline: the dropped message leaves rank 1 stuck forever.
        let opts = SimRunOptions::unbounded().with_faults(plan);
        let _ = EventLoopSim::new(net(2), 0.0).run(&prog, &opts);
    }

    #[test]
    fn killed_rank_shuts_down_and_peer_times_out() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 100)?;
            } else {
                comm.recv_bytes_unchecked(0, 4)?;
            }
            Ok(())
        });
        let plan = Arc::new(FaultPlan::new().kill_rank(0, 0));
        let opts = SimRunOptions::unbounded()
            .with_deadline(1.0)
            .with_faults(plan);
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &opts);
        assert!(matches!(
            out.errors[0],
            Some(CommError::Shutdown { rank: 0, .. })
        ));
        assert!(matches!(out.errors[1], Some(CommError::Timeout { .. })));
        assert_eq!(out.faults_injected, 1);
    }

    #[test]
    fn delayed_message_beyond_deadline_times_out_at_the_deadline() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 1000)?;
            } else {
                comm.recv_bytes_unchecked(0, 4)?;
            }
            Ok(())
        });
        let plan = Arc::new(FaultPlan::new().delay_nth(Some(0), Some(1), TagClass::App, 0, 5.0));
        let opts = SimRunOptions::unbounded()
            .with_deadline(2.0)
            .with_faults(plan);
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &opts);
        assert!(matches!(out.errors[1], Some(CommError::Timeout { .. })));
        assert_eq!(out.net.now(1), 2.0, "failed at the deadline, not arrival");
    }

    #[test]
    fn duplicate_counts_as_injected_but_not_in_the_ledger() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, 50)?;
                comm.send_bytes(1, 4, 60)?;
            } else {
                comm.recv_bytes_expect(0, 4, 50)?;
                comm.recv_bytes_expect(0, 4, 60)?;
            }
            Ok(())
        });
        let plan = Arc::new(FaultPlan::new().duplicate_nth(Some(0), Some(1), TagClass::App, 0));
        let opts = SimRunOptions::unbounded()
            .with_deadline(10.0)
            .with_faults(plan);
        let out = EventLoopSim::new(net(2), 0.0).run(&prog, &opts);
        assert!(out.errors.iter().all(Option::is_none));
        assert_eq!(out.faults_injected, 1);
        assert_eq!(out.net.report().msgs, 2);
    }

    #[test]
    fn noise_draws_match_the_threaded_engine() {
        use crate::sim::NoiseModel;
        let spmd = |comm: &crate::spmd::SimComm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send_bytes(1, i, 1000).unwrap();
                }
            } else {
                for i in 0..10u64 {
                    comm.recv_bytes(0, i).unwrap();
                }
            }
        };
        let mut tnet = net(2);
        tnet.set_noise(NoiseModel::new(42, 0.3));
        let (threaded, _) = SimWorld::run(tnet, 0.0, false, spmd);
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send_bytes(1, i, 1000)?;
                }
            } else {
                for i in 0..10u64 {
                    comm.recv_bytes_unchecked(0, i)?;
                }
            }
            Ok(())
        });
        let mut rnet = net(2);
        rnet.set_noise(NoiseModel::new(42, 0.3));
        let out = EventLoopSim::new(rnet, 0.0).run(&prog, &SimRunOptions::unbounded());
        let (_, report) = out.expect_clean();
        assert_eq!(report, threaded.report());
    }

    #[test]
    #[should_panic(expected = "undelivered messages")]
    fn leftover_mail_is_detected_on_clean_runs() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 9, 8)?;
            }
            Ok(())
        });
        let _ = EventLoopSim::new(net(2), 0.0).run(&prog, &SimRunOptions::unbounded());
    }
}
