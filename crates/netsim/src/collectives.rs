//! Timed message schedules of the broadcast algorithms.
//!
//! Mirrors `hsumma-runtime`'s collectives message-for-message, but instead
//! of moving data it advances [`SimNet`] clocks. Each schedule operates on
//! an arbitrary subset of ranks (`group`), because SUMMA broadcasts along
//! grid rows/columns and HSUMMA additionally along inter-group
//! communicators.
//!
//! The costs on a fresh, flat network are validated against the closed
//! forms the paper uses (§IV):
//!
//! * binomial tree: `⌈log₂ p⌉ · (α + m·β)`
//! * van de Geijn: `(log₂ p + p − 1)·α + 2·(p−1)/p·m·β`

use crate::sim::SimNet;

/// Broadcast algorithm selector for the simulator. Matches
/// `hsumma_runtime::BcastAlgorithm` case-for-case so executable and
/// simulated configurations stay interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimBcast {
    /// Root sends `p−1` full copies.
    Flat,
    /// Binomial tree, `⌈log₂ p⌉` rounds.
    Binomial,
    /// Balanced binary tree.
    Binary,
    /// Linear chain, full message per hop.
    Ring,
    /// Linear chain, payload cut into segments.
    Pipelined {
        /// Number of pipeline segments (≥ 1).
        segments: usize,
    },
    /// Van de Geijn scatter + ring allgather (long-message algorithm).
    ScatterAllgather,
}

impl SimBcast {
    /// Simulates broadcasting `bytes` from `group[root]` to every rank in
    /// `group` and returns the time at which the *last* rank has the data.
    ///
    /// # Panics
    /// Panics if `group` is empty or `root >= group.len()`.
    pub fn run(self, net: &mut SimNet, group: &[usize], root: usize, bytes: u64) -> f64 {
        assert!(!group.is_empty(), "empty broadcast group");
        assert!(root < group.len(), "root index out of range");
        let p = group.len();
        if p == 1 {
            return net.now(group[0]);
        }
        match self {
            SimBcast::Flat => flat(net, group, root, bytes),
            SimBcast::Binomial => binomial(net, group, root, bytes),
            SimBcast::Binary => binary(net, group, root, bytes),
            SimBcast::Ring => pipelined(net, group, root, bytes, 1),
            SimBcast::Pipelined { segments } => pipelined(net, group, root, bytes, segments),
            SimBcast::ScatterAllgather => scatter_allgather(net, group, root, bytes),
        }
        group.iter().map(|&r| net.now(r)).fold(0.0, f64::max)
    }
}

/// Translates a virtual rank (root ≡ 0) to a world rank.
#[inline]
fn world(group: &[usize], root: usize, vrank: usize) -> usize {
    group[(vrank + root) % group.len()]
}

fn flat(net: &mut SimNet, group: &[usize], root: usize, bytes: u64) {
    for v in 1..group.len() {
        net.send(world(group, root, 0), world(group, root, v), bytes);
    }
}

/// Issue order follows rounds (mask ascending); within a round each sender
/// relays to its subtree peer. The clock dependencies produce the classic
/// `⌈log₂ p⌉` critical path.
fn binomial(net: &mut SimNet, group: &[usize], root: usize, bytes: u64) {
    let p = group.len();
    let mut mask = 1usize;
    while mask < p {
        // Ranks below `mask` already hold the data and send to vrank+mask.
        for v in 0..mask {
            let dst = v + mask;
            if dst < p {
                net.send(world(group, root, v), world(group, root, dst), bytes);
            }
        }
        mask <<= 1;
    }
}

fn binary(net: &mut SimNet, group: &[usize], root: usize, bytes: u64) {
    let p = group.len();
    // BFS order guarantees a parent's clock is final before its children's
    // sends are issued.
    for v in 0..p {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < p {
                net.send(world(group, root, v), world(group, root, child), bytes);
            }
        }
    }
}

/// Chunk of `bytes` assigned to piece `i` of `n` (first `bytes % n` pieces
/// get one extra byte) — same dealing rule as the runtime's `chunk_range`.
fn chunk_bytes(bytes: u64, n: usize, i: usize) -> u64 {
    let n = n as u64;
    let i = i as u64;
    bytes / n + u64::from(i < bytes % n)
}

fn pipelined(net: &mut SimNet, group: &[usize], root: usize, bytes: u64, segments: usize) {
    assert!(segments >= 1, "need at least one segment");
    let p = group.len();
    let segments = segments.min(bytes.max(1) as usize);
    for s in 0..segments {
        let seg = chunk_bytes(bytes, segments, s);
        for v in 0..p - 1 {
            net.send(world(group, root, v), world(group, root, v + 1), seg);
        }
    }
}

fn scatter_allgather(net: &mut SimNet, group: &[usize], root: usize, bytes: u64) {
    let p = group.len();

    // Binomial scatter: vrank v relays the chunks [v, v+extent) where
    // extent is v's lowest set bit (clipped); the root covers everything.
    let p2 = p.next_power_of_two();
    // Issue in rounds: mask descending from p2/2; sender set grows as in
    // the broadcast tree mirrored.
    let mut mask = p2 >> 1;
    while mask > 0 {
        for v in (0..p).step_by(2 * mask.max(1)) {
            let child = v + mask;
            if child < p {
                let hi = (child + mask).min(p);
                let payload: u64 = (child..hi).map(|c| chunk_bytes(bytes, p, c)).sum();
                net.send(world(group, root, v), world(group, root, child), payload);
            }
        }
        mask >>= 1;
    }

    // Ring allgather: p−1 rounds; every rank sends chunk (v−k) to v+1 and
    // receives chunk (v−k−1) from v−1. Sends are issued before waits.
    for k in 0..p - 1 {
        let pending: Vec<_> = (0..p)
            .map(|v| {
                let chunk = (v + p - k) % p;
                net.isend(
                    world(group, root, v),
                    world(group, root, (v + 1) % p),
                    chunk_bytes(bytes, p, chunk),
                )
            })
            .collect();
        for (v, msg) in pending.into_iter().enumerate() {
            net.deliver(world(group, root, (v + 1) % p), msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Hockney;

    const ALPHA: f64 = 1e-3;
    const BETA: f64 = 1e-6;

    fn fresh(p: usize) -> SimNet {
        SimNet::new(p, Hockney::new(ALPHA, BETA))
    }

    fn t(bytes: u64) -> f64 {
        ALPHA + bytes as f64 * BETA
    }

    #[test]
    fn binomial_matches_closed_form_on_powers_of_two() {
        for p in [2usize, 4, 8, 16, 64] {
            let mut net = fresh(p);
            let group: Vec<usize> = (0..p).collect();
            let done = SimBcast::Binomial.run(&mut net, &group, 0, 4096);
            let want = (p as f64).log2() * t(4096);
            assert!(
                (done - want).abs() < 1e-12,
                "p={p}: got {done}, want {want}"
            );
        }
    }

    #[test]
    fn binomial_non_power_of_two_takes_ceil_log_rounds() {
        let p = 5;
        let mut net = fresh(p);
        let group: Vec<usize> = (0..p).collect();
        let done = SimBcast::Binomial.run(&mut net, &group, 0, 0);
        // ceil(log2(5)) = 3 rounds of pure latency.
        assert!((done - 3.0 * ALPHA).abs() < 1e-12);
    }

    #[test]
    fn flat_costs_p_minus_1_transfers() {
        let p = 6;
        let mut net = fresh(p);
        let group: Vec<usize> = (0..p).collect();
        let done = SimBcast::Flat.run(&mut net, &group, 0, 100);
        assert!((done - 5.0 * t(100)).abs() < 1e-12);
    }

    #[test]
    fn ring_costs_chain_of_full_transfers() {
        let p = 7;
        let mut net = fresh(p);
        let group: Vec<usize> = (0..p).collect();
        let done = SimBcast::Ring.run(&mut net, &group, 0, 100);
        assert!((done - 6.0 * t(100)).abs() < 1e-12);
    }

    #[test]
    fn pipelined_matches_pipeline_formula() {
        // (p - 1 + s - 1) stages of (α + m/s · β) for m divisible by s.
        let (p, s, m) = (4usize, 8usize, 8000u64);
        let mut net = fresh(p);
        let group: Vec<usize> = (0..p).collect();
        let done = SimBcast::Pipelined { segments: s }.run(&mut net, &group, 0, m);
        let stage = t(m / s as u64);
        let want = (p - 1 + s - 1) as f64 * stage;
        assert!((done - want).abs() < 1e-12, "got {done}, want {want}");
    }

    #[test]
    fn scatter_allgather_matches_van_de_geijn_cost() {
        for p in [2usize, 4, 8, 16] {
            let m = 16 * 1024u64; // divisible by every p tested
            let mut net = fresh(p);
            let group: Vec<usize> = (0..p).collect();
            let done = SimBcast::ScatterAllgather.run(&mut net, &group, 0, m);
            let pf = p as f64;
            let want = (pf.log2() + pf - 1.0) * ALPHA + 2.0 * (pf - 1.0) / pf * m as f64 * BETA;
            assert!((done - want).abs() < 1e-9, "p={p}: got {done}, want {want}");
        }
    }

    #[test]
    fn scatter_allgather_beats_binomial_for_long_messages() {
        let p = 16;
        let m = 1_000_000u64;
        let group: Vec<usize> = (0..p).collect();
        let mut net_a = fresh(p);
        let tree = SimBcast::Binomial.run(&mut net_a, &group, 0, m);
        let mut net_b = fresh(p);
        let vdg = SimBcast::ScatterAllgather.run(&mut net_b, &group, 0, m);
        assert!(vdg < tree, "vdG {vdg} should beat binomial {tree} at 1 MB");
    }

    #[test]
    fn binomial_beats_scatter_allgather_for_short_messages() {
        let p = 16;
        let m = 8u64;
        let group: Vec<usize> = (0..p).collect();
        let mut net_a = fresh(p);
        let tree = SimBcast::Binomial.run(&mut net_a, &group, 0, m);
        let mut net_b = fresh(p);
        let vdg = SimBcast::ScatterAllgather.run(&mut net_b, &group, 0, m);
        assert!(tree < vdg, "binomial {tree} should beat vdG {vdg} at 8 B");
    }

    #[test]
    fn broadcast_works_on_scattered_subgroups_with_any_root() {
        // Ranks 1, 5, 9, 13 of a 16-rank net, rooted at index 2 (rank 9).
        let group = vec![1usize, 5, 9, 13];
        for algo in [
            SimBcast::Flat,
            SimBcast::Binomial,
            SimBcast::Binary,
            SimBcast::Ring,
            SimBcast::Pipelined { segments: 3 },
            SimBcast::ScatterAllgather,
        ] {
            let mut net = fresh(16);
            let done = algo.run(&mut net, &group, 2, 999);
            assert!(done > 0.0);
            // Ranks outside the group must be untouched.
            for r in [0usize, 2, 3, 4, 6, 7, 8, 10, 11, 12, 14, 15] {
                assert_eq!(net.now(r), 0.0, "algo {algo:?} touched rank {r}");
            }
        }
    }

    #[test]
    fn singleton_group_is_free() {
        let mut net = fresh(4);
        let done = SimBcast::Binomial.run(&mut net, &[2], 0, 1 << 20);
        assert_eq!(done, 0.0);
        assert_eq!(net.report().msgs, 0);
    }

    #[test]
    fn chunk_bytes_sums_to_total() {
        for bytes in [0u64, 1, 7, 4096, 4097] {
            for n in [1usize, 2, 3, 8] {
                let sum: u64 = (0..n).map(|i| chunk_bytes(bytes, n, i)).sum();
                assert_eq!(sum, bytes);
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        const ALL: [SimBcast; 6] = [
            SimBcast::Flat,
            SimBcast::Binomial,
            SimBcast::Binary,
            SimBcast::Ring,
            SimBcast::Pipelined { segments: 4 },
            SimBcast::ScatterAllgather,
        ];

        proptest! {
            #[test]
            fn cost_is_monotone_in_message_size(
                algo_ix in 0usize..6, p in 2usize..20, bytes in 1u64..1_000_000
            ) {
                let algo = ALL[algo_ix];
                let group: Vec<usize> = (0..p).collect();
                let mut small = fresh(p);
                let t_small = algo.run(&mut small, &group, 0, bytes);
                let mut big = fresh(p);
                let t_big = algo.run(&mut big, &group, 0, bytes * 2);
                prop_assert!(t_big >= t_small - 1e-12, "{algo:?}: {t_big} < {t_small}");
            }

            #[test]
            fn cost_is_monotone_in_group_size(
                algo_ix in 0usize..6, p in 2usize..20, bytes in 1u64..100_000
            ) {
                let algo = ALL[algo_ix];
                let small_group: Vec<usize> = (0..p).collect();
                let big_group: Vec<usize> = (0..p + 1).collect();
                let mut a = fresh(p + 1);
                let t_small = algo.run(&mut a, &small_group, 0, bytes);
                let mut b = fresh(p + 1);
                let t_big = algo.run(&mut b, &big_group, 0, bytes);
                prop_assert!(t_big >= t_small - 1e-12, "{algo:?}: {t_big} < {t_small}");
            }

            #[test]
            fn simulation_is_deterministic(
                algo_ix in 0usize..6, p in 2usize..16, bytes in 0u64..100_000, root in 0usize..16
            ) {
                let algo = ALL[algo_ix];
                let root = root % p;
                let group: Vec<usize> = (0..p).collect();
                let mut a = fresh(p);
                let ta = algo.run(&mut a, &group, root, bytes);
                let mut b = fresh(p);
                let tb = algo.run(&mut b, &group, root, bytes);
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(a.report(), b.report());
            }

            #[test]
            fn every_rank_advances_past_zero(
                algo_ix in 0usize..6, p in 2usize..16, root in 0usize..16
            ) {
                let algo = ALL[algo_ix];
                let root = root % p;
                let group: Vec<usize> = (0..p).collect();
                let mut net = fresh(p);
                algo.run(&mut net, &group, root, 1000);
                for r in 0..p {
                    prop_assert!(net.now(r) > 0.0, "{algo:?}: rank {r} untouched");
                }
            }

            #[test]
            fn tree_broadcasts_move_exactly_group_minus_one_payloads(
                p in 2usize..24, bytes in 1u64..100_000
            ) {
                for algo in [SimBcast::Flat, SimBcast::Binomial, SimBcast::Binary, SimBcast::Ring] {
                    let group: Vec<usize> = (0..p).collect();
                    let mut net = fresh(p);
                    algo.run(&mut net, &group, 0, bytes);
                    prop_assert_eq!(net.report().bytes, (p as u64 - 1) * bytes, "{:?}", algo);
                }
            }
        }
    }
}
