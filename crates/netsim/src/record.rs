//! Schedule-as-data: record each rank's communication program once.
//!
//! The SPMD simulator ([`crate::spmd`]) runs one thread per simulated
//! rank, which caps validated scale at p ≈ 8192 under the default
//! `vm.max_map_count` (each thread maps a stack). The schedules being
//! simulated, however, are *deterministic and data-independent*: every
//! send, receive, collective edge and compute charge is a function of
//! (rank, problem shape, configuration) alone — never of payload values
//! or timing. That determinism is what makes phantom payloads sound, and
//! it makes something stronger possible: run each rank's SPMD closure
//! **sequentially**, once, against a [`RecordComm`] that performs no
//! synchronization at all and simply writes down the rank's operations as
//! a flat [`Op`] program. The p recorded programs are then executed by
//! the threadless event loop in [`crate::replay`] — O(p) cursor state,
//! zero threads, p = 2²⁰ within reach.
//!
//! Recording is a *clean* run by construction: no deadline, no faults.
//! Deadlines and fault plans are applied at replay time, where the exact
//! per-operation semantics of the threaded world are mirrored (see
//! `replay.rs`), so one recording serves every failure scenario.
//!
//! The one collective that needs care is `split`: its result (child
//! membership and rank order) depends on every member's `(color, key)`
//! deposit, which a sequential recorder does not have until the *other*
//! ranks have run. The recorder therefore runs in passes: a rank that
//! reaches an unresolved split rendezvous aborts its pass with a sentinel
//! error (the deposit is kept), and once all members of a rendezvous have
//! deposited, the split is resolved exactly the way the SPMD world
//! resolves it — colors sorted, members ordered by `(key, parent rank)` —
//! and the aborted ranks re-run from the top. Re-runs are deterministic,
//! so re-deposits are asserted identical. Dense schedules split a handful
//! of times before their step loops, so recording converges in a few
//! passes (SUMMA: 3, HSUMMA: 5, COSMA: 4).
//!
//! What is *not* recordable: schedules whose control flow depends on the
//! outcome of a non-blocking probe (`ibcast_test`), i.e. the polling
//! variant of the overlap pipelines (`hsumma_overlap`). The probe's
//! answer depends on virtual arrival times the recorder does not know.
//! The blocking-wait pipeline (`summa_overlap`) records fine — its
//! schedule is a fixed sequence of starts and waits.

use hsumma_trace::{CommEdge, CommError};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// One recorded operation of one rank's program. Peers are **world**
/// ranks (communicator-local ranks are resolved at record time), and
/// point-to-point endpoints are addressed through a channel id that
/// interns the `(communicator, tag)` pair — a `u32` per side keeps the
/// op compact (~24 bytes), which is what bounds recording memory at
/// `total ops · 24 B`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Send `bytes` to world rank `dst` on channel `chan`.
    Send { chan: u32, dst: u32, bytes: u64 },
    /// Receive the next message from world rank `src` on channel `chan`.
    /// `bytes` is the expected payload size, checked at replay —
    /// `u64::MAX` means unchecked (collective internals discard sizes).
    Recv { chan: u32, src: u32, bytes: u64 },
    /// Charge `γ · pairs` seconds of local compute (stamped `flops`).
    Compute { pairs: f64, flops: u64 },
    /// Group barrier number `seq` on communicator `comm`.
    Barrier { comm: u32, seq: u32 },
    /// Split rendezvous number `seq` on communicator `comm`. Pure
    /// synchronization at replay: membership was resolved at record
    /// time, but the rendezvous itself must still hold ranks back so
    /// deadline/fault quiescence matches the threaded world.
    Split { comm: u32, seq: u32 },
    /// Open a pivot-step trace span (`k`, outer, inner block sizes).
    StepPush { k: u32, outer: u32, inner: u32 },
    /// Close the innermost open pivot-step span.
    StepPop,
}

/// The output of [`record`]: one flat op program per world rank, plus the
/// interning tables the ops index into. Platform-independent — the same
/// recording replays under any Hockney parameters, topology, noise seed,
/// deadline or fault plan.
pub struct RecordedProgram {
    /// `programs[r]` is world rank `r`'s complete op sequence.
    pub(crate) programs: Vec<Vec<Op>>,
    /// Channel id → `(communicator id, wire tag)`. The original tag is
    /// retained so fault-plan rules (which match on tag class) apply at
    /// replay exactly as they would on the live substrates.
    pub(crate) chans: Vec<(u32, u64)>,
    /// Communicator id → world ranks of its members, in rank order.
    /// Id 0 is the world.
    pub(crate) comms: Vec<Arc<Vec<usize>>>,
}

impl RecordedProgram {
    /// Number of world ranks.
    pub fn ranks(&self) -> usize {
        self.programs.len()
    }

    /// Total recorded operations across all ranks — the recording's
    /// memory footprint is this times ~24 bytes.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }

    /// Number of distinct communicators the program created (including
    /// the world).
    pub fn comm_count(&self) -> usize {
        self.comms.len()
    }
}

/// One in-progress split rendezvous: `(color, key)` deposits by parent
/// rank, and (once every member has deposited and a pass boundary
/// resolved it) the child communicator id per color.
struct SplitRec {
    deposits: Vec<Option<(u64, i64)>>,
    resolved: Option<HashMap<u64, u32>>,
}

/// Shared recording state, threaded through every [`RecordComm`] handle
/// of the rank currently being recorded.
struct RecordState {
    step_sync: bool,
    /// The current rank's op buffer (reset per pass).
    ops: Vec<Op>,
    /// Raised when the current rank aborted at an unresolved split; the
    /// driver distinguishes this expected abort from a real error.
    stalled: bool,
    chans: Vec<(u32, u64)>,
    chan_ids: HashMap<(u32, u64), u32>,
    comms: Vec<Arc<Vec<usize>>>,
    splits: HashMap<(u32, u64), SplitRec>,
}

impl RecordState {
    fn chan(&mut self, comm: u32, tag: u64) -> u32 {
        if let Some(&id) = self.chan_ids.get(&(comm, tag)) {
            return id;
        }
        let id = u32::try_from(self.chans.len()).expect("too many channels");
        self.chans.push((comm, tag));
        self.chan_ids.insert((comm, tag), id);
        id
    }

    /// Resolves every fully-deposited, still-unresolved split, in
    /// deterministic `(parent communicator, epoch)` order so child
    /// communicator ids do not depend on the pass's rank iteration.
    /// Mirrors the SPMD world's resolution exactly: colors sorted and
    /// deduplicated, members ordered by `(key, parent rank)`, one fresh
    /// communicator per color in color order. Returns how many
    /// rendezvous were resolved.
    fn resolve_splits(&mut self) -> usize {
        let mut ready: Vec<(u32, u64)> = self
            .splits
            .iter()
            .filter(|(_, s)| s.resolved.is_none() && s.deposits.iter().all(Option::is_some))
            .map(|(&k, _)| k)
            .collect();
        ready.sort_unstable();
        for &(parent, epoch) in &ready {
            let parent_members = Arc::clone(&self.comms[parent as usize]);
            let table: Vec<(u64, i64)> = self.splits[&(parent, epoch)]
                .deposits
                .iter()
                .map(|d| d.unwrap())
                .collect();
            let mut colors: Vec<u64> = table.iter().map(|&(c, _)| c).collect();
            colors.sort_unstable();
            colors.dedup();
            let mut children = HashMap::new();
            for &c in &colors {
                let mut members: Vec<(i64, usize)> = table
                    .iter()
                    .enumerate()
                    .filter(|&(_, &(mc, _))| mc == c)
                    .map(|(parent_rank, &(_, k))| (k, parent_rank))
                    .collect();
                members.sort_unstable();
                let world: Vec<usize> = members
                    .into_iter()
                    .map(|(_, parent_rank)| parent_members[parent_rank])
                    .collect();
                let id = u32::try_from(self.comms.len()).expect("too many communicators");
                self.comms.push(Arc::new(world));
                children.insert(c, id);
            }
            self.splits
                .get_mut(&(parent, epoch))
                .expect("rendezvous vanished")
                .resolved = Some(children);
        }
        ready.len()
    }
}

/// One rank's recording handle: the third `Communicator` substrate.
/// Every operation appends to the shared op buffer and returns
/// immediately — no clocks, no blocking, no other ranks.
pub struct RecordComm<'r> {
    st: &'r RefCell<RecordState>,
    comm: u32,
    /// World ranks of this communicator's members, in rank order.
    members: Arc<Vec<usize>>,
    my_rank: usize,
    /// Per-communicator split counter, mirroring [`crate::spmd::SimComm`].
    epoch: Cell<u64>,
    /// Per-communicator barrier counter.
    barrier_seq: Cell<u64>,
}

impl<'r> RecordComm<'r> {
    /// Rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    fn world_me(&self) -> usize {
        self.members[self.my_rank]
    }

    /// Records a send of `bytes` to `dst` (communicator rank).
    pub fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) -> Result<(), CommError> {
        let dst_w = self.members[dst] as u32;
        let mut st = self.st.borrow_mut();
        let chan = st.chan(self.comm, tag);
        st.ops.push(Op::Send {
            chan,
            dst: dst_w,
            bytes,
        });
        Ok(())
    }

    /// Records a receive from `src` with no payload-size expectation
    /// (the returned size is a placeholder — collective internals
    /// discard it). The replay delivers whatever the matching send
    /// carried.
    pub fn recv_bytes_unchecked(&self, src: usize, tag: u64) -> Result<u64, CommError> {
        self.record_recv(src, tag, u64::MAX);
        Ok(0)
    }

    /// Records a receive from `src` expecting exactly `bytes`; the
    /// replay asserts the matching message's size.
    pub fn recv_bytes_expect(&self, src: usize, tag: u64, bytes: u64) -> Result<(), CommError> {
        assert_ne!(bytes, u64::MAX, "u64::MAX is the unchecked sentinel");
        self.record_recv(src, tag, bytes);
        Ok(())
    }

    fn record_recv(&self, src: usize, tag: u64, bytes: u64) {
        let src_w = self.members[src] as u32;
        let mut st = self.st.borrow_mut();
        let chan = st.chan(self.comm, tag);
        st.ops.push(Op::Recv {
            chan,
            src: src_w,
            bytes,
        });
    }

    /// Records a compute charge of `pairs` multiply-add pairs (stamped
    /// with `flops` for the trace), mirroring `SimComm::compute`.
    pub fn compute(&self, pairs: f64, flops: u64) {
        self.st.borrow_mut().ops.push(Op::Compute { pairs, flops });
    }

    /// Records a pivot-step span around `f`.
    pub fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        self.st.borrow_mut().ops.push(Op::StepPush {
            k: k as u32,
            outer: outer as u32,
            inner: inner as u32,
        });
        let out = f();
        self.st.borrow_mut().ops.push(Op::StepPop);
        out
    }

    /// Records a group barrier.
    pub fn barrier(&self) -> Result<(), CommError> {
        let seq = self.barrier_seq.get();
        self.barrier_seq.set(seq + 1);
        self.st.borrow_mut().ops.push(Op::Barrier {
            comm: self.comm,
            seq: seq as u32,
        });
        Ok(())
    }

    /// Records a world-wide clock alignment when the recording was made
    /// with `step_sync`, mirroring `SimComm::maybe_step_sync`.
    pub fn maybe_step_sync(&self) -> Result<(), CommError> {
        if self.st.borrow().step_sync {
            assert_eq!(
                self.members.len(),
                self.st.borrow().programs_len_hint(),
                "maybe_step_sync must be called on the world communicator"
            );
            self.barrier()?;
        }
        Ok(())
    }

    /// Splits this communicator by `color`, members ordered by
    /// `(key, parent rank)` — same contract as the live substrates.
    ///
    /// If the rendezvous is not yet resolved (some member has not
    /// deposited in an earlier pass), the deposit is kept and the pass
    /// aborts with a sentinel error the driver recognizes; the rank
    /// re-runs after the next resolution round.
    pub fn split(&self, color: u64, key: i64) -> Result<RecordComm<'r>, CommError> {
        let epoch = self.epoch.get();
        self.epoch.set(epoch + 1);
        let rkey = (self.comm, epoch);
        let me_w = self.world_me();
        let group = self.members.len();
        let mut st = self.st.borrow_mut();
        let entry = st.splits.entry(rkey).or_insert_with(|| SplitRec {
            deposits: vec![None; group],
            resolved: None,
        });
        match entry.deposits[self.my_rank] {
            None => entry.deposits[self.my_rank] = Some((color, key)),
            Some(prev) => assert_eq!(
                prev,
                (color, key),
                "rank {me_w} deposited a different (color, key) on re-run: \
                 the schedule is not deterministic and cannot be recorded"
            ),
        }
        let Some(children) = entry.resolved.as_ref() else {
            st.stalled = true;
            // Sentinel abort: the driver re-runs this rank once the
            // rendezvous resolves. `Cancelled` (not `Timeout`) so a
            // buggy non-collective split that never resolves is
            // distinguishable in the panic message.
            return Err(CommError::Cancelled {
                edge: CommEdge {
                    rank: me_w,
                    peer: me_w,
                    ctx: self.comm as u64,
                    tag: 0,
                    epoch,
                },
                op: "split",
            });
        };
        let child = children[&color];
        st.ops.push(Op::Split {
            comm: self.comm,
            seq: epoch as u32,
        });
        let members = Arc::clone(&st.comms[child as usize]);
        drop(st);
        let my_rank = members
            .iter()
            .position(|&w| w == me_w)
            .expect("caller must be a member of its own color group");
        Ok(RecordComm {
            st: self.st,
            comm: child,
            members,
            my_rank,
            epoch: Cell::new(0),
            barrier_seq: Cell::new(0),
        })
    }
}

impl RecordState {
    /// World size, for the `maybe_step_sync` world-communicator assert.
    fn programs_len_hint(&self) -> usize {
        self.comms[0].len()
    }
}

/// Records the SPMD program `f` for a `p`-rank world: runs each rank's
/// closure to completion sequentially (re-running ranks that stall at
/// split rendezvous, see module docs) and returns the per-rank op
/// programs.
///
/// `step_sync` selects the per-step-synchronized semantics, exactly like
/// the `step_sync` flag of [`crate::spmd::SimWorld::run`].
///
/// # Panics
/// Panics if a rank's closure returns a real error (recording is a clean
/// run: deadlines and faults belong to replay), or if recording cannot
/// make progress (a split that is not collective over its communicator).
pub fn record<F>(p: usize, step_sync: bool, f: F) -> RecordedProgram
where
    F: for<'r> Fn(&RecordComm<'r>) -> Result<(), CommError>,
{
    assert!(p > 0, "need at least one rank");
    let world: Arc<Vec<usize>> = Arc::new((0..p).collect());
    let st = RefCell::new(RecordState {
        step_sync,
        ops: Vec::new(),
        stalled: false,
        chans: Vec::new(),
        chan_ids: HashMap::new(),
        comms: vec![Arc::clone(&world)],
        splits: HashMap::new(),
    });
    let mut programs: Vec<Option<Vec<Op>>> = (0..p).map(|_| None).collect();
    loop {
        let mut completed_this_pass = 0usize;
        for (rank, slot) in programs.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            {
                let mut s = st.borrow_mut();
                s.ops = Vec::new();
                s.stalled = false;
            }
            let comm = RecordComm {
                st: &st,
                comm: 0,
                members: Arc::clone(&world),
                my_rank: rank,
                epoch: Cell::new(0),
                barrier_seq: Cell::new(0),
            };
            match f(&comm) {
                Ok(()) => {
                    *slot = Some(std::mem::take(&mut st.borrow_mut().ops));
                    completed_this_pass += 1;
                }
                Err(e) => {
                    assert!(
                        st.borrow().stalled,
                        "recording must be a clean run, but rank {rank} failed: {e:?}"
                    );
                }
            }
        }
        if programs.iter().all(Option::is_some) {
            break;
        }
        let resolved = st.borrow_mut().resolve_splits();
        assert!(
            resolved > 0 || completed_this_pass > 0,
            "recording made no progress: a split rendezvous never completed \
             (is the split collective over its communicator?)"
        );
    }
    let st = st.into_inner();
    RecordedProgram {
        programs: programs.into_iter().map(Option::unwrap).collect(),
        chans: st.chans,
        comms: st.comms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_records_world_ranks_and_bytes() {
        let prog = record(2, false, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, 1000)?;
            } else {
                comm.recv_bytes_expect(0, 7, 1000)?;
            }
            Ok(())
        });
        assert_eq!(prog.ranks(), 2);
        assert_eq!(
            prog.programs[0],
            vec![Op::Send {
                chan: 0,
                dst: 1,
                bytes: 1000
            }]
        );
        assert_eq!(
            prog.programs[1],
            vec![Op::Recv {
                chan: 0,
                src: 0,
                bytes: 1000
            }]
        );
        assert_eq!(prog.chans, vec![(0, 7)]);
    }

    #[test]
    fn split_resolves_like_the_spmd_world() {
        // Mirrors spmd's split_is_free_and_orders_by_key_then_parent_rank.
        let prog = record(4, false, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, -(comm.rank() as i64))?;
            // Color 0 = world {0, 2}, keys {0, -2}: order [2, 0].
            // Color 1 = world {1, 3}, keys {-1, -3}: order [3, 1].
            match comm.rank() {
                0 => assert_eq!((sub.rank(), sub.size()), (1, 2)),
                2 => assert_eq!((sub.rank(), sub.size()), (0, 2)),
                1 => assert_eq!((sub.rank(), sub.size()), (1, 2)),
                3 => assert_eq!((sub.rank(), sub.size()), (0, 2)),
                _ => unreachable!(),
            }
            sub.send_bytes((sub.rank() + 1) % 2, 5, 8)?;
            sub.recv_bytes_unchecked((sub.rank() + 1) % 2, 5)?;
            Ok(())
        });
        // Two children after the world: colors 0 and 1 in sorted order.
        assert_eq!(prog.comm_count(), 3);
        assert_eq!(*prog.comms[1], vec![2, 0]);
        assert_eq!(*prog.comms[2], vec![3, 1]);
    }

    #[test]
    fn nested_splits_converge_over_passes() {
        let prog = record(4, false, |comm| {
            let half = comm.split((comm.rank() / 2) as u64, comm.rank() as i64)?;
            let single = half.split(half.rank() as u64, 0)?;
            assert_eq!(single.size(), 1);
            Ok(())
        });
        // World + 2 halves + 4 singletons.
        assert_eq!(prog.comm_count(), 7);
        for p in &prog.programs {
            assert_eq!(
                p.iter().filter(|o| matches!(o, Op::Split { .. })).count(),
                2
            );
        }
    }

    #[test]
    fn step_sync_inserts_world_barriers() {
        let prog = record(2, true, |comm| {
            comm.compute(10.0, 20);
            comm.maybe_step_sync()?;
            Ok(())
        });
        assert_eq!(
            prog.programs[0],
            vec![
                Op::Compute {
                    pairs: 10.0,
                    flops: 20
                },
                Op::Barrier { comm: 0, seq: 0 }
            ]
        );
    }

    #[test]
    #[should_panic(expected = "clean run")]
    fn real_errors_panic_the_recorder() {
        let _ = record(1, false, |_| {
            Err(CommError::Shutdown {
                rank: 0,
                detail: "boom".into(),
            })
        });
    }
}
