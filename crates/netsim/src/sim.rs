//! Per-rank virtual clocks advanced message-by-message.
//!
//! [`SimNet`] is a lightweight discrete-event engine specialized for the
//! deterministic, data-independent communication schedules of dense linear
//! algebra: every rank has a virtual clock; sending occupies the sender
//! for the full Hockney transfer time (`α + m·β`, store-and-forward) and
//! the receiver waits until arrival. Because each operation only ever
//! moves clocks forward, simulating a schedule is a single pass over its
//! messages — no event queue is needed, which is what makes 16384-rank
//! simulations cheap.

use crate::model::Hockney;
use crate::topology::{FullyConnected, Topology};
use hsumma_trace::{EventKind, Trace, TraceSink, Tracer};

/// A message in flight: produced by [`SimNet::isend`], consumed by
/// [`SimNet::deliver`]. Splitting send and delivery lets schedules express
/// "send, then block receiving" rounds (ring allgather) faithfully.
#[derive(Clone, Copy, Debug)]
#[must_use = "an undelivered message leaves the receiver's clock behind"]
pub struct PendingMsg {
    src: usize,
    bytes: u64,
    arrival: f64,
}

impl PendingMsg {
    /// Payload size of the in-flight message (crate-internal: the SPMD
    /// mailboxes report it to phantom receivers).
    pub(crate) fn payload_bytes(&self) -> u64 {
        self.bytes
    }

    /// Virtual arrival time (crate-internal: the SPMD mailboxes compare
    /// it against the job deadline).
    pub(crate) fn arrival(&self) -> f64 {
        self.arrival
    }

    /// Postpones arrival by `seconds` — the simulator's half of the
    /// `FaultAction::Delay` injection.
    pub(crate) fn delay(&mut self, seconds: f64) {
        self.arrival += seconds;
    }
}

/// Aggregated outcome of a simulated schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Virtual makespan: the largest rank clock.
    pub total_time: f64,
    /// Largest per-rank accumulated communication time.
    pub comm_time: f64,
    /// Largest per-rank accumulated computation time.
    pub comp_time: f64,
    /// Total messages sent.
    pub msgs: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

/// The simulated network: per-rank clocks plus accounting.
pub struct SimNet {
    clocks: Vec<f64>,
    comm: Vec<f64>,
    comp: Vec<f64>,
    /// Per-rank count of messages sent so far (keys the noise stream).
    send_seq: Vec<u64>,
    msgs: u64,
    bytes: u64,
    net: Hockney,
    topo: Box<dyn Topology>,
    /// Shared event model (`hsumma-trace`), stamped with virtual clocks:
    /// the tracer handle plus one claimed sink per rank.
    tracer: Option<(Tracer, Vec<TraceSink>)>,
    noise: Option<NoiseModel>,
}

/// Deterministic multiplicative transfer-time jitter: every transfer's
/// busy time is scaled by a factor drawn uniformly from
/// `[1, 1 + amplitude]` using a seeded SplitMix64 stream — OS and
/// network noise, reproducibly. (The paper's Grid5000 measurements
/// average 30 noisy runs; this models the phenomenon they average over.)
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    seed: u64,
    amplitude: f64,
}

impl NoiseModel {
    /// Creates a jitter stream. `amplitude` is the maximum relative
    /// slowdown (e.g. `0.2` = up to 20 % slower per transfer).
    pub fn new(seed: u64, amplitude: f64) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        NoiseModel { seed, amplitude }
    }

    /// Multiplicative factor in `[1, 1 + amplitude]` for the `seq`-th
    /// message sent by `src`. Keyed per-sender rather than drawn from one
    /// sequential stream so the factor depends only on a rank's own
    /// message order — the SPMD driver runs ranks concurrently and a
    /// global draw order would not be reproducible.
    fn factor_for(&self, src: usize, seq: u64) -> f64 {
        // SplitMix64 finalizer over (seed, src, seq): deterministic,
        // seedable, no dependency.
        let mut z = self
            .seed
            .wrapping_add((src as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.amplitude * unit
    }
}

impl SimNet {
    /// A flat (fully connected, contention-free) network of `p` ranks —
    /// the paper's model assumptions.
    pub fn new(p: usize, net: Hockney) -> Self {
        Self::with_topology(p, net, Box::new(FullyConnected { ranks: p }))
    }

    /// A network with a topology refining per-message latency.
    ///
    /// # Panics
    /// Panics if the topology does not span exactly `p` ranks.
    pub fn with_topology(p: usize, net: Hockney, topo: Box<dyn Topology>) -> Self {
        assert!(p > 0, "need at least one rank");
        assert_eq!(topo.size(), p, "topology size must match rank count");
        SimNet {
            clocks: vec![0.0; p],
            comm: vec![0.0; p],
            comp: vec![0.0; p],
            send_seq: vec![0; p],
            msgs: 0,
            bytes: 0,
            net,
            topo,
            tracer: None,
            noise: None,
        }
    }

    /// Attaches deterministic transfer-time jitter (see [`NoiseModel`]).
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = Some(noise);
    }

    /// Starts recording events into a fresh internal tracer using the
    /// shared `hsumma-trace` event model, stamped with this simulation's
    /// virtual clocks (replaces any previous trace). Intended for
    /// debugging and schedule analysis; large simulations should leave
    /// it off.
    pub fn enable_trace(&mut self) {
        let tracer = Tracer::new(self.size());
        self.attach_tracer(&tracer);
    }

    /// Records events into a caller-owned tracer — this is how a
    /// simulated run and a real (`hsumma-runtime`) run of the same
    /// algorithm produce structurally comparable traces.
    ///
    /// # Panics
    /// Panics if the tracer is disabled or sized for fewer ranks than
    /// the simulation has.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        assert!(tracer.enabled(), "attach_tracer needs an enabled tracer");
        assert!(
            tracer.ranks() >= self.size(),
            "tracer sized for {} ranks, simulation has {}",
            tracer.ranks(),
            self.size()
        );
        self.tracer = None; // drop previous sinks so rings can be reclaimed
        let sinks = (0..self.size()).map(|r| tracer.sink(r)).collect();
        self.tracer = Some((tracer.clone(), sinks));
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<Trace> {
        self.tracer.as_ref().map(|(t, _)| t.collect())
    }

    /// Serializes the recorded trace into Chrome tracing format (load it
    /// at `chrome://tracing` or <https://ui.perfetto.dev>): one track per
    /// rank, nested spans, flow arrows for messages, microsecond
    /// timestamps.
    ///
    /// Returns `None` if tracing was never enabled.
    pub fn trace_to_chrome_json(&self) -> Option<String> {
        self.trace().map(|t| t.to_chrome_json())
    }

    #[inline]
    fn record(&self, rank: usize, kind: EventKind, t0: f64, t1: f64) {
        if let Some((_, sinks)) = &self.tracer {
            sinks[rank].record(kind, t0, t1);
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.clocks.len()
    }

    /// Current virtual time of `rank`.
    pub fn now(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Starts a transfer of `bytes` from `src` to `dst`: the sender is
    /// busy for `α + m·β`; the message arrives after the additional
    /// topology latency of the route.
    pub fn isend(&mut self, src: usize, dst: usize, bytes: u64) -> PendingMsg {
        let mut busy = self.net.time(bytes);
        if let Some(noise) = &self.noise {
            busy *= noise.factor_for(src, self.send_seq[src]);
        }
        self.send_seq[src] += 1;
        let departure = self.clocks[src];
        self.clocks[src] += busy;
        self.comm[src] += busy;
        self.msgs += 1;
        self.bytes += bytes;
        let arrival = departure + busy + self.topo.extra_latency(src, dst);
        self.record(
            src,
            EventKind::Send {
                dst,
                tag: 0,
                channel: 0,
                bytes,
            },
            departure,
            departure + busy,
        );
        PendingMsg {
            src,
            bytes,
            arrival,
        }
    }

    /// Blocks `dst` until `msg` has arrived; waiting time is accounted as
    /// communication.
    pub fn deliver(&mut self, dst: usize, msg: PendingMsg) {
        let wait_from = self.clocks[dst];
        if msg.arrival > self.clocks[dst] {
            self.comm[dst] += msg.arrival - self.clocks[dst];
            self.clocks[dst] = msg.arrival;
        }
        self.record(
            dst,
            EventKind::Recv {
                src: msg.src,
                tag: 0,
                channel: 0,
                bytes: msg.bytes,
            },
            wait_from,
            self.clocks[dst],
        );
    }

    /// Send and immediately deliver: for schedules where the receiver is
    /// known to be blocked in its receive (every tree broadcast).
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64) {
        let msg = self.isend(src, dst, bytes);
        self.deliver(dst, msg);
    }

    /// Advances `rank`'s clock by `seconds` of local computation.
    pub fn compute(&mut self, rank: usize, seconds: f64) {
        self.compute_flops(rank, seconds, 0);
    }

    /// Like [`SimNet::compute`], stamping the trace event with the flop
    /// count the time was derived from.
    pub fn compute_flops(&mut self, rank: usize, seconds: f64, flops: u64) {
        assert!(seconds >= 0.0, "computation time must be non-negative");
        let t0 = self.clocks[rank];
        self.clocks[rank] += seconds;
        self.comp[rank] += seconds;
        self.record(rank, EventKind::Compute { flops }, t0, t0 + seconds);
    }

    /// Records a pivot-step span `[t0, t1]` on `rank`'s track (schedule
    /// drivers call this around each step; no-op when tracing is off).
    pub fn record_step(&self, rank: usize, k: usize, outer: usize, inner: usize, t0: f64, t1: f64) {
        self.record(rank, EventKind::PivotStep { k, outer, inner }, t0, t1);
    }

    /// Advances every rank to the latest clock (a global barrier). The
    /// wait is accounted as communication, like an `MPI_Barrier` would be.
    pub fn barrier_all(&mut self) {
        let t = self.elapsed();
        for r in 0..self.clocks.len() {
            self.comm[r] += t - self.clocks[r];
            self.clocks[r] = t;
        }
    }

    /// Advances every rank in `ranks` to the group's latest clock (a
    /// subgroup barrier); the wait is accounted as communication.
    pub fn barrier_group(&mut self, ranks: &[usize]) {
        let t = ranks
            .iter()
            .map(|&r| self.clocks[r])
            .fold(0.0_f64, f64::max);
        for &r in ranks {
            self.comm[r] += t - self.clocks[r];
            self.clocks[r] = t;
        }
    }

    /// Removes the accounting of a message that a fault plan dropped at
    /// the send path: the sender stays busy (it did the work) but the
    /// world's send ledger must not count a message no receiver can see,
    /// mirroring the threaded runtime's drop semantics.
    pub(crate) fn uncount_send(&mut self, bytes: u64) {
        self.msgs -= 1;
        self.bytes -= bytes;
    }

    /// Advances `rank`'s clock to `t` (no-op if already past), charging
    /// the wait as communication — used when a blocked rank gives up at
    /// the virtual deadline.
    pub(crate) fn wait_until(&mut self, rank: usize, t: f64) {
        if t > self.clocks[rank] {
            self.comm[rank] += t - self.clocks[rank];
            self.clocks[rank] = t;
        }
    }

    /// Virtual makespan so far.
    pub fn elapsed(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Snapshot of the aggregate accounting.
    pub fn report(&self) -> SimReport {
        SimReport {
            total_time: self.elapsed(),
            comm_time: self.comm.iter().copied().fold(0.0, f64::max),
            comp_time: self.comp.iter().copied().fold(0.0, f64::max),
            msgs: self.msgs,
            bytes: self.bytes,
        }
    }

    /// Per-rank communication time (test/diagnostic hook).
    pub fn comm_of(&self, rank: usize) -> f64 {
        self.comm[rank]
    }

    /// Per-rank computation time (test/diagnostic hook).
    pub fn comp_of(&self, rank: usize) -> f64 {
        self.comp[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Torus3D;

    fn net2() -> SimNet {
        SimNet::new(2, Hockney::new(1e-3, 1e-6))
    }

    #[test]
    fn single_send_costs_alpha_plus_m_beta() {
        let mut net = net2();
        net.send(0, 1, 1000);
        let want = 1e-3 + 1000.0 * 1e-6;
        assert!((net.now(0) - want).abs() < 1e-15);
        assert!((net.now(1) - want).abs() < 1e-15);
        assert_eq!(net.report().msgs, 1);
        assert_eq!(net.report().bytes, 1000);
    }

    #[test]
    fn receiver_already_late_does_not_wait() {
        let mut net = net2();
        net.compute(1, 10.0);
        net.send(0, 1, 1000);
        // Rank 1 was at t=10, message arrived around t=0.002: no wait.
        assert_eq!(net.now(1), 10.0);
        assert_eq!(net.comm_of(1), 0.0);
    }

    #[test]
    fn sender_serializes_consecutive_sends() {
        let mut net = SimNet::new(3, Hockney::new(1.0, 0.0));
        net.send(0, 1, 0);
        net.send(0, 2, 0);
        assert!((net.now(0) - 2.0).abs() < 1e-15);
        assert!((net.now(1) - 1.0).abs() < 1e-15);
        assert!((net.now(2) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn isend_deliver_overlaps_send_with_wait() {
        // Both ranks send to each other first, then wait: total time is
        // one transfer, not two (the exchange overlaps).
        let mut net = net2();
        let m01 = net.isend(0, 1, 1000);
        let m10 = net.isend(1, 0, 1000);
        net.deliver(1, m01);
        net.deliver(0, m10);
        let one = 1e-3 + 1000.0 * 1e-6;
        assert!((net.elapsed() - one).abs() < 1e-12);
    }

    #[test]
    fn compute_accrues_to_comp_not_comm() {
        let mut net = net2();
        net.compute(0, 2.5);
        assert_eq!(net.comp_of(0), 2.5);
        assert_eq!(net.comm_of(0), 0.0);
        assert_eq!(net.report().comp_time, 2.5);
    }

    #[test]
    fn barrier_aligns_clocks_and_charges_wait_as_comm() {
        let mut net = net2();
        net.compute(0, 3.0);
        net.barrier_all();
        assert_eq!(net.now(1), 3.0);
        assert_eq!(net.comm_of(1), 3.0);
        assert_eq!(net.comm_of(0), 0.0);
    }

    #[test]
    fn torus_topology_adds_hop_latency() {
        let topo = Torus3D::new([4, 1, 1], 0.5);
        let mut net = SimNet::with_topology(4, Hockney::new(1.0, 0.0), Box::new(topo));
        net.send(0, 2, 0); // 2 hops on the ring
        assert!((net.now(2) - (1.0 + 2.0 * 0.5)).abs() < 1e-15);
        // Sender is only busy for the injection, not the hops.
        assert!((net.now(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "topology size")]
    fn topology_size_mismatch_rejected() {
        let topo = Torus3D::new([2, 2, 2], 0.0);
        let _ = SimNet::with_topology(4, Hockney::new(0.0, 0.0), Box::new(topo));
    }

    #[test]
    fn trace_records_transfers_with_virtual_timestamps() {
        use hsumma_trace::EventKind;
        let mut net = SimNet::new(3, Hockney::new(1.0, 0.0));
        net.enable_trace();
        net.send(0, 1, 10);
        net.send(1, 2, 20);
        let trace = net.trace().expect("tracing enabled");
        // Two sends, two matching recvs.
        assert_eq!(trace.payload_send_multiset(), vec![(0, 1, 10), (1, 2, 20)]);
        assert_eq!(trace.count(|e| matches!(e.kind, EventKind::Recv { .. })), 2);
        // The relay's send departs only after its receive completed.
        let relay_send = trace
            .events_of(1)
            .find(|e| matches!(e.kind, EventKind::Send { .. }))
            .expect("rank 1 sent");
        let relay_recv = trace
            .events_of(1)
            .find(|e| matches!(e.kind, EventKind::Recv { .. }))
            .expect("rank 1 received");
        assert!(relay_send.t0 >= relay_recv.t1 - 1e-12);
        for e in &trace.events {
            assert!(e.t1 >= e.t0, "causality");
        }
    }

    #[test]
    fn attached_tracer_sees_events_and_critical_path() {
        let tracer = hsumma_trace::Tracer::new(2);
        let mut net = SimNet::new(2, Hockney::new(1e-3, 1e-6));
        net.attach_tracer(&tracer);
        net.send(0, 1, 500);
        let cp = tracer.collect().critical_path();
        assert_eq!(cp.message_edges.len(), 1);
        assert!((cp.makespan - (1e-3 + 500.0 * 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn noise_slows_transfers_reproducibly_within_bounds() {
        let run = |seed: u64| {
            let mut net = SimNet::new(2, Hockney::new(1e-3, 1e-9));
            net.set_noise(NoiseModel::new(seed, 0.5));
            for _ in 0..100 {
                net.send(0, 1, 1000);
            }
            net.now(1)
        };
        let clean = {
            let mut net = SimNet::new(2, Hockney::new(1e-3, 1e-9));
            for _ in 0..100 {
                net.send(0, 1, 1000);
            }
            net.now(1)
        };
        let noisy = run(7);
        assert!(noisy > clean, "noise must slow transfers");
        assert!(noisy <= clean * 1.5 + 1e-12, "bounded by the amplitude");
        assert_eq!(run(7), noisy, "same seed, same result");
        assert_ne!(run(8), noisy, "different seed, different jitter");
    }

    #[test]
    fn zero_amplitude_noise_is_identity() {
        let mut net = SimNet::new(2, Hockney::new(1e-3, 0.0));
        net.set_noise(NoiseModel::new(1, 0.0));
        net.send(0, 1, 0);
        assert!((net.now(1) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn chrome_export_is_valid_json_and_complete() {
        let mut net = SimNet::new(2, Hockney::new(1e-3, 0.0));
        net.enable_trace();
        net.send(0, 1, 42);
        net.send(1, 0, 7);
        let json = net.trace_to_chrome_json().expect("trace enabled");
        hsumma_trace::validate_json(&json).expect("exported trace is valid JSON");
        assert!(json.trim_start().starts_with('['));
        // 2 sends + 2 recvs as spans.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        assert!(json.contains("send 42B to r1"));
        assert!(net.trace_to_chrome_json().is_some(), "export is repeatable");
    }

    #[test]
    fn trace_absent_unless_enabled() {
        let mut net = net2();
        net.send(0, 1, 1);
        assert!(net.trace().is_none());
    }

    #[test]
    fn report_tracks_makespan_across_ranks() {
        let mut net = SimNet::new(4, Hockney::new(0.1, 0.0));
        net.compute(3, 7.0);
        net.send(0, 1, 0);
        let r = net.report();
        assert_eq!(r.total_time, 7.0);
        assert!((r.comm_time - 0.1).abs() < 1e-15);
    }
}
