//! Block-partition arithmetic shared by every 2-D algorithm.
//!
//! Each schedule in this crate walks the same block-checkerboard
//! geometry: a `rows × cols` operand over an `s × t` grid yields
//! `(rows/s) × (cols/t)` local tiles (square `n × n` being the common
//! case), and pivot step `k` with panel width `bs` lives on the grid
//! row/column owning global index `k·bs`. That arithmetic used to be
//! re-derived inline in every algorithm file (summa, hsumma, overlap,
//! lu, 2.5D, cyclic, …) — and again by the sparse panel schedules — so
//! it lives here exactly once.
//!
//! The 1-D "deal `len` elements over `p` parts" helper used by the
//! segmented collectives is [`chunk_range`], re-exported from the
//! runtime so core-side schedule code has a single import path. It is
//! also the dealing rule behind [`crate::distribution::Distribution`]'s
//! checkerboard constructor, which drops the divisibility requirement
//! entirely; the exact-cover invariant both must satisfy is property
//! tested below.

use hsumma_matrix::GridShape;

pub use hsumma_runtime::collectives::chunk_range;

/// `⌈a / b⌉` for positive `b`.
///
/// # Panics
/// Panics if `b == 0`.
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b > 0, "ceil_div by zero");
    a.div_ceil(b)
}

/// Local tile shape `(rows, cols)` of a square `n × n` operand
/// block-distributed over `grid`.
///
/// # Panics
/// Panics unless both grid extents divide `n` (the block-checkerboard
/// precondition every algorithm here checks).
pub fn tile_shape(grid: GridShape, n: usize) -> (usize, usize) {
    tile_shape_rect(grid, n, n)
}

/// Local tile shape of a rectangular `rows × cols` operand
/// block-distributed over `grid`.
///
/// # Panics
/// Panics unless `grid.rows` divides `rows` and `grid.cols` divides
/// `cols`.
pub fn tile_shape_rect(grid: GridShape, rows: usize, cols: usize) -> (usize, usize) {
    assert_eq!(
        rows % grid.rows,
        0,
        "rows must be divisible by the grid rows"
    );
    assert_eq!(
        cols % grid.cols,
        0,
        "cols must be divisible by the grid cols"
    );
    (rows / grid.rows, cols / grid.cols)
}

/// Grid row/column owning pivot step `k`: the tile of extent `extent`
/// containing global index `k·bs`.
///
/// # Panics
/// Panics if `extent == 0`.
pub fn pivot_owner(k: usize, bs: usize, extent: usize) -> usize {
    assert!(extent > 0, "tile extent must be positive");
    k * bs / extent
}

/// Offset of pivot step `k`'s panel within its owner's tile.
///
/// # Panics
/// Panics if `extent == 0`.
pub fn pivot_offset(k: usize, bs: usize, extent: usize) -> usize {
    assert!(extent > 0, "tile extent must be positive");
    k * bs % extent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_shape_divides_the_grid() {
        assert_eq!(tile_shape(GridShape::new(2, 4), 16), (8, 4));
        assert_eq!(tile_shape(GridShape::new(1, 1), 7), (7, 7));
        assert_eq!(tile_shape_rect(GridShape::new(2, 3), 10, 9), (5, 3));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn tile_shape_rejects_non_dividing_grid() {
        let _ = tile_shape(GridShape::new(3, 3), 16);
    }

    #[test]
    fn pivot_owner_and_offset_walk_the_tiles() {
        // Tiles of extent 8, panels of 4: steps 0,1 live on owner 0 at
        // offsets 0,4; steps 2,3 on owner 1; and so on.
        let (bs, tw) = (4, 8);
        let walk: Vec<(usize, usize)> = (0..6)
            .map(|k| (pivot_owner(k, bs, tw), pivot_offset(k, bs, tw)))
            .collect();
        assert_eq!(walk, [(0, 0), (0, 4), (1, 0), (1, 4), (2, 0), (2, 4)]);
    }

    #[test]
    fn pivot_offset_plus_width_stays_in_tile() {
        for (bs, extent) in [(1, 5), (2, 8), (4, 8), (8, 8), (3, 12)] {
            for k in 0..(4 * extent / bs) {
                assert!(
                    pivot_offset(k, bs, extent) + bs <= extent,
                    "{bs}/{extent}/{k}"
                );
            }
        }
    }

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(8, 4), 2);
        assert_eq!(ceil_div(9, 4), 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `ceil_div` is the least multiple-count covering `a`.
            #[test]
            fn ceil_div_is_the_least_cover(a in 0usize..10_000, b in 1usize..100) {
                let q = ceil_div(a, b);
                prop_assert!(q * b >= a, "covers");
                if a > 0 {
                    prop_assert!((q - 1) * b < a, "least");
                }
            }

            /// `chunk_range` deals `len` over `p` parts with no gap, no
            /// overlap, and near-even extents — for *any* `p`, dividing
            /// or not. This is the 1-D invariant `Distribution::grid2d`
            /// lifts to two dimensions.
            #[test]
            fn chunk_range_tiles_exactly(len in 0usize..500, p in 1usize..40) {
                let mut cursor = 0usize;
                let (mut min_ext, mut max_ext) = (usize::MAX, 0usize);
                for i in 0..p {
                    let (start, end) = chunk_range(len, p, i);
                    prop_assert_eq!(start, cursor, "contiguous, in order");
                    prop_assert!(end >= start);
                    min_ext = min_ext.min(end - start);
                    max_ext = max_ext.max(end - start);
                    cursor = end;
                }
                prop_assert_eq!(cursor, len, "full cover");
                prop_assert!(max_ext - min_ext <= 1, "balanced dealing");
            }

            /// On dividing shapes the rectangular tile shape reassembles
            /// the global exactly: `s·(rows/s) = rows`, `t·(cols/t) = cols`.
            #[test]
            fn tile_shape_rect_reassembles_the_global(
                s in 1usize..8, t in 1usize..8,
                rf in 1usize..10, cf in 1usize..10,
            ) {
                let grid = GridShape::new(s, t);
                let (rows, cols) = (s * rf, t * cf);
                let (th, tw) = tile_shape_rect(grid, rows, cols);
                prop_assert_eq!(th * grid.rows, rows);
                prop_assert_eq!(tw * grid.cols, cols);
                // And it agrees with the chunk_range dealing (which is
                // uniform exactly when the grid divides).
                for i in 0..s {
                    let (r0, r1) = chunk_range(rows, s, i);
                    prop_assert_eq!(r1 - r0, th);
                }
                for j in 0..t {
                    let (c0, c1) = chunk_range(cols, t, j);
                    prop_assert_eq!(c1 - c0, tw);
                }
            }
        }
    }
}
