//! The 2.5D algorithm (Solomonik & Demmel 2011) — §I's communication-
//! avoiding competitor, implemented executably as an extension.
//!
//! `p = q² · c` processors form a `q × q × c` arrangement: `c` *layers*,
//! each a `q × q` grid. The algorithm trades memory for communication:
//!
//! 1. **replicate** — layer 0 holds the operands; each `(i, j)` position
//!    broadcasts its `A`/`B` tiles down its depth communicator, so every
//!    layer owns a full copy (`c`× the 2-D memory footprint — exactly
//!    the §I argument against it at exascale);
//! 2. **partial SUMMA** — layer `l` runs SUMMA steps `k ≡ l (mod c)`
//!    only, producing a partial `C`;
//! 3. **reduce** — depth communicators sum the partial `C`s onto layer 0.
//!
//! With `c = 1` this degenerates to plain SUMMA (tested). The paper
//! argues HSUMMA is preferable because it reduces communication *without*
//! the `c`× memory blowup; `hsumma-model::related` quantifies that
//! trade-off analytically, and this module lets the claim be exercised
//! with real data movement — or replayed on simulated clocks at
//! BlueGene/P scale via `simdrive::sim_twodotfive`.

use crate::comm::{Communicator, MatLike};
use crate::partition::{pivot_offset, pivot_owner, tile_shape};
use crate::summa::SummaConfig;
use hsumma_matrix::GridShape;
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Parameters of a 2.5D run.
#[derive(Clone, Copy, Debug)]
pub struct TwoDotFiveConfig {
    /// Layer grid side `q` (each layer is `q × q`).
    pub q: usize,
    /// Replication factor `c` (number of layers).
    pub c: usize,
    /// SUMMA configuration used within each layer.
    pub summa: SummaConfig,
}

/// Position of a rank in the `q × q × c` arrangement (layer-major:
/// `rank = layer·q² + i·q + j`).
pub fn coords_3d(rank: usize, q: usize) -> (usize, usize, usize) {
    (rank / (q * q), (rank / q) % q, rank % q)
}

/// Runs the 2.5D multiplication on the calling rank. SPMD over a
/// communicator of `q²·c` ranks. The `a`/`b` tiles (block-checkerboard
/// over the `q × q` grid) are read on **layer 0 only**; other layers may
/// pass zero matrices of the same shape. Returns `Some(local C tile)` on
/// layer 0 and `None` elsewhere.
///
/// # Panics
/// Panics if the communicator size is not `q²·c` or tile shapes are
/// inconsistent.
pub fn twodotfive<C: Communicator>(
    comm: &C,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &TwoDotFiveConfig,
) -> Result<Option<C::Mat>, CommError> {
    let (q, c) = (cfg.q, cfg.c);
    assert!(q > 0 && c > 0, "arrangement extents must be positive");
    assert_eq!(comm.size(), q * q * c, "communicator must span q*q*c ranks");
    assert_eq!(n % q, 0, "n must be divisible by the layer grid side");
    let ts = n / q;
    assert_eq!((a.rows(), a.cols()), (ts, ts), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (ts, ts), "B tile has wrong shape");
    let bs = cfg.summa.block;
    assert!(
        bs > 0 && ts.is_multiple_of(bs),
        "block must divide the tile"
    );
    let steps = n / bs;
    assert_eq!(
        steps % c,
        0,
        "the number of SUMMA steps (n/b = {steps}) must be divisible by c = {c}"
    );

    let (layer, i, j) = coords_3d(comm.rank(), q);
    // Layer communicator: all ranks of my layer, row-major rank order.
    let layer_comm = comm.split(layer as u64, (i * q + j) as i64)?;
    // Depth communicator: same (i, j) across layers, ordered by layer.
    let depth_comm = comm.split((c + i * q + j) as u64, layer as i64)?;

    // --- 1. replicate the operands from layer 0 ------------------------
    let mut a_rep = if layer == 0 {
        a.clone()
    } else {
        C::Mat::zeros(ts, ts)
    };
    let mut b_rep = if layer == 0 {
        b.clone()
    } else {
        C::Mat::zeros(ts, ts)
    };
    depth_comm.bcast_mat(BcastAlgorithm::Binomial, 0, &mut a_rep)?;
    depth_comm.bcast_mat(BcastAlgorithm::Binomial, 0, &mut b_rep)?;

    // --- 2. partial SUMMA: this layer takes steps k ≡ layer (mod c) ----
    let grid = GridShape::new(q, q);
    let partial = summa_steps(&layer_comm, grid, n, &a_rep, &b_rep, &cfg.summa, |k| {
        k % c == layer
    })?;

    // --- 3. reduce the partials onto layer 0 ----------------------------
    let mut partial = partial;
    depth_comm.reduce_sum_mat(0, &mut partial)?;
    Ok((layer == 0).then_some(partial))
}

/// SUMMA restricted to the pivot steps selected by `take`; shared by
/// [`twodotfive()`] (per-layer partial products) and plain SUMMA semantics
/// when `take` is always true.
fn summa_steps<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
    take: impl Fn(usize) -> bool,
) -> Result<C::Mat, CommError> {
    use crate::summa::bcast_matrix;

    let (th, tw) = tile_shape(grid, n);
    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;
    let bs = cfg.block;

    let mut c = C::Mat::zeros(th, tw);
    let step_pairs = th * tw * bs;
    for k in (0..n / bs).filter(|&k| take(k)) {
        let owner_col = pivot_owner(k, bs, tw);
        let mut a_panel = if gj == owner_col {
            a.block(0, pivot_offset(k, bs, tw), th, bs)
        } else {
            C::Mat::zeros(th, bs)
        };
        bcast_matrix(&row_comm, cfg.bcast, owner_col, &mut a_panel)?;

        let owner_row = pivot_owner(k, bs, th);
        let mut b_panel = if gi == owner_row {
            b.block(pivot_offset(k, bs, th), 0, bs, tw)
        } else {
            C::Mat::zeros(bs, tw)
        };
        bcast_matrix(&col_comm, cfg.bcast, owner_row, &mut b_panel)?;

        comm.compute(step_pairs as f64, 0, || {
            C::Mat::gemm(cfg.kernel, &a_panel, &b_panel, &mut c)
        });
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_product;
    use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, Matrix};
    use hsumma_runtime::Runtime;

    fn run_25d_case(q: usize, c: usize, n: usize, block: usize) {
        let grid = GridShape::new(q, q);
        let a = seeded_uniform(n, n, 1000);
        let b = seeded_uniform(n, n, 1001);
        let dist = BlockDist::new(grid, n, n);
        let at = dist.scatter(&a);
        let bt = dist.scatter(&b);
        let cfg = TwoDotFiveConfig {
            q,
            c,
            summa: SummaConfig {
                block,
                kernel: GemmKernel::Blocked,
                ..Default::default()
            },
        };
        let out = Runtime::run(q * q * c, |comm| {
            let (layer, i, j) = coords_3d(comm.rank(), q);
            let tile_rank = grid.rank(i, j);
            // Only layer 0 receives real data; other layers see zeros.
            let (a_in, b_in) = if layer == 0 {
                (at[tile_rank].clone(), bt[tile_rank].clone())
            } else {
                let (th, tw) = dist.tile_shape();
                (Matrix::zeros(th, tw), Matrix::zeros(th, tw))
            };
            twodotfive(comm, n, &a_in, &b_in, &cfg).unwrap()
        });
        // Collect layer-0 tiles in grid order.
        let tiles: Vec<Matrix> = (0..q * q)
            .map(|r| out[r].clone().expect("layer 0 must hold the result"))
            .collect();
        for (rank, res) in out.iter().enumerate().skip(q * q) {
            assert!(res.is_none(), "rank {rank} is not on layer 0");
        }
        let got = dist.gather(&tiles);
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "q={q} c={c} n={n} block={block}: err {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn twodotfive_c1_degenerates_to_summa() {
        run_25d_case(2, 1, 8, 2);
    }

    #[test]
    fn twodotfive_two_layers() {
        run_25d_case(2, 2, 8, 2);
    }

    #[test]
    fn twodotfive_four_layers() {
        run_25d_case(2, 4, 16, 2);
    }

    #[test]
    fn twodotfive_odd_grid() {
        run_25d_case(3, 2, 12, 2);
    }

    #[test]
    fn twodotfive_block_one() {
        run_25d_case(2, 2, 8, 1);
    }

    #[test]
    #[should_panic(expected = "must be divisible by c")]
    fn twodotfive_rejects_indivisible_steps() {
        // n/b = 3 steps, c = 2: cannot split evenly.
        run_25d_case(1, 2, 3, 1);
    }

    #[test]
    fn coords_roundtrip() {
        let q = 3;
        for rank in 0..q * q * 2 {
            let (l, i, j) = coords_3d(rank, q);
            assert_eq!(rank, l * q * q + i * q + j);
        }
    }
}
