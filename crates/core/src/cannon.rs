//! Cannon's algorithm (1969) — the paper's historical baseline (§I).
//!
//! Works on a square `q × q` grid with one tile per processor. After an
//! initial alignment (tile row `i` of `A` rotated left by `i`, tile column
//! `j` of `B` rotated up by `j`), the algorithm performs `q` rounds of
//! "multiply, then rotate `A` left and `B` up by one". Its restriction to
//! square processor counts is exactly why SUMMA superseded it in general
//! purpose libraries.

use hsumma_matrix::{gemm, GemmKernel, GridShape, Matrix};
use hsumma_runtime::Comm;

const TAG_SHIFT_A: u64 = 11;
const TAG_SHIFT_B: u64 = 12;

/// Sends `mat` to `dst` and receives the replacement from `src` on `comm`
/// (an `MPI_Sendrecv_replace`). Eager sends make the exchange deadlock-free.
/// `Matrix` is opaque to the runtime's byte accounting, so the wire size
/// is declared explicitly.
fn shift(comm: &Comm, dst: usize, src: usize, tag: u64, mat: Matrix) -> Matrix {
    if dst == comm.rank() {
        return mat; // rotation by zero
    }
    let (r, c) = mat.shape();
    let bytes = (r * c * std::mem::size_of::<f64>()) as u64;
    comm.send_sized(dst, tag, mat, bytes);
    comm.recv_sized::<Matrix>(src, tag, bytes)
}

/// Runs Cannon's algorithm on the calling rank. SPMD over a square grid;
/// operands block-checkerboard distributed. Returns the local `C` tile.
///
/// # Panics
/// Panics if the grid is not square or tile shapes are inconsistent.
pub fn cannon(
    comm: &Comm,
    grid: GridShape,
    n: usize,
    a: &Matrix,
    b: &Matrix,
    kernel: GemmKernel,
) -> Matrix {
    assert_eq!(
        grid.rows, grid.cols,
        "Cannon requires a square processor grid"
    );
    let q = grid.rows;
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    assert_eq!(n % q, 0, "n must be divisible by the grid side");
    let ts = n / q;
    assert_eq!(a.shape(), (ts, ts), "A tile has wrong shape");
    assert_eq!(b.shape(), (ts, ts), "B tile has wrong shape");

    let (i, j) = grid.coords(comm.rank());
    let left = |steps: usize| grid.rank(i, (j + q - steps % q) % q);
    let right = |steps: usize| grid.rank(i, (j + steps) % q);
    let up = |steps: usize| grid.rank((i + q - steps % q) % q, j);
    let down = |steps: usize| grid.rank((i + steps) % q, j);

    // Initial alignment: A_i· moves i positions left, B·_j moves j up.
    let mut a_cur = shift(comm, left(i), right(i), TAG_SHIFT_A, a.clone());
    let mut b_cur = shift(comm, up(j), down(j), TAG_SHIFT_B, b.clone());

    let mut c = Matrix::zeros(ts, ts);
    let step_flops = (2 * ts * ts * ts) as u64;
    for k in 0..q {
        (a_cur, b_cur) = comm.trace_step(k, ts, ts, || {
            comm.time_compute_flops(step_flops, || gemm(kernel, &a_cur, &b_cur, &mut c));
            let a_next = shift(comm, left(1), right(1), TAG_SHIFT_A, a_cur);
            let b_next = shift(comm, up(1), down(1), TAG_SHIFT_B, b_cur);
            (a_next, b_next)
        });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn run_cannon_case(q: usize, n: usize) {
        let grid = GridShape::new(q, q);
        let a = seeded_uniform(n, n, 500);
        let b = seeded_uniform(n, n, 600);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked)
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "q={q} n={n}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn cannon_2x2() {
        run_cannon_case(2, 8);
    }

    #[test]
    fn cannon_3x3() {
        run_cannon_case(3, 9);
    }

    #[test]
    fn cannon_4x4() {
        run_cannon_case(4, 16);
    }

    #[test]
    fn cannon_single_rank() {
        run_cannon_case(1, 4);
    }

    #[test]
    #[should_panic(expected = "square processor grid")]
    fn cannon_rejects_rectangular_grid() {
        let grid = GridShape::new(2, 4);
        let a = seeded_uniform(8, 8, 1);
        let b = seeded_uniform(8, 8, 2);
        let _ = distributed_product(grid, 8, &a, &b, |comm, at, bt| {
            cannon(comm, grid, 8, &at, &bt, GemmKernel::Blocked)
        });
    }
}
