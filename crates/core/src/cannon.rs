//! Cannon's algorithm (1969) — the paper's historical baseline (§I).
//!
//! Works on a square `q × q` grid with one tile per processor. After an
//! initial alignment (tile row `i` of `A` rotated left by `i`, tile column
//! `j` of `B` rotated up by `j`), the algorithm performs `q` rounds of
//! "multiply, then rotate `A` left and `B` up by one". Its restriction to
//! square processor counts is exactly why SUMMA superseded it in general
//! purpose libraries.

use crate::comm::{Communicator, MatLike};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::CommError;

const TAG_SHIFT_A: u64 = 11;
const TAG_SHIFT_B: u64 = 12;

/// Sends `mat` to `dst` and receives the replacement from `src` on `comm`
/// (an `MPI_Sendrecv_replace`). Eager sends make the exchange deadlock-free.
fn shift<C: Communicator>(
    comm: &C,
    dst: usize,
    src: usize,
    tag: u64,
    mat: C::Mat,
) -> Result<C::Mat, CommError> {
    if dst == comm.rank() {
        return Ok(mat); // rotation by zero
    }
    let (r, c) = (mat.rows(), mat.cols());
    comm.send_mat(dst, tag, mat)?;
    comm.recv_mat(src, tag, r, c)
}

/// Runs Cannon's algorithm on the calling rank. SPMD over a square grid;
/// operands block-checkerboard distributed. Returns the local `C` tile.
///
/// Generic over the [`Communicator`] substrate: real matrices over the
/// threaded runtime, or phantom payloads over the simulator's clocks.
///
/// # Panics
/// Panics if the grid is not square or tile shapes are inconsistent.
pub fn cannon<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    kernel: GemmKernel,
) -> Result<C::Mat, CommError> {
    assert_eq!(
        grid.rows, grid.cols,
        "Cannon requires a square processor grid"
    );
    let q = grid.rows;
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    assert_eq!(n % q, 0, "n must be divisible by the grid side");
    let ts = n / q;
    assert_eq!((a.rows(), a.cols()), (ts, ts), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (ts, ts), "B tile has wrong shape");

    let (i, j) = grid.coords(comm.rank());
    let left = |steps: usize| grid.rank(i, (j + q - steps % q) % q);
    let right = |steps: usize| grid.rank(i, (j + steps) % q);
    let up = |steps: usize| grid.rank((i + q - steps % q) % q, j);
    let down = |steps: usize| grid.rank((i + steps) % q, j);

    // Initial alignment: A_i· moves i positions left, B·_j moves j up.
    let mut a_cur = shift(comm, left(i), right(i), TAG_SHIFT_A, a.clone())?;
    let mut b_cur = shift(comm, up(j), down(j), TAG_SHIFT_B, b.clone())?;

    let mut c = C::Mat::zeros(ts, ts);
    let step_pairs = ts * ts * ts;
    for k in 0..q {
        (a_cur, b_cur) = comm.trace_step(k, ts, ts, || -> Result<_, CommError> {
            comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
                C::Mat::gemm(kernel, &a_cur, &b_cur, &mut c)
            });
            let a_next = shift(comm, left(1), right(1), TAG_SHIFT_A, a_cur)?;
            let b_next = shift(comm, up(1), down(1), TAG_SHIFT_B, b_cur)?;
            Ok((a_next, b_next))
        })?;
        comm.maybe_step_sync()?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn run_cannon_case(q: usize, n: usize) {
        let grid = GridShape::new(q, q);
        let a = seeded_uniform(n, n, 500);
        let b = seeded_uniform(n, n, 600);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            cannon(comm, grid, n, &at, &bt, GemmKernel::Blocked).unwrap()
        });
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "q={q} n={n}: max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn cannon_2x2() {
        run_cannon_case(2, 8);
    }

    #[test]
    fn cannon_3x3() {
        run_cannon_case(3, 9);
    }

    #[test]
    fn cannon_4x4() {
        run_cannon_case(4, 16);
    }

    #[test]
    fn cannon_single_rank() {
        run_cannon_case(1, 4);
    }

    #[test]
    #[should_panic(expected = "square processor grid")]
    fn cannon_rejects_rectangular_grid() {
        let grid = GridShape::new(2, 4);
        let a = seeded_uniform(8, 8, 1);
        let b = seeded_uniform(8, 8, 2);
        let _ = distributed_product(grid, 8, &a, &b, |comm, at, bt| {
            cannon(comm, grid, 8, &at, &bt, GemmKernel::Blocked).unwrap()
        });
    }
}
