//! Executable plans: one value that says *which* multiply to run and
//! *how*, plus the dispatcher that runs it.
//!
//! The serving layer's planner (and any caller that wants to defer the
//! algorithm decision) produces a [`PlannedAlgo`]; [`run_planned`] maps
//! it onto the algorithm implementations. Because the dispatcher is
//! generic over [`Communicator`], the same plan value executes real
//! matrices on the threaded runtime *and* replays on the simulator — so
//! a plan can be priced on `SimComm` before being committed to a pool.

use crate::cannon::cannon;
use crate::comm::Communicator;
use crate::hsumma::{hsumma, HsummaConfig};
use crate::overlap::{hsumma_overlap, summa_overlap};
use crate::summa::{summa, SummaConfig};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::CommError;

/// A fully resolved algorithm choice for one square `n × n` multiply.
#[derive(Clone, Copy, Debug)]
pub enum PlannedAlgo {
    /// SUMMA with the given panel width / broadcast / kernel.
    Summa(SummaConfig),
    /// SUMMA over the double-buffered pivot pipeline
    /// ([`crate::overlap::summa_overlap`]); `cfg.bcast` is ignored —
    /// nonblocking flat pushes replace the collective.
    SummaPipelined(SummaConfig),
    /// HSUMMA with a concrete `(I × J, B, b)` grouping.
    Hsumma(HsummaConfig),
    /// HSUMMA over the two-level pivot pipeline
    /// ([`crate::overlap::hsumma_overlap`]); the `*_bcast` fields are
    /// ignored — nonblocking flat pushes replace the collectives.
    HsummaPipelined(HsummaConfig),
    /// Cannon's algorithm (square grids only).
    Cannon {
        /// Local multiply kernel.
        kernel: GemmKernel,
    },
}

impl PlannedAlgo {
    /// Short human-readable description for logs and job reports.
    pub fn describe(&self) -> String {
        match self {
            PlannedAlgo::Summa(cfg) => format!("summa(b={})", cfg.block),
            PlannedAlgo::SummaPipelined(cfg) => format!("summa+pipe(b={})", cfg.block),
            PlannedAlgo::Hsumma(cfg) => format!(
                "hsumma(G={}x{}, B={}, b={})",
                cfg.groups.rows, cfg.groups.cols, cfg.outer_block, cfg.inner_block
            ),
            PlannedAlgo::HsummaPipelined(cfg) => format!(
                "hsumma+pipe(G={}x{}, B={}, b={})",
                cfg.groups.rows, cfg.groups.cols, cfg.outer_block, cfg.inner_block
            ),
            PlannedAlgo::Cannon { .. } => "cannon".to_string(),
        }
    }

    /// Which GEMM path the plan takes: `"pipelined"` for the
    /// double-buffered overlap variants, `"blocking"` otherwise. Benches
    /// report this per job so BENCH_*.json entries stay attributable.
    pub fn gemm_path(&self) -> &'static str {
        match self {
            PlannedAlgo::SummaPipelined(_) | PlannedAlgo::HsummaPipelined(_) => "pipelined",
            PlannedAlgo::Summa(_) | PlannedAlgo::Hsumma(_) | PlannedAlgo::Cannon { .. } => {
                "blocking"
            }
        }
    }
}

/// Runs the planned algorithm on the calling rank. SPMD: every rank of
/// `comm` must call this with the same plan and its local
/// block-checkerboard tiles; returns the local tile of `C`.
///
/// # Panics
/// Panics if the plan is inconsistent with `grid`/`n` (block-divisibility
/// and grouping preconditions of the underlying algorithms).
pub fn run_planned<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    plan: &PlannedAlgo,
) -> Result<C::Mat, CommError> {
    match plan {
        PlannedAlgo::Summa(cfg) => summa(comm, grid, n, a, b, cfg),
        PlannedAlgo::SummaPipelined(cfg) => summa_overlap(comm, grid, n, a, b, cfg),
        PlannedAlgo::Hsumma(cfg) => hsumma(comm, grid, n, a, b, cfg),
        PlannedAlgo::HsummaPipelined(cfg) => hsumma_overlap(comm, grid, n, a, b, cfg),
        PlannedAlgo::Cannon { kernel } => cannon(comm, grid, n, a, b, *kernel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn check(plan: PlannedAlgo, grid: GridShape, n: usize) {
        let a = seeded_uniform(n, n, 21);
        let b = seeded_uniform(n, n, 22);
        let want = reference_product(&a, &b);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            run_planned(comm, grid, n, &at, &bt, &plan).unwrap()
        });
        assert!(
            got.approx_eq(&want, 1e-9),
            "{} err {}",
            plan.describe(),
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn dispatches_summa() {
        check(
            PlannedAlgo::Summa(SummaConfig {
                block: 4,
                ..SummaConfig::default()
            }),
            GridShape::new(2, 2),
            16,
        );
    }

    #[test]
    fn dispatches_hsumma() {
        check(
            PlannedAlgo::Hsumma(HsummaConfig::uniform(GridShape::new(2, 2), 4)),
            GridShape::new(4, 4),
            32,
        );
    }

    #[test]
    fn dispatches_pipelined_variants() {
        check(
            PlannedAlgo::SummaPipelined(SummaConfig {
                block: 4,
                ..SummaConfig::default()
            }),
            GridShape::new(2, 2),
            16,
        );
        check(
            PlannedAlgo::HsummaPipelined(HsummaConfig::uniform(GridShape::new(2, 2), 4)),
            GridShape::new(4, 4),
            32,
        );
    }

    #[test]
    fn gemm_path_attributes_the_plan() {
        let cfg = SummaConfig::default();
        assert_eq!(PlannedAlgo::Summa(cfg).gemm_path(), "blocking");
        assert_eq!(PlannedAlgo::SummaPipelined(cfg).gemm_path(), "pipelined");
        let hcfg = HsummaConfig::uniform(GridShape::new(2, 2), 4);
        assert_eq!(PlannedAlgo::Hsumma(hcfg).gemm_path(), "blocking");
        assert_eq!(PlannedAlgo::HsummaPipelined(hcfg).gemm_path(), "pipelined");
        assert_eq!(
            PlannedAlgo::Cannon {
                kernel: GemmKernel::Packed
            }
            .gemm_path(),
            "blocking"
        );
    }

    #[test]
    fn dispatches_cannon() {
        check(
            PlannedAlgo::Cannon {
                kernel: GemmKernel::Packed,
            },
            GridShape::new(2, 2),
            16,
        );
    }

    #[test]
    fn describe_is_informative() {
        let plan = PlannedAlgo::Hsumma(HsummaConfig::uniform(GridShape::new(2, 4), 8));
        assert_eq!(plan.describe(), "hsumma(G=2x4, B=8, b=8)");
        assert_eq!(
            PlannedAlgo::Summa(SummaConfig::default()).describe(),
            "summa(b=32)"
        );
        assert_eq!(
            PlannedAlgo::SummaPipelined(SummaConfig::default()).describe(),
            "summa+pipe(b=32)"
        );
        assert_eq!(
            PlannedAlgo::HsummaPipelined(HsummaConfig::uniform(GridShape::new(2, 4), 8)).describe(),
            "hsumma+pipe(G=2x4, B=8, b=8)"
        );
    }
}
