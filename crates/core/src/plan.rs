//! Executable plans: one value that says *which* multiply to run and
//! *how*, plus the dispatcher that runs it.
//!
//! The serving layer's planner (and any caller that wants to defer the
//! algorithm decision) produces a [`PlannedAlgo`]; [`run_planned`] maps
//! it onto the algorithm implementations. Because the dispatcher is
//! generic over [`Communicator`], the same plan value executes real
//! matrices on the threaded runtime *and* replays on the simulator — so
//! a plan can be priced on `SimComm` before being committed to a pool.

use crate::cannon::cannon;
use crate::comm::{Communicator, MatLike};
use crate::cosma::{cosma, CosmaConfig};
use crate::distribution::{redistribute, Distribution};
use crate::hsumma::{hsumma, HsummaConfig};
use crate::overlap::{hsumma_overlap, summa_overlap};
use crate::rect::{hsumma_rect, summa_rect, MatMulDims};
use crate::summa::{summa, SummaConfig};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_runtime::CommError;

/// A fully resolved algorithm choice for one `C(m×n) = A(m×k) · B(k×n)`
/// multiply (square `m = n = k` being the common case).
#[derive(Clone, Copy, Debug)]
pub enum PlannedAlgo {
    /// SUMMA with the given panel width / broadcast / kernel. Square
    /// operands run the classic schedule; rectangular extents dispatch
    /// to [`crate::rect::summa_rect`].
    Summa(SummaConfig),
    /// SUMMA over the double-buffered pivot pipeline
    /// ([`crate::overlap::summa_overlap`]); `cfg.bcast` is ignored —
    /// nonblocking flat pushes replace the collective. Square only.
    SummaPipelined(SummaConfig),
    /// HSUMMA with a concrete `(I × J, B, b)` grouping; rectangular
    /// extents dispatch to [`crate::rect::hsumma_rect`].
    Hsumma(HsummaConfig),
    /// HSUMMA over the two-level pivot pipeline
    /// ([`crate::overlap::hsumma_overlap`]); the `*_bcast` fields are
    /// ignored — nonblocking flat pushes replace the collectives.
    /// Square only.
    HsummaPipelined(HsummaConfig),
    /// Cannon's algorithm (square grids and operands only).
    Cannon {
        /// Local multiply kernel.
        kernel: GemmKernel,
    },
    /// The COSMA-style brick schedule ([`crate::cosma()`]). The
    /// dispatcher redistributes the block-checkerboard tiles into the
    /// decomposition's brick layout, runs the schedule, and
    /// redistributes the product back — so the plan is interchangeable
    /// with the grid algorithms under the same tile convention, and
    /// needs no divisibility from `(m, n, k)` at all.
    Cosma(CosmaConfig),
}

impl PlannedAlgo {
    /// Short human-readable description for logs and job reports.
    pub fn describe(&self) -> String {
        match self {
            PlannedAlgo::Summa(cfg) => format!("summa(b={})", cfg.block),
            PlannedAlgo::SummaPipelined(cfg) => format!("summa+pipe(b={})", cfg.block),
            PlannedAlgo::Hsumma(cfg) => format!(
                "hsumma(G={}x{}, B={}, b={})",
                cfg.groups.rows, cfg.groups.cols, cfg.outer_block, cfg.inner_block
            ),
            PlannedAlgo::HsummaPipelined(cfg) => format!(
                "hsumma+pipe(G={}x{}, B={}, b={})",
                cfg.groups.rows, cfg.groups.cols, cfg.outer_block, cfg.inner_block
            ),
            PlannedAlgo::Cannon { .. } => "cannon".to_string(),
            PlannedAlgo::Cosma(cfg) => format!(
                "cosma({}x{}x{}, steps={})",
                cfg.decomp.a, cfg.decomp.b, cfg.decomp.c, cfg.steps
            ),
        }
    }

    /// Which GEMM path the plan takes: `"pipelined"` for the
    /// double-buffered overlap variants, `"blocking"` otherwise. Benches
    /// report this per job so BENCH_*.json entries stay attributable.
    pub fn gemm_path(&self) -> &'static str {
        match self {
            PlannedAlgo::SummaPipelined(_) | PlannedAlgo::HsummaPipelined(_) => "pipelined",
            PlannedAlgo::Summa(_)
            | PlannedAlgo::Hsumma(_)
            | PlannedAlgo::Cannon { .. }
            | PlannedAlgo::Cosma(_) => "blocking",
        }
    }
}

/// Runs the planned algorithm on the calling rank. SPMD: every rank of
/// `comm` must call this with the same plan and its local
/// block-checkerboard tiles; returns the local tile of `C`.
///
/// Square-operand shim for [`run_planned_gemm`].
///
/// # Panics
/// Panics if the plan is inconsistent with `grid`/`n` (block-divisibility
/// and grouping preconditions of the underlying algorithms).
pub fn run_planned<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    plan: &PlannedAlgo,
) -> Result<C::Mat, CommError> {
    run_planned_gemm(comm, grid, n, n, n, a, b, plan)
}

/// Runs the planned algorithm for `C(m×n) = A(m×k) · B(k×n)` on the
/// calling rank. SPMD: every rank of `comm` must call this with the
/// same plan and its local tiles under the checkerboard layout of
/// [`Distribution::grid2d`] (`A` over `grid2d(grid, m, k)`, `B` over
/// `grid2d(grid, k, n)`); returns the local tile of `C` under
/// `grid2d(grid, m, n)`. When the grid divides every extent — a
/// precondition of the grid algorithms anyway — those layouts are the
/// classic uniform block-checkerboard tiles.
///
/// # Panics
/// Panics if the plan is inconsistent with `grid`/`(m, n, k)`: the
/// pipelined and Cannon plans require square operands, the grid
/// algorithms require grid divisibility; only [`PlannedAlgo::Cosma`]
/// accepts arbitrary extents.
#[allow(clippy::too_many_arguments)]
pub fn run_planned_gemm<C: Communicator>(
    comm: &C,
    grid: GridShape,
    m: usize,
    n: usize,
    k: usize,
    a: &C::Mat,
    b: &C::Mat,
    plan: &PlannedAlgo,
) -> Result<C::Mat, CommError> {
    let square = m == n && k == n;
    let dims = MatMulDims { m, l: k, n };
    match plan {
        PlannedAlgo::Summa(cfg) if square => summa(comm, grid, n, a, b, cfg),
        PlannedAlgo::Summa(cfg) => summa_rect(comm, grid, dims, a, b, cfg),
        PlannedAlgo::SummaPipelined(cfg) => {
            assert!(square, "the pipelined SUMMA plan is square-only");
            summa_overlap(comm, grid, n, a, b, cfg)
        }
        PlannedAlgo::Hsumma(cfg) if square => hsumma(comm, grid, n, a, b, cfg),
        PlannedAlgo::Hsumma(cfg) => hsumma_rect(comm, grid, dims, a, b, cfg),
        PlannedAlgo::HsummaPipelined(cfg) => {
            assert!(square, "the pipelined HSUMMA plan is square-only");
            hsumma_overlap(comm, grid, n, a, b, cfg)
        }
        PlannedAlgo::Cannon { kernel } => {
            assert!(square, "the Cannon plan is square-only");
            cannon(comm, grid, n, a, b, *kernel)
        }
        PlannedAlgo::Cosma(cfg) => {
            let p = comm.size();
            let d = cfg.decomp;
            // Checkerboard → bricks, run, bricks → checkerboard. The
            // redistribution schedules are pure functions of the
            // descriptors, preserving multiset parity across substrates.
            let a_brick = redistribute(
                comm,
                &Distribution::grid2d(grid, m, k),
                &d.a_distribution(m, k, p),
                a,
            )?;
            let b_brick = redistribute(
                comm,
                &Distribution::grid2d(grid, k, n),
                &d.b_distribution(k, n, p),
                b,
            )?;
            let dc = d.c_distribution(m, n, p);
            let c_brick = cosma(comm, m, n, k, &a_brick, &b_brick, cfg)?
                .unwrap_or_else(|| C::Mat::zeros(0, 0));
            redistribute(comm, &dc, &Distribution::grid2d(grid, m, n), &c_brick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    fn check(plan: PlannedAlgo, grid: GridShape, n: usize) {
        let a = seeded_uniform(n, n, 21);
        let b = seeded_uniform(n, n, 22);
        let want = reference_product(&a, &b);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            run_planned(comm, grid, n, &at, &bt, &plan).unwrap()
        });
        assert!(
            got.approx_eq(&want, 1e-9),
            "{} err {}",
            plan.describe(),
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn dispatches_summa() {
        check(
            PlannedAlgo::Summa(SummaConfig {
                block: 4,
                ..SummaConfig::default()
            }),
            GridShape::new(2, 2),
            16,
        );
    }

    #[test]
    fn dispatches_hsumma() {
        check(
            PlannedAlgo::Hsumma(HsummaConfig::uniform(GridShape::new(2, 2), 4)),
            GridShape::new(4, 4),
            32,
        );
    }

    #[test]
    fn dispatches_pipelined_variants() {
        check(
            PlannedAlgo::SummaPipelined(SummaConfig {
                block: 4,
                ..SummaConfig::default()
            }),
            GridShape::new(2, 2),
            16,
        );
        check(
            PlannedAlgo::HsummaPipelined(HsummaConfig::uniform(GridShape::new(2, 2), 4)),
            GridShape::new(4, 4),
            32,
        );
    }

    #[test]
    fn gemm_path_attributes_the_plan() {
        let cfg = SummaConfig::default();
        assert_eq!(PlannedAlgo::Summa(cfg).gemm_path(), "blocking");
        assert_eq!(PlannedAlgo::SummaPipelined(cfg).gemm_path(), "pipelined");
        let hcfg = HsummaConfig::uniform(GridShape::new(2, 2), 4);
        assert_eq!(PlannedAlgo::Hsumma(hcfg).gemm_path(), "blocking");
        assert_eq!(PlannedAlgo::HsummaPipelined(hcfg).gemm_path(), "pipelined");
        assert_eq!(
            PlannedAlgo::Cannon {
                kernel: GemmKernel::Packed
            }
            .gemm_path(),
            "blocking"
        );
    }

    /// Runs `run_planned_gemm` over checkerboard tiles dealt by
    /// `Distribution::grid2d` (uneven extents allowed) and compares the
    /// gathered product with the serial reference.
    fn check_gemm(plan: PlannedAlgo, grid: GridShape, m: usize, n: usize, k: usize) {
        use hsumma_runtime::Runtime;
        let a = seeded_uniform(m, k, 31);
        let b = seeded_uniform(k, n, 32);
        let da = Distribution::grid2d(grid, m, k);
        let db = Distribution::grid2d(grid, k, n);
        let dc = Distribution::grid2d(grid, m, n);
        let a_tiles = std::sync::Arc::new(da.scatter(&a));
        let b_tiles = std::sync::Arc::new(db.scatter(&b));
        let tiles = Runtime::run(grid.size(), {
            let (a_tiles, b_tiles) = (a_tiles.clone(), b_tiles.clone());
            move |comm| {
                let at = a_tiles[comm.rank()].clone();
                let bt = b_tiles[comm.rank()].clone();
                run_planned_gemm(comm, grid, m, n, k, &at, &bt, &plan).unwrap()
            }
        });
        let got = dc.gather(&tiles);
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "{} err {}",
            plan.describe(),
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn dispatches_cosma_with_redistribution() {
        // Nothing divides anything: the cosma plan is the only one that
        // can serve this shape on a 2 x 2 grid.
        check_gemm(
            PlannedAlgo::Cosma(CosmaConfig::for_problem(4, 7, 5, 9)),
            GridShape::new(2, 2),
            7,
            5,
            9,
        );
        // Square divisible shape through the same path.
        check_gemm(
            PlannedAlgo::Cosma(CosmaConfig::for_problem(4, 16, 16, 16)),
            GridShape::new(2, 2),
            16,
            16,
            16,
        );
    }

    #[test]
    fn dispatches_rect_forms_for_rectangular_extents() {
        check_gemm(
            PlannedAlgo::Summa(SummaConfig {
                block: 2,
                ..SummaConfig::default()
            }),
            GridShape::new(2, 2),
            8,
            6,
            4,
        );
        check_gemm(
            PlannedAlgo::Hsumma(HsummaConfig::uniform(GridShape::new(2, 2), 4)),
            GridShape::new(4, 4),
            16,
            32,
            16,
        );
    }

    #[test]
    fn dispatches_cannon() {
        check(
            PlannedAlgo::Cannon {
                kernel: GemmKernel::Packed,
            },
            GridShape::new(2, 2),
            16,
        );
    }

    #[test]
    fn describe_is_informative() {
        let plan = PlannedAlgo::Hsumma(HsummaConfig::uniform(GridShape::new(2, 4), 8));
        assert_eq!(plan.describe(), "hsumma(G=2x4, B=8, b=8)");
        assert_eq!(
            PlannedAlgo::Summa(SummaConfig::default()).describe(),
            "summa(b=32)"
        );
        assert_eq!(
            PlannedAlgo::SummaPipelined(SummaConfig::default()).describe(),
            "summa+pipe(b=32)"
        );
        assert_eq!(
            PlannedAlgo::HsummaPipelined(HsummaConfig::uniform(GridShape::new(2, 4), 8)).describe(),
            "hsumma+pipe(G=2x4, B=8, b=8)"
        );
    }
}
