//! Timing replay of the SUMMA/HSUMMA communication schedules on the
//! discrete-event simulator.
//!
//! The executable algorithms ([`mod@crate::summa`], [`mod@crate::hsumma`]) move
//! real matrix data between threads; that caps experiments at laptop
//! scale. Their communication schedules, however, are data-independent,
//! so this module replays exactly the same schedules — message sizes,
//! roots, communicator structure — on [`SimNet`] clocks with phantom
//! payloads and analytic `γ·flops` compute charges. This is what runs at
//! `p = 2048 … 16384` and regenerates the paper's BlueGene/P results
//! (Figs. 8–9) and Grid5000 results (Figs. 5–7).

use crate::grid::HierGrid;
use hsumma_matrix::GridShape;
use hsumma_netsim::model::ELEM_BYTES;
use hsumma_netsim::{Platform, SimBcast, SimNet, SimReport};

/// Simulated SUMMA: `n × n` operands on `grid`, panel width `b`,
/// broadcast algorithm `bcast`. Returns the aggregate timing report.
pub fn sim_summa(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_summa_on(&mut net, platform.gamma, grid, n, b, bcast, false)
}

/// Like [`sim_summa`], but with *blocking-collective* (per-step
/// synchronized) semantics: after every SUMMA step all clocks align, as
/// they effectively do when every rank sits inside a blocking
/// `MPI_Bcast` chain each step. Use this when comparing against measured
/// MPI timings; the unsynchronized variant models a perfectly pipelined
/// (non-blocking) schedule.
pub fn sim_summa_sync(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_summa_on(&mut net, platform.gamma, grid, n, b, bcast, true)
}

/// Simulated SUMMA on a caller-provided network (e.g. with a torus
/// topology). `gamma` is seconds per multiply-add pair.
pub fn sim_summa_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    assert_eq!(n % grid.rows, 0, "n must be divisible by grid rows");
    assert_eq!(n % grid.cols, 0, "n must be divisible by grid cols");
    let (th, tw) = (n / grid.rows, n / grid.cols);
    assert!(
        b > 0 && tw % b == 0 && th % b == 0,
        "block must divide tile extents"
    );

    let row_ranks: Vec<Vec<usize>> = (0..grid.rows)
        .map(|gi| (0..grid.cols).map(|gj| grid.rank(gi, gj)).collect())
        .collect();
    let col_ranks: Vec<Vec<usize>> = (0..grid.cols)
        .map(|gj| (0..grid.rows).map(|gi| grid.rank(gi, gj)).collect())
        .collect();

    let a_panel_bytes = (th * b) as u64 * ELEM_BYTES;
    let b_panel_bytes = (b * tw) as u64 * ELEM_BYTES;
    let pairs_per_step = (th * tw * b) as u64;

    for k in 0..n / b {
        let starts: Vec<f64> = (0..net.size()).map(|r| net.now(r)).collect();
        let owner_col = k * b / tw;
        for ranks in &row_ranks {
            bcast.run(net, ranks, owner_col, a_panel_bytes);
        }
        let owner_row = k * b / th;
        for ranks in &col_ranks {
            bcast.run(net, ranks, owner_row, b_panel_bytes);
        }
        for r in 0..net.size() {
            net.compute_flops(r, gamma * pairs_per_step as f64, 2 * pairs_per_step);
        }
        for (r, t0) in starts.iter().enumerate() {
            net.record_step(r, k, b, b, *t0, net.now(r));
        }
        if step_sync {
            net.barrier_all();
        }
    }
    net.report()
}

/// Simulated HSUMMA: `groups = I × J`, outer block `B`, inner block `b`.
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma(
    platform: &Platform,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_hsumma_on(
        &mut net,
        platform.gamma,
        grid,
        groups,
        n,
        outer_b,
        inner_b,
        outer_bcast,
        inner_bcast,
        false,
    )
}

/// Like [`sim_hsumma`], with per-step synchronized (blocking-collective)
/// semantics — see [`sim_summa_sync`].
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma_sync(
    platform: &Platform,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_hsumma_on(
        &mut net,
        platform.gamma,
        grid,
        groups,
        n,
        outer_b,
        inner_b,
        outer_bcast,
        inner_bcast,
        true,
    )
}

/// Simulated HSUMMA on a caller-provided network.
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    let hg = HierGrid::new(grid, groups);
    let inner = hg.inner();
    assert_eq!(n % grid.rows, 0, "n must be divisible by grid rows");
    assert_eq!(n % grid.cols, 0, "n must be divisible by grid cols");
    let (th, tw) = (n / grid.rows, n / grid.cols);
    let (bb, bs) = (outer_b, inner_b);
    assert!(
        bs > 0 && bb % bs == 0,
        "inner block must divide outer block"
    );
    assert!(
        tw % bb == 0 && th % bb == 0,
        "outer block must divide tile extents"
    );

    let outer_a_bytes = (th * bb) as u64 * ELEM_BYTES;
    let outer_b_bytes = (bb * tw) as u64 * ELEM_BYTES;
    let inner_a_bytes = (th * bs) as u64 * ELEM_BYTES;
    let inner_b_bytes = (bs * tw) as u64 * ELEM_BYTES;
    let pairs_per_inner_step = (th * tw * bs) as u64;

    // Pre-build the rank lists of the four communicator families.
    let group_row: Vec<Vec<Vec<usize>>> = (0..grid.rows)
        .map(|gi| {
            (0..inner.cols)
                .map(|jk| hg.group_row_ranks(gi / inner.rows, gi % inner.rows, jk))
                .collect()
        })
        .collect();
    let group_col: Vec<Vec<Vec<usize>>> = (0..grid.cols)
        .map(|gj| {
            (0..inner.rows)
                .map(|ik| hg.group_col_ranks(gj / inner.cols, ik, gj % inner.cols))
                .collect()
        })
        .collect();
    let inner_row: Vec<Vec<Vec<usize>>> = (0..grid.rows)
        .map(|gi| {
            (0..groups.cols)
                .map(|y| hg.inner_row_ranks(gi / inner.rows, y, gi % inner.rows))
                .collect()
        })
        .collect();
    let inner_col: Vec<Vec<Vec<usize>>> = (0..grid.cols)
        .map(|gj| {
            (0..groups.rows)
                .map(|x| hg.inner_col_ranks(x, gj / inner.cols, gj % inner.cols))
                .collect()
        })
        .collect();

    for kg in 0..n / bb {
        let starts: Vec<f64> = (0..net.size()).map(|r| net.now(r)).collect();
        // ---- inter-group broadcast of A's outer panel --------------------
        let gcol = kg * bb / tw;
        let (yk, jk) = (gcol / inner.cols, gcol % inner.cols);
        for per_row in &group_row {
            outer_bcast.run(net, &per_row[jk], yk, outer_a_bytes);
        }
        // ---- inter-group broadcast of B's outer panel --------------------
        let grow = kg * bb / th;
        let (xk, ik) = (grow / inner.rows, grow % inner.rows);
        for per_col in &group_col {
            outer_bcast.run(net, &per_col[ik], xk, outer_b_bytes);
        }
        // ---- intra-group steps --------------------------------------------
        for _ki in 0..bb / bs {
            for per_row in &inner_row {
                for ranks in per_row {
                    inner_bcast.run(net, ranks, jk, inner_a_bytes);
                }
            }
            for per_col in &inner_col {
                for ranks in per_col {
                    inner_bcast.run(net, ranks, ik, inner_b_bytes);
                }
            }
            for r in 0..net.size() {
                net.compute_flops(
                    r,
                    gamma * pairs_per_inner_step as f64,
                    2 * pairs_per_inner_step,
                );
            }
            if step_sync {
                net.barrier_all();
            }
        }
        for (r, t0) in starts.iter().enumerate() {
            net.record_step(r, kg, bb, bs, *t0, net.now(r));
        }
    }
    net.report()
}

/// Simulated Cannon's algorithm on a square `q × q` grid: alignment
/// shifts, then `q` rounds of multiply + neighbour shifts. Used as a
/// baseline in the related-work comparison.
pub fn sim_cannon(platform: &Platform, q: usize, n: usize, step_sync: bool) -> SimReport {
    let mut net = SimNet::new(q * q, platform.net);
    sim_cannon_on(&mut net, platform.gamma, q, n, step_sync)
}

/// Simulated Cannon's algorithm on a caller-provided network (so a
/// tracer can be attached beforehand).
pub fn sim_cannon_on(
    net: &mut SimNet,
    gamma: f64,
    q: usize,
    n: usize,
    step_sync: bool,
) -> SimReport {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    let grid = GridShape::new(q, q);
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    let ts = n / q;
    let tile_bytes = (ts * ts) as u64 * ELEM_BYTES;
    let pairs_per_round = (ts * ts * ts) as u64;

    // One ring-shift phase: every rank isends to its destination, then
    // blocks on its source — the eager exchange the runtime performs.
    let shift = |net: &mut SimNet, dest: &dyn Fn(usize, usize) -> usize| {
        let pending: Vec<(usize, _)> = (0..q * q)
            .filter_map(|r| {
                let (i, j) = grid.coords(r);
                let d = dest(i, j);
                // A rotation by zero stays local (the executable version
                // returns without sending).
                (d != r).then(|| (d, net.isend(r, d, tile_bytes)))
            })
            .collect();
        for (dst, msg) in pending {
            net.deliver(dst, msg);
        }
    };

    // Alignment: row i of A left by i, column j of B up by j (ranks with
    // shift 0 stay put, matching the executable implementation).
    shift(net, &|i, j| {
        if i == 0 {
            grid.rank(i, j)
        } else {
            grid.rank(i, (j + q - i % q) % q)
        }
    });
    shift(net, &|i, j| {
        if j == 0 {
            grid.rank(i, j)
        } else {
            grid.rank((i + q - j % q) % q, j)
        }
    });

    for k in 0..q {
        let starts: Vec<f64> = (0..q * q).map(|r| net.now(r)).collect();
        for r in 0..q * q {
            net.compute_flops(r, gamma * pairs_per_round as f64, 2 * pairs_per_round);
        }
        if q > 1 {
            shift(net, &|i, j| grid.rank(i, (j + q - 1) % q));
            shift(net, &|i, j| grid.rank((i + q - 1) % q, j));
        }
        for (r, t0) in starts.iter().enumerate() {
            net.record_step(r, k, ts, ts, *t0, net.now(r));
        }
        if step_sync {
            net.barrier_all();
        }
    }
    net.report()
}

/// Simulated Fox's algorithm on a square `q × q` grid: per round, a
/// diagonal-offset broadcast of `A` along rows plus a `B` roll-up.
pub fn sim_fox(
    platform: &Platform,
    q: usize,
    n: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    let mut net = SimNet::new(q * q, platform.net);
    sim_fox_on(&mut net, platform.gamma, q, n, bcast, step_sync)
}

/// Simulated Fox's algorithm on a caller-provided network (so a tracer
/// can be attached beforehand).
pub fn sim_fox_on(
    net: &mut SimNet,
    gamma: f64,
    q: usize,
    n: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    let grid = GridShape::new(q, q);
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    let ts = n / q;
    let tile_bytes = (ts * ts) as u64 * ELEM_BYTES;
    let pairs_per_round = (ts * ts * ts) as u64;
    let row_ranks: Vec<Vec<usize>> = (0..q)
        .map(|gi| (0..q).map(|gj| grid.rank(gi, gj)).collect())
        .collect();

    for k in 0..q {
        let starts: Vec<f64> = (0..q * q).map(|r| net.now(r)).collect();
        for (gi, ranks) in row_ranks.iter().enumerate() {
            bcast.run(net, ranks, (gi + k) % q, tile_bytes);
        }
        for r in 0..q * q {
            net.compute_flops(r, gamma * pairs_per_round as f64, 2 * pairs_per_round);
        }
        if q > 1 {
            let pending: Vec<(usize, _)> = (0..q * q)
                .map(|r| {
                    let (i, j) = grid.coords(r);
                    let up = grid.rank((i + q - 1) % q, j);
                    (up, net.isend(r, up, tile_bytes))
                })
                .collect();
            for (dst, msg) in pending {
                net.deliver(dst, msg);
            }
        }
        for (r, t0) in starts.iter().enumerate() {
            net.record_step(r, k, ts, ts, *t0, net.now(r));
        }
        if step_sync {
            net.barrier_all();
        }
    }
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn hsumma_with_one_group_equals_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::Binomial);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(1, 1),
            256,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(close(s.total_time, h.total_time), "{s:?} vs {h:?}");
        assert!(close(s.comm_time, h.comm_time));
        assert_eq!(s.msgs, h.msgs);
        assert_eq!(s.bytes, h.bytes);
    }

    #[test]
    fn hsumma_with_p_groups_equals_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::Binomial);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(8, 8),
            256,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(close(s.total_time, h.total_time), "{s:?} vs {h:?}");
        assert!(close(s.comm_time, h.comm_time));
        assert_eq!(s.msgs, h.msgs);
        assert_eq!(s.bytes, h.bytes);
    }

    #[test]
    fn hsumma_moves_same_volume_as_summa_for_any_group_count() {
        // §III: "The amount of data sent is the same as in SUMMA."
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 128, 16, SimBcast::Binomial);
        for (_, groups) in HierGrid::valid_group_counts(grid) {
            let h = sim_hsumma(
                &plat,
                grid,
                groups,
                128,
                16,
                16,
                SimBcast::Binomial,
                SimBcast::Binomial,
            );
            // Every rank receives each panel exactly once under a tree
            // broadcast, so total bytes moved must match SUMMA's.
            assert_eq!(h.bytes, s.bytes, "groups {groups:?}");
        }
    }

    #[test]
    fn interior_grouping_beats_summa_in_latency_dominated_regime() {
        // α/β >> message sizes: grouping must strictly help (paper Eq. 10).
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(1.0, 1e-12),
            gamma: 0.0,
        };
        let grid = GridShape::new(16, 16);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::ScatterAllgather);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(4, 4),
            256,
            16,
            16,
            SimBcast::ScatterAllgather,
            SimBcast::ScatterAllgather,
        );
        assert!(
            h.comm_time < s.comm_time,
            "HSUMMA {h:?} should beat SUMMA {s:?} when latency dominates"
        );
    }

    #[test]
    fn compute_time_is_group_invariant() {
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(4, 4);
        let mut comps = Vec::new();
        for (_, groups) in HierGrid::valid_group_counts(grid) {
            let h = sim_hsumma(
                &plat,
                grid,
                groups,
                64,
                8,
                8,
                SimBcast::Binomial,
                SimBcast::Binomial,
            );
            comps.push(h.comp_time);
        }
        for w in comps.windows(2) {
            assert!(close(w[0], w[1]), "compute time changed with G: {comps:?}");
        }
        // And it matches 2n³/p flops = n³/p multiply-add pairs per rank.
        let n: u64 = 64;
        let p: u64 = 16;
        let want = plat.gamma * (n * n * n / p) as f64;
        assert!(close(comps[0], want));
    }

    #[test]
    fn summa_comm_time_matches_binomial_closed_form() {
        // Fresh net, square grid: per step the critical path is one row
        // bcast + one col bcast, log2(√p)(α+mβ) each; steps chain.
        let plat = Platform {
            name: "unit",
            net: hsumma_netsim::Hockney::new(1e-3, 1e-9),
            gamma: 0.0,
        };
        let grid = GridShape::new(4, 4);
        let (n, b) = (64usize, 16usize);
        let r = sim_summa(&plat, grid, n, b, SimBcast::Binomial);
        let m = (n / 4 * b) as f64 * 8.0;
        let steps = (n / b) as f64;
        let per_bcast = 2.0 * (1e-3 + m * 1e-9); // log2(4) = 2 rounds
        let want = steps * 2.0 * per_bcast; // A bcast + B bcast per step
        assert!(
            close(r.total_time, want),
            "got {}, want {want}",
            r.total_time
        );
    }

    #[test]
    fn cannon_sim_message_count_matches_schedule() {
        // Alignment: rows 1..q shift A (q ranks each), cols 1..q shift B;
        // then q rounds of 2 shifts per rank.
        let plat = Platform::grid5000();
        let q = 4;
        let r = sim_cannon(&plat, q, 64, false);
        let align = 2 * (q * (q - 1)) as u64;
        let rounds = (q * q * q * 2) as u64;
        assert_eq!(r.msgs, align + rounds);
    }

    #[test]
    fn cannon_sim_single_rank_is_compute_only() {
        let plat = Platform::bluegene_p();
        let r = sim_cannon(&plat, 1, 32, false);
        assert_eq!(r.msgs, 0);
        let want = plat.gamma * (32u64 * 32 * 32) as f64;
        assert!(close(r.comp_time, want));
    }

    #[test]
    fn fox_sim_counts_broadcast_and_roll_messages() {
        let plat = Platform::grid5000();
        let q = 4;
        let r = sim_fox(&plat, q, 64, SimBcast::Binomial, false);
        // Per round: q row-bcasts of (q-1) messages each + q*q roll sends.
        let per_round = (q * (q - 1) + q * q) as u64;
        assert_eq!(r.msgs, q as u64 * per_round);
    }

    #[test]
    fn cannon_sends_fewer_messages_than_fine_grained_summa() {
        // Per-rank volume is 2n²/√p for both algorithms, but Cannon needs
        // only one exchange per operand per round while SUMMA at small
        // block sizes pays a broadcast per panel — message count is where
        // Cannon's (restricted) schedule wins.
        let plat = Platform::bluegene_p();
        let q = 4;
        let n = 64;
        let cannon = sim_cannon(&plat, q, n, false);
        let summa = sim_summa(&plat, GridShape::new(q, q), n, 8, SimBcast::Binomial);
        assert!(
            cannon.msgs < summa.msgs,
            "{} vs {}",
            cannon.msgs,
            summa.msgs
        );
        // ...and total volume is the same order: every rank receives
        // 2n²/√p either way (Cannon's roots also receive, and it pays
        // one-time alignment shifts, so it sits slightly above).
        let per_rank = 2 * (n * n / q) as u64 * 8;
        assert!(cannon.bytes <= (q * q) as u64 * per_rank * 2);
        assert!(summa.bytes <= (q * q) as u64 * per_rank);
    }

    #[test]
    fn summa_message_count_matches_closed_form() {
        // Binomial bcast delivers to q−1 of q ranks: per step the row
        // direction sends s·(t−1) messages and the column direction
        // t·(s−1); times n/b steps.
        let plat = Platform::grid5000();
        for (s, t, n, b) in [(4usize, 4usize, 64usize, 8usize), (2, 8, 64, 4)] {
            let grid = GridShape::new(s, t);
            let r = sim_summa(&plat, grid, n, b, SimBcast::Binomial);
            let want = (n / b) * (s * (t - 1) + t * (s - 1));
            assert_eq!(r.msgs, want as u64, "{s}x{t}");
        }
    }

    #[test]
    fn hsumma_message_count_matches_closed_form() {
        // Per outer step: inter-group A: s·(J−1), inter-group B: t·(I−1);
        // per inner step: intra A: s·J·(t/J−1), intra B: t·I·(s/I−1).
        let plat = Platform::grid5000();
        let (s, t, i, j, n, b) = (4usize, 8usize, 2usize, 4usize, 64usize, 8usize);
        let grid = GridShape::new(s, t);
        let groups = GridShape::new(i, j);
        let r = sim_hsumma(
            &plat,
            grid,
            groups,
            n,
            b,
            b,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        let per_outer = s * (j - 1) + t * (i - 1);
        let per_inner = s * j * (t / j - 1) + t * i * (s / i - 1);
        let want = (n / b) * (per_outer + per_inner);
        assert_eq!(r.msgs, want as u64);
    }

    #[test]
    fn rectangular_grids_simulate() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 8);
        let s = sim_summa(&plat, grid, 64, 8, SimBcast::Binomial);
        assert!(s.total_time > 0.0);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(2, 4),
            64,
            8,
            8,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(h.total_time > 0.0);
        assert_eq!(h.bytes, s.bytes);
    }
}
