//! Timing replay of the communication schedules on the discrete-event
//! simulator — thin wrappers over the *same* generic algorithms that run
//! on the threaded runtime.
//!
//! The executable algorithms ([`mod@crate::summa`], [`mod@crate::hsumma`], …)
//! are generic over [`crate::comm::Communicator`]. On the threaded
//! substrate they move real matrix data between threads; that caps
//! experiments at laptop scale. Run over [`hsumma_netsim::spmd::SimComm`]
//! instead, the *identical* schedule code moves phantom payloads
//! ([`PhantomMat`]: sizes only), charges `γ·pairs` analytically and
//! advances per-rank virtual clocks. Each `sim_*` function here just
//! instantiates the generic algorithm on that substrate. This is what
//! runs at `p = 2048 … 16384` and regenerates the paper's BlueGene/P
//! results (Figs. 8–9) and Grid5000 results (Figs. 5–7).

use crate::cannon::cannon;
use crate::comm::{Communicator, MatLike, PhantomMat};
use crate::cosma::{cosma, CosmaConfig};
use crate::fox::fox_with;
use crate::hsumma::{hsumma, HsummaConfig};
use crate::overlap::summa_overlap;
use crate::summa::{summa, SummaConfig};
use crate::twodotfive::{twodotfive, TwoDotFiveConfig};
use hsumma_matrix::{GemmKernel, GridShape};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{
    record, EventLoopSim, Hockney, Platform, RecordedProgram, SimBcast, SimNet, SimReport,
    SimRunOptions,
};
use hsumma_runtime::CommError;

pub use crate::lu::sim_block_lu as sim_lu;
pub use crate::lu::sim_block_lu_on as sim_lu_on;

/// Takes ownership of the caller's network for the duration of an SPMD
/// run (the `_on` entry points mutate a caller-provided [`SimNet`], e.g.
/// one with a tracer or torus topology attached).
fn run_on<F>(net: &mut SimNet, gamma: f64, step_sync: bool, f: F) -> SimReport
where
    F: Fn(&hsumma_netsim::spmd::SimComm) + Sync,
{
    let owned = std::mem::replace(net, SimNet::new(1, Hockney::new(0.0, 0.0)));
    let (done, _) = SimWorld::run(owned, gamma, step_sync, f);
    *net = done;
    net.report()
}

// ---------------------------------------------------------------------------
// Per-rank programs: the SPMD bodies, written once against `Communicator`
// so the thread-per-rank engine and the recording pass share them.
// ---------------------------------------------------------------------------

/// The SPMD body of a simulated SUMMA rank: phantom `n × n` operands on
/// `grid`, panel width `b`. Runs on any phantom-payload substrate —
/// [`hsumma_netsim::SimComm`] (threads) or [`hsumma_netsim::RecordComm`]
/// (schedule recording).
pub fn summa_program<C>(
    comm: &C,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let (th, tw) = crate::partition::tile_shape(grid, n);
    let cfg = SummaConfig {
        block: b,
        bcast,
        ..Default::default()
    };
    let tile = PhantomMat { rows: th, cols: tw };
    summa(comm, grid, n, &tile, &tile, &cfg)?;
    Ok(())
}

/// The SPMD body of a simulated HSUMMA rank (see [`sim_hsumma`]).
#[allow(clippy::too_many_arguments)]
pub fn hsumma_program<C>(
    comm: &C,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let (th, tw) = crate::partition::tile_shape(grid, n);
    let cfg = HsummaConfig {
        groups,
        outer_block: outer_b,
        inner_block: inner_b,
        outer_bcast,
        inner_bcast,
        kernel: GemmKernel::default(),
    };
    let tile = PhantomMat { rows: th, cols: tw };
    hsumma(comm, grid, n, &tile, &tile, &cfg)?;
    Ok(())
}

/// The SPMD body of a simulated Cannon rank (see [`sim_cannon`]).
pub fn cannon_program<C>(comm: &C, q: usize, n: usize) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let ts = n / q;
    let tile = PhantomMat { rows: ts, cols: ts };
    cannon(
        comm,
        GridShape::new(q, q),
        n,
        &tile,
        &tile,
        GemmKernel::default(),
    )?;
    Ok(())
}

/// The SPMD body of a simulated Fox rank (see [`sim_fox`]).
pub fn fox_program<C>(comm: &C, q: usize, n: usize, bcast: SimBcast) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let ts = n / q;
    let tile = PhantomMat { rows: ts, cols: ts };
    fox_with(
        comm,
        GridShape::new(q, q),
        n,
        &tile,
        &tile,
        GemmKernel::default(),
        bcast,
    )?;
    Ok(())
}

/// The SPMD body of a simulated overlapped-SUMMA rank (see
/// [`sim_overlap`]). Recordable: the two-slot pipeline starts and waits
/// broadcasts through the default (timing-independent) `ibcast` path.
pub fn overlap_program<C>(
    comm: &C,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let (th, tw) = crate::partition::tile_shape(grid, n);
    let cfg = SummaConfig {
        block: b,
        bcast,
        ..Default::default()
    };
    let tile = PhantomMat { rows: th, cols: tw };
    summa_overlap(comm, grid, n, &tile, &tile, &cfg)?;
    Ok(())
}

/// The SPMD body of a simulated 2.5D rank (see [`sim_twodotfive`]).
pub fn twodotfive_program<C>(comm: &C, n: usize, cfg: &TwoDotFiveConfig) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let ts = n / cfg.q;
    let tile = PhantomMat { rows: ts, cols: ts };
    twodotfive(comm, n, &tile, &tile, cfg)?;
    Ok(())
}

/// The SPMD body of a simulated COSMA rank (see [`sim_cosma`]): operands
/// in their native brick layouts, idle ranks (beyond the decomposition)
/// participating only in the split rendezvous.
pub fn cosma_program<C>(
    comm: &C,
    m: usize,
    n: usize,
    k: usize,
    cfg: &CosmaConfig,
) -> Result<(), CommError>
where
    C: Communicator<Mat = PhantomMat>,
{
    let d = cfg.decomp;
    let me = comm.rank();
    let (a, b) = if me < d.ranks() {
        let (i, j, l) = d.coords(me);
        let (m0, m1) = d.m_range(i, m);
        let (n0, n1) = d.n_range(j, n);
        let (k0, k1) = d.k_range(l, k);
        (
            if j == 0 {
                PhantomMat::zeros(m1 - m0, k1 - k0)
            } else {
                PhantomMat::zeros(0, 0)
            },
            if i == 0 {
                PhantomMat::zeros(k1 - k0, n1 - n0)
            } else {
                PhantomMat::zeros(0, 0)
            },
        )
    } else {
        (PhantomMat::zeros(0, 0), PhantomMat::zeros(0, 0))
    };
    cosma(comm, m, n, k, &a, &b, cfg)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Engine selection: thread-per-rank SPMD vs. record + event-loop replay.
// ---------------------------------------------------------------------------

/// Which execution engine prices a simulated schedule.
///
/// Both produce bit-identical [`SimReport`]s and per-rank trace multisets
/// for every dense schedule (pinned by `tests/replay_parity.rs`); they
/// differ only in scale. Threads cap out where the OS does (p ≈ 8192
/// under the default `vm.max_map_count` — each rank is a stack and two
/// mappings); replay holds O(p) cursors and reaches p = 2²⁰.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEngine {
    /// One OS thread per simulated rank, parking on virtual-clock
    /// mailboxes. Required for timing-adaptive schedules
    /// (`hsumma_overlap`'s `ibcast_test` polling).
    Threads,
    /// Record each rank's op program sequentially, then execute all
    /// programs on a single-threaded event loop ([`EventLoopSim`]).
    Replay,
}

/// Replays a recorded program on a caller-provided network (one with a
/// tracer, topology or noise model attached), asserting a clean run.
pub fn replay_on(net: &mut SimNet, gamma: f64, prog: &RecordedProgram) -> SimReport {
    let owned = std::mem::replace(net, SimNet::new(1, Hockney::new(0.0, 0.0)));
    let out = EventLoopSim::new(owned, gamma).run(prog, &SimRunOptions::unbounded());
    let (done, report) = out.expect_clean();
    *net = done;
    report
}

/// Records the SUMMA schedule of [`sim_summa`] as a replayable program.
pub fn record_summa(
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> RecordedProgram {
    let (th, tw) = crate::partition::tile_shape(grid, n);
    assert!(
        b > 0 && tw % b == 0 && th % b == 0,
        "block must divide tile extents"
    );
    record(grid.size(), step_sync, |comm| {
        summa_program(comm, grid, n, b, bcast)
    })
}

/// Records the HSUMMA schedule of [`sim_hsumma`] as a replayable program.
#[allow(clippy::too_many_arguments)]
pub fn record_hsumma(
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    step_sync: bool,
) -> RecordedProgram {
    record(grid.size(), step_sync, |comm| {
        hsumma_program(
            comm,
            grid,
            groups,
            n,
            outer_b,
            inner_b,
            outer_bcast,
            inner_bcast,
        )
    })
}

/// Records the Cannon schedule of [`sim_cannon`] as a replayable program.
pub fn record_cannon(q: usize, n: usize, step_sync: bool) -> RecordedProgram {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    record(q * q, step_sync, |comm| cannon_program(comm, q, n))
}

/// Records the Fox schedule of [`sim_fox`] as a replayable program.
pub fn record_fox(q: usize, n: usize, bcast: SimBcast, step_sync: bool) -> RecordedProgram {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    record(q * q, step_sync, |comm| fox_program(comm, q, n, bcast))
}

/// Records the overlapped-SUMMA schedule of [`sim_overlap`].
pub fn record_overlap(grid: GridShape, n: usize, b: usize, bcast: SimBcast) -> RecordedProgram {
    record(grid.size(), false, |comm| {
        overlap_program(comm, grid, n, b, bcast)
    })
}

/// Records the 2.5D schedule of [`sim_twodotfive`].
pub fn record_twodotfive(n: usize, cfg: &TwoDotFiveConfig) -> RecordedProgram {
    let (q, c) = (cfg.q, cfg.c);
    assert!(q > 0 && c > 0, "arrangement extents must be positive");
    assert_eq!(n % q, 0, "n must be divisible by the layer grid side");
    record(q * q * c, false, |comm| twodotfive_program(comm, n, cfg))
}

/// Records the COSMA schedule of [`sim_cosma`] over `p` ranks.
pub fn record_cosma(p: usize, m: usize, n: usize, k: usize, cfg: &CosmaConfig) -> RecordedProgram {
    record(p, false, |comm| cosma_program(comm, m, n, k, cfg))
}

/// [`sim_summa`] under the selected engine.
pub fn sim_summa_engine(
    engine: SimEngine,
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    match engine {
        SimEngine::Threads => sim_summa(platform, grid, n, b, bcast),
        SimEngine::Replay => {
            let mut net = SimNet::new(grid.size(), platform.net);
            replay_on(
                &mut net,
                platform.gamma,
                &record_summa(grid, n, b, bcast, false),
            )
        }
    }
}

/// [`sim_hsumma`] under the selected engine.
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma_engine(
    engine: SimEngine,
    platform: &Platform,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> SimReport {
    match engine {
        SimEngine::Threads => sim_hsumma(
            platform,
            grid,
            groups,
            n,
            outer_b,
            inner_b,
            outer_bcast,
            inner_bcast,
        ),
        SimEngine::Replay => {
            let mut net = SimNet::new(grid.size(), platform.net);
            let prog = record_hsumma(
                grid,
                groups,
                n,
                outer_b,
                inner_b,
                outer_bcast,
                inner_bcast,
                false,
            );
            replay_on(&mut net, platform.gamma, &prog)
        }
    }
}

/// [`sim_cosma`] under the selected engine. The replay path is what
/// reaches the paper-scale p = 2²⁰ validation points.
pub fn sim_cosma_engine(
    engine: SimEngine,
    platform: &Platform,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    cfg: &CosmaConfig,
) -> SimReport {
    match engine {
        SimEngine::Threads => sim_cosma(platform, p, m, n, k, cfg),
        SimEngine::Replay => {
            let mut net = SimNet::new(p, platform.net);
            replay_on(&mut net, platform.gamma, &record_cosma(p, m, n, k, cfg))
        }
    }
}

/// Simulated SUMMA: `n × n` operands on `grid`, panel width `b`,
/// broadcast algorithm `bcast`. Returns the aggregate timing report.
pub fn sim_summa(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_summa_on(&mut net, platform.gamma, grid, n, b, bcast, false)
}

/// Like [`sim_summa`], but with *blocking-collective* (per-step
/// synchronized) semantics: after every SUMMA step all clocks align, as
/// they effectively do when every rank sits inside a blocking
/// `MPI_Bcast` chain each step. Use this when comparing against measured
/// MPI timings; the unsynchronized variant models a perfectly pipelined
/// (non-blocking) schedule.
pub fn sim_summa_sync(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_summa_on(&mut net, platform.gamma, grid, n, b, bcast, true)
}

/// Simulated SUMMA on a caller-provided network (e.g. with a torus
/// topology). `gamma` is seconds per multiply-add pair.
pub fn sim_summa_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    let (th, tw) = crate::partition::tile_shape(grid, n);
    assert!(
        b > 0 && tw % b == 0 && th % b == 0,
        "block must divide tile extents"
    );
    run_on(net, gamma, step_sync, move |comm| {
        summa_program(comm, grid, n, b, bcast).unwrap();
    })
}

/// Simulated HSUMMA: `groups = I × J`, outer block `B`, inner block `b`.
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma(
    platform: &Platform,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_hsumma_on(
        &mut net,
        platform.gamma,
        grid,
        groups,
        n,
        outer_b,
        inner_b,
        outer_bcast,
        inner_bcast,
        false,
    )
}

/// Like [`sim_hsumma`], with per-step synchronized (blocking-collective)
/// semantics — see [`sim_summa_sync`].
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma_sync(
    platform: &Platform,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_hsumma_on(
        &mut net,
        platform.gamma,
        grid,
        groups,
        n,
        outer_b,
        inner_b,
        outer_bcast,
        inner_bcast,
        true,
    )
}

/// Simulated HSUMMA on a caller-provided network.
#[allow(clippy::too_many_arguments)]
pub fn sim_hsumma_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    groups: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    run_on(net, gamma, step_sync, move |comm| {
        hsumma_program(
            comm,
            grid,
            groups,
            n,
            outer_b,
            inner_b,
            outer_bcast,
            inner_bcast,
        )
        .unwrap();
    })
}

/// Simulated Cannon's algorithm on a square `q × q` grid: alignment
/// shifts, then `q` rounds of multiply + neighbour shifts. Used as a
/// baseline in the related-work comparison.
pub fn sim_cannon(platform: &Platform, q: usize, n: usize, step_sync: bool) -> SimReport {
    let mut net = SimNet::new(q * q, platform.net);
    sim_cannon_on(&mut net, platform.gamma, q, n, step_sync)
}

/// Simulated Cannon's algorithm on a caller-provided network (so a
/// tracer can be attached beforehand).
pub fn sim_cannon_on(
    net: &mut SimNet,
    gamma: f64,
    q: usize,
    n: usize,
    step_sync: bool,
) -> SimReport {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    assert_eq!(net.size(), q * q, "network must span the grid");
    run_on(net, gamma, step_sync, move |comm| {
        cannon_program(comm, q, n).unwrap();
    })
}

/// Simulated Fox's algorithm on a square `q × q` grid: per round, a
/// diagonal-offset broadcast of `A` along rows plus a `B` roll-up.
pub fn sim_fox(
    platform: &Platform,
    q: usize,
    n: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    let mut net = SimNet::new(q * q, platform.net);
    sim_fox_on(&mut net, platform.gamma, q, n, bcast, step_sync)
}

/// Simulated Fox's algorithm on a caller-provided network (so a tracer
/// can be attached beforehand).
pub fn sim_fox_on(
    net: &mut SimNet,
    gamma: f64,
    q: usize,
    n: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "n must be divisible by the grid side"
    );
    assert_eq!(net.size(), q * q, "network must span the grid");
    run_on(net, gamma, step_sync, move |comm| {
        fox_program(comm, q, n, bcast).unwrap();
    })
}

/// Simulated overlapped SUMMA ([`summa_overlap`]): the double-buffered
/// schedule where each step's panels are pushed during the previous
/// step's multiply. Inherently unsynchronized — a per-step barrier would
/// defeat the overlap being measured.
pub fn sim_overlap(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    let mut net = SimNet::new(grid.size(), platform.net);
    sim_overlap_on(&mut net, platform.gamma, grid, n, b, bcast)
}

/// Simulated overlapped SUMMA on a caller-provided network (so a tracer
/// can be attached beforehand).
pub fn sim_overlap_on(
    net: &mut SimNet,
    gamma: f64,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
) -> SimReport {
    assert_eq!(net.size(), grid.size(), "network must span the grid");
    run_on(net, gamma, false, move |comm| {
        overlap_program(comm, grid, n, b, bcast).unwrap();
    })
}

/// Simulated 2.5D multiplication ([`crate::twodotfive::twodotfive`]) over `q²·c` virtual
/// ranks: replicate down the depth communicators, per-layer partial
/// SUMMA, reduce back onto layer 0.
pub fn sim_twodotfive(platform: &Platform, n: usize, cfg: &TwoDotFiveConfig) -> SimReport {
    let mut net = SimNet::new(cfg.q * cfg.q * cfg.c, platform.net);
    sim_twodotfive_on(&mut net, platform.gamma, n, cfg)
}

/// Simulated 2.5D multiplication on a caller-provided network (so a
/// tracer can be attached beforehand).
pub fn sim_twodotfive_on(
    net: &mut SimNet,
    gamma: f64,
    n: usize,
    cfg: &TwoDotFiveConfig,
) -> SimReport {
    let (q, c) = (cfg.q, cfg.c);
    assert!(q > 0 && c > 0, "arrangement extents must be positive");
    assert_eq!(n % q, 0, "n must be divisible by the layer grid side");
    assert_eq!(net.size(), q * q * c, "network must span the arrangement");
    let cfg = *cfg;
    run_on(net, gamma, false, move |comm| {
        twodotfive_program(comm, n, &cfg).unwrap();
    })
}

/// Simulated COSMA: `C(m×n) = A(m×k) · B(k×n)` over `p` virtual ranks
/// with the configured brick decomposition ([`crate::cosma::cosma`]).
/// Bricks live in their native [`crate::distribution::BrickDecomp`]
/// layouts — no redistribution, matching how the serving layer would
/// stage operands for a pure cosma job.
pub fn sim_cosma(
    platform: &Platform,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    cfg: &CosmaConfig,
) -> SimReport {
    let mut net = SimNet::new(p, platform.net);
    sim_cosma_on(&mut net, platform.gamma, m, n, k, cfg)
}

/// Simulated COSMA on a caller-provided network (e.g. with a tracer
/// attached). The rank count is the network's.
pub fn sim_cosma_on(
    net: &mut SimNet,
    gamma: f64,
    m: usize,
    n: usize,
    k: usize,
    cfg: &CosmaConfig,
) -> SimReport {
    let cfg = *cfg;
    run_on(net, gamma, false, move |comm| {
        cosma_program(comm, m, n, k, &cfg).unwrap();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::HierGrid;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn hsumma_with_one_group_equals_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::Binomial);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(1, 1),
            256,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(close(s.total_time, h.total_time), "{s:?} vs {h:?}");
        assert!(close(s.comm_time, h.comm_time));
        assert_eq!(s.msgs, h.msgs);
        assert_eq!(s.bytes, h.bytes);
    }

    #[test]
    fn hsumma_with_p_groups_equals_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::Binomial);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(8, 8),
            256,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(close(s.total_time, h.total_time), "{s:?} vs {h:?}");
        assert!(close(s.comm_time, h.comm_time));
        assert_eq!(s.msgs, h.msgs);
        assert_eq!(s.bytes, h.bytes);
    }

    #[test]
    fn hsumma_moves_same_volume_as_summa_for_any_group_count() {
        // §III: "The amount of data sent is the same as in SUMMA."
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let s = sim_summa(&plat, grid, 128, 16, SimBcast::Binomial);
        for (_, groups) in HierGrid::valid_group_counts(grid) {
            let h = sim_hsumma(
                &plat,
                grid,
                groups,
                128,
                16,
                16,
                SimBcast::Binomial,
                SimBcast::Binomial,
            );
            // Every rank receives each panel exactly once under a tree
            // broadcast, so total bytes moved must match SUMMA's.
            assert_eq!(h.bytes, s.bytes, "groups {groups:?}");
        }
    }

    #[test]
    fn interior_grouping_beats_summa_in_latency_dominated_regime() {
        // α/β >> message sizes: grouping must strictly help (paper Eq. 10).
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(1.0, 1e-12),
            gamma: 0.0,
        };
        let grid = GridShape::new(16, 16);
        let s = sim_summa(&plat, grid, 256, 16, SimBcast::ScatterAllgather);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(4, 4),
            256,
            16,
            16,
            SimBcast::ScatterAllgather,
            SimBcast::ScatterAllgather,
        );
        assert!(
            h.comm_time < s.comm_time,
            "HSUMMA {h:?} should beat SUMMA {s:?} when latency dominates"
        );
    }

    #[test]
    fn compute_time_is_group_invariant() {
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(4, 4);
        let mut comps = Vec::new();
        for (_, groups) in HierGrid::valid_group_counts(grid) {
            let h = sim_hsumma(
                &plat,
                grid,
                groups,
                64,
                8,
                8,
                SimBcast::Binomial,
                SimBcast::Binomial,
            );
            comps.push(h.comp_time);
        }
        for w in comps.windows(2) {
            assert!(close(w[0], w[1]), "compute time changed with G: {comps:?}");
        }
        // And it matches 2n³/p flops = n³/p multiply-add pairs per rank.
        let n: u64 = 64;
        let p: u64 = 16;
        let want = plat.gamma * (n * n * n / p) as f64;
        assert!(close(comps[0], want));
    }

    #[test]
    fn summa_comm_time_matches_binomial_closed_form() {
        // Fresh net, square grid: per step the critical path is one row
        // bcast + one col bcast, log2(√p)(α+mβ) each; steps chain.
        let plat = Platform {
            name: "unit",
            net: hsumma_netsim::Hockney::new(1e-3, 1e-9),
            gamma: 0.0,
        };
        let grid = GridShape::new(4, 4);
        let (n, b) = (64usize, 16usize);
        let r = sim_summa(&plat, grid, n, b, SimBcast::Binomial);
        let m = (n / 4 * b) as f64 * 8.0;
        let steps = (n / b) as f64;
        let per_bcast = 2.0 * (1e-3 + m * 1e-9); // log2(4) = 2 rounds
        let want = steps * 2.0 * per_bcast; // A bcast + B bcast per step
        assert!(
            close(r.total_time, want),
            "got {}, want {want}",
            r.total_time
        );
    }

    #[test]
    fn cannon_sim_message_count_matches_schedule() {
        // Alignment: rows 1..q shift A (q ranks each), cols 1..q shift B;
        // then q rounds of 2 shifts per rank.
        let plat = Platform::grid5000();
        let q = 4;
        let r = sim_cannon(&plat, q, 64, false);
        let align = 2 * (q * (q - 1)) as u64;
        let rounds = (q * q * q * 2) as u64;
        assert_eq!(r.msgs, align + rounds);
    }

    #[test]
    fn cannon_sim_single_rank_is_compute_only() {
        let plat = Platform::bluegene_p();
        let r = sim_cannon(&plat, 1, 32, false);
        assert_eq!(r.msgs, 0);
        let want = plat.gamma * (32u64 * 32 * 32) as f64;
        assert!(close(r.comp_time, want));
    }

    #[test]
    fn fox_sim_counts_broadcast_and_roll_messages() {
        let plat = Platform::grid5000();
        let q = 4;
        let r = sim_fox(&plat, q, 64, SimBcast::Binomial, false);
        // Per round: q row-bcasts of (q-1) messages each + q*q roll sends.
        let per_round = (q * (q - 1) + q * q) as u64;
        assert_eq!(r.msgs, q as u64 * per_round);
    }

    #[test]
    fn cannon_sends_fewer_messages_than_fine_grained_summa() {
        // Per-rank volume is 2n²/√p for both algorithms, but Cannon needs
        // only one exchange per operand per round while SUMMA at small
        // block sizes pays a broadcast per panel — message count is where
        // Cannon's (restricted) schedule wins.
        let plat = Platform::bluegene_p();
        let q = 4;
        let n = 64;
        let cannon = sim_cannon(&plat, q, n, false);
        let summa = sim_summa(&plat, GridShape::new(q, q), n, 8, SimBcast::Binomial);
        assert!(
            cannon.msgs < summa.msgs,
            "{} vs {}",
            cannon.msgs,
            summa.msgs
        );
        // ...and total volume is the same order: every rank receives
        // 2n²/√p either way (Cannon's roots also receive, and it pays
        // one-time alignment shifts, so it sits slightly above).
        let per_rank = 2 * (n * n / q) as u64 * 8;
        assert!(cannon.bytes <= (q * q) as u64 * per_rank * 2);
        assert!(summa.bytes <= (q * q) as u64 * per_rank);
    }

    #[test]
    fn summa_message_count_matches_closed_form() {
        // Binomial bcast delivers to q−1 of q ranks: per step the row
        // direction sends s·(t−1) messages and the column direction
        // t·(s−1); times n/b steps.
        let plat = Platform::grid5000();
        for (s, t, n, b) in [(4usize, 4usize, 64usize, 8usize), (2, 8, 64, 4)] {
            let grid = GridShape::new(s, t);
            let r = sim_summa(&plat, grid, n, b, SimBcast::Binomial);
            let want = (n / b) * (s * (t - 1) + t * (s - 1));
            assert_eq!(r.msgs, want as u64, "{s}x{t}");
        }
    }

    #[test]
    fn hsumma_message_count_matches_closed_form() {
        // Per outer step: inter-group A: s·(J−1), inter-group B: t·(I−1);
        // per inner step: intra A: s·J·(t/J−1), intra B: t·I·(s/I−1).
        let plat = Platform::grid5000();
        let (s, t, i, j, n, b) = (4usize, 8usize, 2usize, 4usize, 64usize, 8usize);
        let grid = GridShape::new(s, t);
        let groups = GridShape::new(i, j);
        let r = sim_hsumma(
            &plat,
            grid,
            groups,
            n,
            b,
            b,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        let per_outer = s * (j - 1) + t * (i - 1);
        let per_inner = s * j * (t / j - 1) + t * i * (s / i - 1);
        let want = (n / b) * (per_outer + per_inner);
        assert_eq!(r.msgs, want as u64);
    }

    #[test]
    fn rectangular_grids_simulate() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 8);
        let s = sim_summa(&plat, grid, 64, 8, SimBcast::Binomial);
        assert!(s.total_time > 0.0);
        let h = sim_hsumma(
            &plat,
            grid,
            GridShape::new(2, 4),
            64,
            8,
            8,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(h.total_time > 0.0);
        assert_eq!(h.bytes, s.bytes);
    }

    #[test]
    fn overlap_sim_beats_synchronized_summa() {
        // The double-buffered schedule must not be slower than the
        // blocking one on the same platform and configuration.
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 4);
        let over = sim_overlap(&plat, grid, 64, 8, SimBcast::Flat);
        let sync = sim_summa_sync(&plat, grid, 64, 8, SimBcast::Flat);
        assert!(
            over.total_time <= sync.total_time,
            "overlap {} vs sync {}",
            over.total_time,
            sync.total_time
        );
        // Same panels travel either way.
        let plain = sim_summa(&plat, grid, 64, 8, SimBcast::Flat);
        assert_eq!(over.bytes, plain.bytes);
    }

    #[test]
    fn twodotfive_c1_costs_like_summa_plus_depth_collectives() {
        // With c = 1 the depth communicators are singletons: no replicate
        // or reduce messages, so the cost is exactly SUMMA's.
        let plat = Platform::grid5000();
        let cfg = TwoDotFiveConfig {
            q: 4,
            c: 1,
            summa: SummaConfig {
                block: 8,
                ..Default::default()
            },
        };
        let td = sim_twodotfive(&plat, 64, &cfg);
        let s = sim_summa(&plat, GridShape::new(4, 4), 64, 8, SimBcast::Binomial);
        assert_eq!(td.msgs, s.msgs);
        assert_eq!(td.bytes, s.bytes);
    }

    #[test]
    fn twodotfive_replication_cuts_communication_time() {
        // The 2.5D promise: c layers cut each layer's SUMMA steps by c,
        // at the price of replicate/reduce — a win once broadcasts are
        // the bottleneck.
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(1e-3, 1e-12),
            gamma: 0.0,
        };
        let mk = |c: usize| TwoDotFiveConfig {
            q: 4,
            c,
            summa: SummaConfig {
                block: 8,
                ..Default::default()
            },
        };
        let flat = sim_twodotfive(&plat, 64, &mk(1));
        let deep = sim_twodotfive(&plat, 64, &mk(4));
        assert!(
            deep.total_time < flat.total_time,
            "c=4 {} should beat c=1 {} when latency dominates",
            deep.total_time,
            flat.total_time
        );
    }
}
