//! Rectangular operands: `C = A·B` with `A: M×L`, `B: L×N`.
//!
//! Algorithm 1 of the paper is stated for general `(M, L, N)` dimensions
//! ("Data: (M,L,N): Matrix dimensions; A,B: two input sub-matrices of
//! size (M/s × L/t, L/s × N/t)"); the square `n × n` entry points in
//! [`crate::summa()`]/[`crate::hsumma()`] are the common case. This module
//! provides the general forms — the pivot traversal runs along the
//! shared `L` dimension, everything else is unchanged.

use crate::comm::{Communicator, MatLike};
use crate::grid::HierGrid;
use crate::hsumma::HsummaConfig;
use crate::partition::{pivot_offset, pivot_owner};
use crate::summa::{bcast_matrix, SummaConfig};
use hsumma_matrix::GridShape;
use hsumma_runtime::CommError;

/// Global operand dimensions of `C(M×N) = A(M×L) · B(L×N)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatMulDims {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// The shared (contraction) dimension: columns of `A`, rows of `B`.
    pub l: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
}

impl MatMulDims {
    /// Square `n × n × n` dimensions.
    pub fn square(n: usize) -> Self {
        MatMulDims { m: n, l: n, n }
    }
}

/// Validates the rectangular distribution and returns the tile shapes
/// `((m/s, l/t), (l/s, n/t))`.
fn check_rect<M: MatLike>(
    grid: GridShape,
    dims: MatMulDims,
    a: &M,
    b: &M,
    comm_size: usize,
) -> ((usize, usize), (usize, usize)) {
    assert_eq!(
        comm_size,
        grid.size(),
        "communicator must span the whole grid"
    );
    let MatMulDims { m, l, n } = dims;
    assert_eq!(m % grid.rows, 0, "M must be divisible by grid rows");
    assert_eq!(l % grid.cols, 0, "L must be divisible by grid cols");
    assert_eq!(l % grid.rows, 0, "L must be divisible by grid rows");
    assert_eq!(n % grid.cols, 0, "N must be divisible by grid cols");
    let a_tile = (m / grid.rows, l / grid.cols);
    let b_tile = (l / grid.rows, n / grid.cols);
    assert_eq!((a.rows(), a.cols()), a_tile, "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), b_tile, "B tile has wrong shape");
    (a_tile, b_tile)
}

/// Rectangular SUMMA. SPMD over `comm`; `A` and `B` block-checkerboard
/// distributed over `grid`. Returns the local `(m/s × n/t)` tile of `C`.
///
/// # Panics
/// Panics on inconsistent dimensions/tiles, or a block size that does
/// not divide the local extents of the shared dimension.
pub fn summa_rect<C: Communicator>(
    comm: &C,
    grid: GridShape,
    dims: MatMulDims,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let ((ah, aw), (bh, bw)) = check_rect(grid, dims, a, b, comm.size());
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    assert_eq!(aw % bs, 0, "block must divide A's tile width (L/t)");
    assert_eq!(bh % bs, 0, "block must divide B's tile height (L/s)");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let mut c = C::Mat::zeros(ah, bw);
    let step_pairs = ah * bw * bs;
    for k in 0..dims.l / bs {
        let owner_col = pivot_owner(k, bs, aw);
        let mut a_panel = if gj == owner_col {
            a.block(0, pivot_offset(k, bs, aw), ah, bs)
        } else {
            C::Mat::zeros(ah, bs)
        };
        bcast_matrix(&row_comm, cfg.bcast, owner_col, &mut a_panel)?;

        let owner_row = pivot_owner(k, bs, bh);
        let mut b_panel = if gi == owner_row {
            b.block(pivot_offset(k, bs, bh), 0, bs, bw)
        } else {
            C::Mat::zeros(bs, bw)
        };
        bcast_matrix(&col_comm, cfg.bcast, owner_row, &mut b_panel)?;

        comm.compute(step_pairs as f64, 0, || {
            C::Mat::gemm(cfg.kernel, &a_panel, &b_panel, &mut c)
        });
    }
    Ok(c)
}

/// Rectangular HSUMMA per Algorithm 1's general form.
///
/// # Panics
/// As [`crate::hsumma::hsumma`], with the block constraints applying to
/// the shared-dimension tile extents.
pub fn hsumma_rect<C: Communicator>(
    comm: &C,
    grid: GridShape,
    dims: MatMulDims,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &HsummaConfig,
) -> Result<C::Mat, CommError> {
    let ((ah, aw), (bh, bw)) = check_rect(grid, dims, a, b, comm.size());
    let hg = HierGrid::new(grid, cfg.groups);
    let inner = hg.inner();
    let (bb, bs) = (cfg.outer_block, cfg.inner_block);
    assert!(bs > 0 && bb > 0, "block sizes must be positive");
    assert_eq!(bb % bs, 0, "inner block must divide outer block");
    assert_eq!(aw % bb, 0, "outer block must divide A's tile width (L/t)");
    assert_eq!(bh % bb, 0, "outer block must divide B's tile height (L/s)");

    let (gi, gj) = grid.coords(comm.rank());
    let (x, y) = hg.group_of(gi, gj);
    let (i, j) = hg.inner_of(gi, gj);
    let c3 = crate::grid::color3;
    let group_row = comm.split(c3(x, i, j), y as i64)?;
    let group_col = comm.split(c3(y, i, j), x as i64)?;
    let row = comm.split(c3(x, y, i), j as i64)?;
    let col = comm.split(c3(x, y, j), i as i64)?;

    let mut c = C::Mat::zeros(ah, bw);
    let inner_pairs = ah * bw * bs;
    for kg in 0..dims.l / bb {
        let gcol = pivot_owner(kg, bb, aw);
        let (yk, jk) = (gcol / inner.cols, gcol % inner.cols);
        let outer_a = if j == jk {
            let mut panel = if gj == gcol {
                a.block(0, pivot_offset(kg, bb, aw), ah, bb)
            } else {
                C::Mat::zeros(ah, bb)
            };
            bcast_matrix(&group_row, cfg.outer_bcast, yk, &mut panel)?;
            Some(panel)
        } else {
            None
        };

        let grow = pivot_owner(kg, bb, bh);
        let (xk, ik) = (grow / inner.rows, grow % inner.rows);
        let outer_b = if i == ik {
            let mut panel = if gi == grow {
                b.block(pivot_offset(kg, bb, bh), 0, bb, bw)
            } else {
                C::Mat::zeros(bb, bw)
            };
            bcast_matrix(&group_col, cfg.outer_bcast, xk, &mut panel)?;
            Some(panel)
        } else {
            None
        };

        for ki in 0..bb / bs {
            let mut a_in = match &outer_a {
                Some(panel) => panel.block(0, ki * bs, ah, bs),
                None => C::Mat::zeros(ah, bs),
            };
            bcast_matrix(&row, cfg.inner_bcast, jk, &mut a_in)?;
            let mut b_in = match &outer_b {
                Some(panel) => panel.block(ki * bs, 0, bs, bw),
                None => C::Mat::zeros(bs, bw),
            };
            bcast_matrix(&col, cfg.inner_bcast, ik, &mut b_in)?;
            comm.compute(inner_pairs as f64, 0, || {
                C::Mat::gemm(cfg.kernel, &a_in, &b_in, &mut c)
            });
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::reference_product;
    use hsumma_matrix::{seeded_uniform, BlockDist, GemmKernel, Matrix};
    use hsumma_runtime::{Comm, Runtime};
    use proptest::prelude::*;

    /// Scatter rectangular operands, run `algo`, gather C, compare.
    fn run_rect(
        grid: GridShape,
        dims: MatMulDims,
        algo: impl Fn(&Comm, Matrix, Matrix) -> Matrix + Send + Sync,
    ) {
        let a = seeded_uniform(dims.m, dims.l, 70);
        let b = seeded_uniform(dims.l, dims.n, 71);
        let want = reference_product(&a, &b);
        let a_dist = BlockDist::new(grid, dims.m, dims.l);
        let b_dist = BlockDist::new(grid, dims.l, dims.n);
        let c_dist = BlockDist::new(grid, dims.m, dims.n);
        let at = a_dist.scatter(&a);
        let bt = b_dist.scatter(&b);
        let ct = Runtime::run(grid.size(), |comm| {
            algo(comm, at[comm.rank()].clone(), bt[comm.rank()].clone())
        });
        let got = c_dist.gather(&ct);
        assert!(
            got.approx_eq(&want, 1e-9),
            "grid {grid:?} dims {dims:?}: err {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn rect_summa_tall_times_wide() {
        let grid = GridShape::new(2, 2);
        let dims = MatMulDims { m: 12, l: 8, n: 16 };
        let cfg = SummaConfig {
            block: 2,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        };
        run_rect(grid, dims, move |comm, a, b| {
            summa_rect(comm, grid, dims, &a, &b, &cfg).unwrap()
        });
    }

    #[test]
    fn rect_summa_wide_times_tall() {
        let grid = GridShape::new(2, 4);
        let dims = MatMulDims { m: 4, l: 16, n: 8 };
        let cfg = SummaConfig {
            block: 2,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        };
        run_rect(grid, dims, move |comm, a, b| {
            summa_rect(comm, grid, dims, &a, &b, &cfg).unwrap()
        });
    }

    #[test]
    fn rect_summa_square_case_matches_square_entry_point() {
        use crate::summa::summa;
        let grid = GridShape::new(2, 2);
        let n = 16;
        let dims = MatMulDims::square(n);
        let a = seeded_uniform(n, n, 5);
        let b = seeded_uniform(n, n, 6);
        let dist = BlockDist::new(grid, n, n);
        let at = dist.scatter(&a);
        let bt = dist.scatter(&b);
        let cfg = SummaConfig {
            block: 4,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        };
        let by_rect = Runtime::run(grid.size(), |comm| {
            summa_rect(
                comm,
                grid,
                dims,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            )
            .unwrap()
        });
        let by_square = Runtime::run(grid.size(), |comm| {
            summa(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            )
            .unwrap()
        });
        assert_eq!(by_rect, by_square, "square case must be identical");
    }

    #[test]
    fn rect_hsumma_matches_serial() {
        let grid = GridShape::new(4, 4);
        let dims = MatMulDims { m: 8, l: 16, n: 24 };
        let cfg = HsummaConfig {
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 2)
        };
        run_rect(grid, dims, move |comm, a, b| {
            hsumma_rect(comm, grid, dims, &a, &b, &cfg).unwrap()
        });
    }

    #[test]
    fn rect_hsumma_distinct_blocks_and_groups() {
        let grid = GridShape::new(2, 4);
        let dims = MatMulDims { m: 8, l: 32, n: 16 };
        let cfg = HsummaConfig {
            outer_block: 4,
            inner_block: 2,
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 4)
        };
        run_rect(grid, dims, move |comm, a, b| {
            hsumma_rect(comm, grid, dims, &a, &b, &cfg).unwrap()
        });
    }

    #[test]
    #[should_panic(expected = "L must be divisible by grid rows")]
    fn rect_rejects_inconsistent_shared_dimension() {
        // Call the algorithm directly (the scatter helper would reject the
        // distribution first); tile shapes are plausible but L % s != 0.
        let grid = GridShape::new(4, 2);
        let dims = MatMulDims { m: 8, l: 6, n: 8 };
        let cfg = SummaConfig {
            block: 1,
            ..Default::default()
        };
        let _ = Runtime::run(grid.size(), |comm| {
            let a = Matrix::zeros(2, 3);
            let b = Matrix::zeros(1, 4);
            summa_rect(comm, grid, dims, &a, &b, &cfg).unwrap()
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn rect_summa_random_dims(
            s in 1usize..3, t in 1usize..4,
            mf in 1usize..3, lf in 1usize..3, nf in 1usize..3,
            seed in 0u64..200,
        ) {
            let grid = GridShape::new(s, t);
            let lcm = s * t; // l must divide by both s and t
            let dims = MatMulDims { m: s * mf * 2, l: lcm * lf * 2, n: t * nf * 2 };
            let a = seeded_uniform(dims.m, dims.l, seed);
            let b = seeded_uniform(dims.l, dims.n, seed.wrapping_add(1));
            let want = reference_product(&a, &b);
            let a_dist = BlockDist::new(grid, dims.m, dims.l);
            let b_dist = BlockDist::new(grid, dims.l, dims.n);
            let c_dist = BlockDist::new(grid, dims.m, dims.n);
            let at = a_dist.scatter(&a);
            let bt = b_dist.scatter(&b);
            let cfg = SummaConfig { block: 1, kernel: GemmKernel::Blocked, ..Default::default() };
            let ct = Runtime::run(grid.size(), |comm| {
                summa_rect(comm, grid, dims, &at[comm.rank()].clone(), &bt[comm.rank()].clone(), &cfg).unwrap()
            });
            prop_assert!(c_dist.gather(&ct).approx_eq(&want, 1e-9));
        }
    }
}
