//! The substrate-agnostic communicator: one schedule, two substrates.
//!
//! Every distributed algorithm in this crate (SUMMA, HSUMMA, Cannon, Fox,
//! block LU, TSQR, 2.5D, …) is written once, generically, against the
//! [`Communicator`] trait. Two implementations exist:
//!
//! * the threaded runtime's [`Comm`] — moves real [`Matrix`] payloads
//!   between rank threads and measures wall-clock time;
//! * the simulator's [`SimComm`] — moves [`PhantomMat`] payloads (shapes
//!   only), advances [`hsumma_netsim::SimNet`] virtual clocks per the
//!   Hockney model `α + m·β`, and charges local compute analytically at
//!   `γ` seconds per multiply-add pair.
//!
//! Because the *same* per-rank program runs on both substrates, the
//! simulator cannot drift from the executable code: the message schedule
//! is defined exactly once. The simulator-side collective schedules below
//! are rank-for-rank transliterations of
//! `hsumma_runtime::collectives` (same trees, same segment dealing), which
//! is what `tests/sim_golden_parity.rs` and
//! `tests/sim_model_consistency.rs` pin down.
//!
//! Payload shapes are globally known in all these algorithms (each panel's
//! dimensions follow from the step index), which is why `recv_mat` takes
//! the expected shape instead of reading it off the wire — exactly MPI's
//! contract, and what lets the phantom substrate work at all.

use hsumma_matrix::factor::{lu_nopiv_inplace, qr_thin, trsm_left_lower_unit, trsm_right_upper};
use hsumma_matrix::{gemm, gemm_scaled, GemmKernel, Matrix};
use hsumma_netsim::{RecordComm, SimComm};
use hsumma_runtime::collectives::{self, chunk_range};
use hsumma_runtime::{BcastAlgorithm, Comm, CommError, WirePayload};
use std::sync::Arc;

/// Matrix operations the generic algorithms need. Implemented by the real
/// [`Matrix`] (actual arithmetic) and by [`PhantomMat`] (shape bookkeeping
/// only — every operation checks conformability and computes nothing).
pub trait MatLike: Clone + Send + 'static {
    /// An all-zero `rows × cols` matrix.
    fn zeros(rows: usize, cols: usize) -> Self;
    /// The `n × n` identity.
    fn identity(n: usize) -> Self;
    /// Row count.
    fn rows(&self) -> usize;
    /// Column count.
    fn cols(&self) -> usize;
    /// Element count (`rows · cols`).
    fn elems(&self) -> usize {
        self.rows() * self.cols()
    }
    /// A freshly allocated copy of the `h × w` block at `(r0, c0)`.
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self;
    /// Copies the block at `(r0, c0)` with `dst`'s shape into `dst`.
    fn block_into(&self, r0: usize, c0: usize, dst: &mut Self);
    /// Overwrites the block at `(r0, c0)` with `src`.
    fn set_block(&mut self, r0: usize, c0: usize, src: &Self);
    /// Element-wise `self += other`; shapes must agree.
    fn add_assign(&mut self, other: &Self);
    /// `C += A·B`.
    fn gemm(kernel: GemmKernel, a: &Self, b: &Self, c: &mut Self);
    /// `C += α·A·B`.
    fn gemm_scaled(kernel: GemmKernel, alpha: f64, a: &Self, b: &Self, c: &mut Self);
    /// In-place unpivoted LU of a square matrix.
    fn lu_nopiv_inplace(&mut self);
    /// `B ← B·U⁻¹` for upper-triangular `U`.
    fn trsm_right_upper(u: &Self, b: &mut Self);
    /// `B ← L⁻¹·B` for unit-lower-triangular `L`.
    fn trsm_left_lower_unit(l: &Self, b: &mut Self);
    /// Thin QR of a tall matrix: `(Q, R)` with `Q` the caller's shape's
    /// `m × n` orthonormal factor and `R` upper-triangular `n × n`.
    fn qr_thin(&self) -> (Self, Self);
}

impl MatLike for Matrix {
    fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::zeros(rows, cols)
    }
    fn identity(n: usize) -> Self {
        Matrix::identity(n)
    }
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }
    fn cols(&self) -> usize {
        Matrix::cols(self)
    }
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        Matrix::block(self, r0, c0, h, w)
    }
    fn block_into(&self, r0: usize, c0: usize, dst: &mut Self) {
        Matrix::block_into(self, r0, c0, dst)
    }
    fn set_block(&mut self, r0: usize, c0: usize, src: &Self) {
        Matrix::set_block(self, r0, c0, src)
    }
    fn add_assign(&mut self, other: &Self) {
        Matrix::add_assign(self, other)
    }
    fn gemm(kernel: GemmKernel, a: &Self, b: &Self, c: &mut Self) {
        gemm(kernel, a, b, c)
    }
    fn gemm_scaled(kernel: GemmKernel, alpha: f64, a: &Self, b: &Self, c: &mut Self) {
        gemm_scaled(kernel, alpha, a, b, c)
    }
    fn lu_nopiv_inplace(&mut self) {
        lu_nopiv_inplace(self)
    }
    fn trsm_right_upper(u: &Self, b: &mut Self) {
        trsm_right_upper(u, b)
    }
    fn trsm_left_lower_unit(l: &Self, b: &mut Self) {
        trsm_left_lower_unit(l, b)
    }
    fn qr_thin(&self) -> (Self, Self) {
        qr_thin(self)
    }
}

/// A matrix that exists only as a shape: the payload the simulated
/// substrate moves. All [`MatLike`] operations validate dimensions with
/// the same panics the dense implementations raise, so a generic
/// algorithm that misindexes fails identically on either substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhantomMat {
    /// Row count of the matrix this stands in for.
    pub rows: usize,
    /// Column count of the matrix this stands in for.
    pub cols: usize,
}

/// A phantom stand-in ships exactly the bytes the dense matrix it
/// models would — the sim substrate's half of the shared accounting.
impl WirePayload for PhantomMat {
    fn payload_bytes(&self) -> u64 {
        (self.rows * self.cols * 8) as u64
    }
}

impl MatLike for PhantomMat {
    fn zeros(rows: usize, cols: usize) -> Self {
        PhantomMat { rows, cols }
    }
    fn identity(n: usize) -> Self {
        PhantomMat { rows: n, cols: n }
    }
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        PhantomMat { rows: h, cols: w }
    }
    fn block_into(&self, r0: usize, c0: usize, dst: &mut Self) {
        assert!(
            r0 + dst.rows <= self.rows && c0 + dst.cols <= self.cols,
            "block out of bounds"
        );
    }
    fn set_block(&mut self, r0: usize, c0: usize, src: &Self) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of bounds"
        );
    }
    fn add_assign(&mut self, other: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in add_assign"
        );
    }
    fn gemm(_kernel: GemmKernel, a: &Self, b: &Self, c: &mut Self) {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        assert_eq!((c.rows, c.cols), (a.rows, b.cols), "output shape mismatch");
    }
    fn gemm_scaled(kernel: GemmKernel, _alpha: f64, a: &Self, b: &Self, c: &mut Self) {
        Self::gemm(kernel, a, b, c);
    }
    fn lu_nopiv_inplace(&mut self) {
        assert_eq!(self.rows, self.cols, "LU needs a square matrix");
    }
    fn trsm_right_upper(u: &Self, b: &mut Self) {
        assert_eq!(u.rows, u.cols, "triangular factor must be square");
        assert_eq!(b.cols, u.rows, "dimension mismatch");
    }
    fn trsm_left_lower_unit(l: &Self, b: &mut Self) {
        assert_eq!(l.rows, l.cols, "triangular factor must be square");
        assert_eq!(b.rows, l.cols, "dimension mismatch");
    }
    fn qr_thin(&self) -> (Self, Self) {
        assert!(self.rows >= self.cols, "QR needs a tall matrix");
        (
            PhantomMat {
                rows: self.rows,
                cols: self.cols,
            },
            PhantomMat {
                rows: self.cols,
                cols: self.cols,
            },
        )
    }
}

/// A pending nonblocking collective: the in-flight half of an
/// `ibcast`-style `start`/`test`/`wait` protocol.
///
/// Handles are started by [`Communicator::ibcast_shared`], polled with
/// [`Communicator::ibcast_test`] and completed with
/// [`Communicator::ibcast_wait`]. They compose with the fallible
/// communication machinery: a start sends through the normal (deadline-,
/// cancellation- and fault-checked) send path, and a wait receives
/// through the normal receive path, so a dropped or delayed in-flight
/// broadcast surfaces as a [`CommError`] naming the stalled edge rather
/// than a hang or a torn buffer.
/// Wire-tag band for in-flight panel broadcasts: a caller's ibcast tag
/// is offset into the collective region (`≥ COLLECTIVE_TAG_FLOOR`,
/// `1 << 62`) so fault rules written against `TagClass::Collective`
/// match ibcast traffic exactly like blocking-collective traffic, on
/// both substrates. The `1 << 48` offset keeps the band disjoint from
/// the simulator's fixed collective tags (`SIM_TAG_*`, small offsets
/// above `1 << 62`) and below the runtime's internal protocol tags
/// (`1 << 63`).
pub const IBCAST_TAG_BASE: u64 = (1 << 62) + (1 << 48);

/// Width of the ibcast tag band; caller-supplied ibcast tags must be
/// smaller than this.
pub const IBCAST_TAG_SPAN: u64 = 1 << 48;

pub trait CollectiveHandle {
    /// Root rank (communicator-local) the payload originates from.
    fn root(&self) -> usize;
    /// Wire tag the collective's messages travel under.
    fn tag(&self) -> u64;
    /// Whether the payload is already locally available, i.e. `wait`
    /// will return without blocking. Always true at the root.
    fn is_complete(&self) -> bool;
}

/// Handle to one in-flight nonblocking panel broadcast
/// ([`Communicator::ibcast_shared`]). Generic over the substrate's
/// [`Communicator::Shared`] payload, so the same handle type serves both
/// the threaded runtime (`Arc<Matrix>`) and the simulator
/// ([`PhantomMat`]).
#[derive(Debug)]
pub struct PanelBcast<S> {
    root: usize,
    tag: u64,
    rows: usize,
    cols: usize,
    /// The panel, once locally available: immediately at the root, after
    /// a successful `test`/`wait` everywhere else.
    got: Option<S>,
}

impl<S> PanelBcast<S> {
    fn started(root: usize, tag: u64, rows: usize, cols: usize, got: Option<S>) -> Self {
        PanelBcast {
            root,
            tag,
            rows,
            cols,
            got,
        }
    }

    /// Row count of the broadcast panel.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the broadcast panel.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Records the received panel (used by the substrates' `test`/`wait`).
    fn fulfill(&mut self, panel: S) {
        debug_assert!(self.got.is_none(), "broadcast fulfilled twice");
        self.got = Some(panel);
    }

    fn take(self) -> (usize, u64, usize, usize, Option<S>) {
        (self.root, self.tag, self.rows, self.cols, self.got)
    }
}

impl<S> CollectiveHandle for PanelBcast<S> {
    fn root(&self) -> usize {
        self.root
    }
    fn tag(&self) -> u64 {
        self.tag
    }
    fn is_complete(&self) -> bool {
        self.got.is_some()
    }
}

/// The communicator the algorithms are generic over: MPI-style rank
/// algebra, matrix-payload point-to-point, rooted collectives with a
/// selectable broadcast algorithm, and the local-compute hook through
/// which the substrate charges (real) or models (simulated) flops.
///
/// Ranks and roots are always communicator-local. Payload shapes must be
/// supplied on the receive side (they are globally known in every
/// algorithm here).
///
/// Every communication operation is fallible: it returns
/// `Result<_, CommError>` so deadlines, cancellation and injected faults
/// propagate out of the schedules (the algorithms use `?` throughout)
/// instead of hanging a rank. Both substrates produce the same error
/// vocabulary — [`CommError`] names the stalled edge either way.
pub trait Communicator: Sized {
    /// The matrix payload this substrate moves.
    type Mat: MatLike;
    /// A cheaply clonable handle to a `Mat` (`Arc<Matrix>` on the real
    /// substrate), for one-to-many pushes without deep copies.
    type Shared: Clone + Send + 'static;

    /// Rank within this communicator.
    fn rank(&self) -> usize;
    /// Number of ranks in this communicator.
    fn size(&self) -> usize;
    /// `MPI_Comm_split`: groups by `color`, orders by `(key, rank)`.
    fn split(&self, color: u64, key: i64) -> Result<Self, CommError>;

    /// Sends `mat` to `dst`.
    fn send_mat(&self, dst: usize, tag: u64, mat: Self::Mat) -> Result<(), CommError>;
    /// Receives a `rows × cols` matrix from `src`.
    fn recv_mat(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Self::Mat, CommError>;

    /// Wraps a matrix for shared (clone-free) distribution.
    fn share(mat: Self::Mat) -> Self::Shared;
    /// Views the matrix behind a shared handle.
    fn shared_ref(shared: &Self::Shared) -> &Self::Mat;
    /// Sends a shared handle to `dst` (payload counted once, not copied).
    fn send_shared(&self, dst: usize, tag: u64, shared: &Self::Shared) -> Result<(), CommError>;
    /// Receives a shared `rows × cols` matrix from `src`.
    fn recv_shared(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Self::Shared, CommError>;

    /// Starts a nonblocking flat broadcast of a shared `rows × cols`
    /// panel from `root`: the `start` of the `ibcast` protocol. The root
    /// passes `Some(panel)` — its fan-out sends complete eagerly
    /// (buffered on the threaded runtime, priced at the virtual send
    /// path on the simulator), so the root's handle is complete on
    /// return. Every other rank passes `None` and gets a pending handle
    /// to poll ([`Communicator::ibcast_test`]) or block on
    /// ([`Communicator::ibcast_wait`]).
    ///
    /// The fan-out is flat by design: the pipelined algorithms must
    /// never make a non-root rank relay (a relay is a blocking receive
    /// inside the "nonblocking" start, which would put the broadcast
    /// right back on the critical path). Deadline, cancellation and
    /// fault injection compose unchanged — the start goes through the
    /// fallible send path, completion through the fallible receive path,
    /// so a dropped in-flight broadcast surfaces at the wait as
    /// [`CommError::Timeout`] naming the stalled edge.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    fn ibcast_shared(
        &self,
        root: usize,
        tag: u64,
        rows: usize,
        cols: usize,
        panel: Option<Self::Shared>,
    ) -> Result<PanelBcast<Self::Shared>, CommError> {
        // An ibcast is a collective: its wire traffic must live in the
        // collective tag band so fault rules written against
        // `TagClass::Collective` target it on either substrate, and so
        // a stalled-edge diagnostic identifies the tag as a broadcast.
        debug_assert!(tag < IBCAST_TAG_SPAN, "ibcast user tag out of band");
        let tag = IBCAST_TAG_BASE + tag;
        if self.rank() == root {
            let panel = panel.expect("the broadcast root must supply the panel");
            for dst in 0..self.size() {
                if dst != root {
                    self.send_shared(dst, tag, &panel)?;
                }
            }
            Ok(PanelBcast::started(root, tag, rows, cols, Some(panel)))
        } else {
            assert!(panel.is_none(), "only the broadcast root supplies a panel");
            Ok(PanelBcast::started(root, tag, rows, cols, None))
        }
    }

    /// Polls an in-flight broadcast: `Ok(true)` once the panel is
    /// locally available (after which `wait` returns without blocking).
    /// Never blocks and never advances the simulator's virtual clock —
    /// a poll is free; only consuming the message costs time.
    fn ibcast_test(&self, handle: &mut PanelBcast<Self::Shared>) -> Result<bool, CommError>;

    /// Completes an in-flight broadcast, blocking until the panel
    /// arrives. On the threaded runtime a not-yet-arrived panel parks
    /// the rank in its mailbox (condvar-backed — no busy-wait); on the
    /// simulator it advances the rank's virtual clock to the message's
    /// arrival time, which is how a wait deferred behind `compute`
    /// models overlap.
    fn ibcast_wait(&self, handle: PanelBcast<Self::Shared>) -> Result<Self::Shared, CommError> {
        let (root, tag, rows, cols, got) = handle.take();
        match got {
            Some(panel) => Ok(panel),
            None => self.recv_shared(root, tag, rows, cols),
        }
    }

    /// Broadcasts `mat` from `root` in place with the selected algorithm.
    fn bcast_mat(
        &self,
        algo: BcastAlgorithm,
        root: usize,
        mat: &mut Self::Mat,
    ) -> Result<(), CommError>;
    /// Element-wise sum reduction to `root` (binomial tree). Non-root
    /// buffers are left in an unspecified partial state.
    fn reduce_sum_mat(&self, root: usize, mat: &mut Self::Mat) -> Result<(), CommError>;
    /// Synchronizes all ranks of this communicator.
    fn barrier(&self) -> Result<(), CommError>;
    /// A step-boundary synchronization hook: a no-op on the real runtime
    /// (threads synchronize through the messages themselves) and a
    /// world-wide clock alignment on the simulator when it was configured
    /// with per-step-synchronized (blocking-collective) semantics.
    fn maybe_step_sync(&self) -> Result<(), CommError>;

    /// Runs local compute `f`. The real substrate times the call (tagging
    /// it with `flops` when nonzero); the simulator skips `f`'s arithmetic
    /// cost-wise and instead charges `γ · pairs` seconds (`pairs` is the
    /// multiply-add pair count — fractional for non-GEMM kernels such as
    /// LU's `bs³/3`).
    fn compute<R>(&self, pairs: f64, flops: u64, f: impl FnOnce() -> R) -> R;
    /// Records a pivot-step span around `f` for the tracer.
    fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R;
}

/// Wire size of a dense `rows × cols` tile, asked of the payload's
/// [`WirePayload`] hook (`PhantomMat` models the same bytes a real
/// `Matrix` of that shape ships, so both substrates account through one
/// code path).
fn mat_bytes(rows: usize, cols: usize) -> u64 {
    PhantomMat { rows, cols }.payload_bytes()
}

// ---------------------------------------------------------------------------
// Real substrate: the threaded runtime.
// ---------------------------------------------------------------------------

impl Communicator for Comm {
    type Mat = Matrix;
    type Shared = Arc<Matrix>;

    fn rank(&self) -> usize {
        Comm::rank(self)
    }
    fn size(&self) -> usize {
        Comm::size(self)
    }
    fn split(&self, color: u64, key: i64) -> Result<Self, CommError> {
        Comm::split(self, color, key)
    }

    fn send_mat(&self, dst: usize, tag: u64, mat: Matrix) -> Result<(), CommError> {
        self.send_payload(dst, tag, mat)
    }
    fn recv_mat(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix, CommError> {
        let mat = self.recv_payload::<Matrix>(src, tag)?;
        debug_assert_eq!(
            (mat.rows(), mat.cols()),
            (rows, cols),
            "tile shape mismatch"
        );
        Ok(mat)
    }

    fn share(mat: Matrix) -> Arc<Matrix> {
        Arc::new(mat)
    }
    fn shared_ref(shared: &Arc<Matrix>) -> &Matrix {
        shared
    }
    fn send_shared(&self, dst: usize, tag: u64, shared: &Arc<Matrix>) -> Result<(), CommError> {
        self.send_payload(dst, tag, Arc::clone(shared))
    }
    fn recv_shared(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<Arc<Matrix>, CommError> {
        let mat = self.recv_payload::<Arc<Matrix>>(src, tag)?;
        debug_assert_eq!(
            (mat.rows(), mat.cols()),
            (rows, cols),
            "tile shape mismatch"
        );
        Ok(mat)
    }

    fn ibcast_test(&self, handle: &mut PanelBcast<Arc<Matrix>>) -> Result<bool, CommError> {
        if handle.is_complete() {
            return Ok(true);
        }
        match self.try_recv_payload::<Arc<Matrix>>(handle.root(), handle.tag())? {
            Some(panel) => {
                handle.fulfill(panel);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bcast_mat(
        &self,
        algo: BcastAlgorithm,
        root: usize,
        mat: &mut Matrix,
    ) -> Result<(), CommError> {
        collectives::bcast_f64(self, algo, root, mat.as_mut_slice())
    }
    fn reduce_sum_mat(&self, root: usize, mat: &mut Matrix) -> Result<(), CommError> {
        collectives::reduce_sum_f64(self, root, mat.as_mut_slice())
    }
    fn barrier(&self) -> Result<(), CommError> {
        collectives::barrier(self)
    }
    fn maybe_step_sync(&self) -> Result<(), CommError> {
        Ok(())
    }

    fn compute<R>(&self, _pairs: f64, flops: u64, f: impl FnOnce() -> R) -> R {
        if flops == 0 {
            self.time_compute(f)
        } else {
            self.time_compute_flops(flops, f)
        }
    }
    fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        Comm::trace_step(self, k, outer, inner, f)
    }
}

// ---------------------------------------------------------------------------
// Simulated substrate: phantom payloads over SimNet clocks.
// ---------------------------------------------------------------------------

// Collective wire tags, far above any tag the algorithms use (the largest
// algorithm tag is overlap's `2·steps + 2³²`).
const SIM_TAG_BCAST: u64 = 1 << 62;
const SIM_TAG_PIPELINE: u64 = (1 << 62) + 1;
const SIM_TAG_SCATTER: u64 = (1 << 62) + 2;
const SIM_TAG_ALLGATHER: u64 = (1 << 62) + 3;
const SIM_TAG_REDUCE: u64 = (1 << 62) + 4;

/// Rank algebra plus raw byte point-to-point: the minimal surface the
/// simulator-side collective schedules below need. Implemented by the
/// clock-advancing [`SimComm`] and the schedule-recording [`RecordComm`],
/// so one transliteration of the runtime's collectives serves both — the
/// recorded tree edges are definitionally the ones the threaded simulator
/// walks.
trait ByteComm {
    fn rank(&self) -> usize;
    fn size(&self) -> usize;
    fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) -> Result<(), CommError>;
    fn recv_bytes(&self, src: usize, tag: u64) -> Result<u64, CommError>;
}

impl ByteComm for SimComm<'_> {
    fn rank(&self) -> usize {
        SimComm::rank(self)
    }
    fn size(&self) -> usize {
        SimComm::size(self)
    }
    fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) -> Result<(), CommError> {
        SimComm::send_bytes(self, dst, tag, bytes)
    }
    fn recv_bytes(&self, src: usize, tag: u64) -> Result<u64, CommError> {
        SimComm::recv_bytes(self, src, tag)
    }
}

impl ByteComm for RecordComm<'_> {
    fn rank(&self) -> usize {
        RecordComm::rank(self)
    }
    fn size(&self) -> usize {
        RecordComm::size(self)
    }
    fn send_bytes(&self, dst: usize, tag: u64, bytes: u64) -> Result<(), CommError> {
        RecordComm::send_bytes(self, dst, tag, bytes)
    }
    fn recv_bytes(&self, src: usize, tag: u64) -> Result<u64, CommError> {
        // Collective receives never inspect the byte count (the shapes
        // are globally known), so the recorded op is unchecked.
        self.recv_bytes_unchecked(src, tag)
    }
}

impl<'w> Communicator for SimComm<'w> {
    type Mat = PhantomMat;
    type Shared = PhantomMat;

    fn rank(&self) -> usize {
        SimComm::rank(self)
    }
    fn size(&self) -> usize {
        SimComm::size(self)
    }
    fn split(&self, color: u64, key: i64) -> Result<Self, CommError> {
        SimComm::split(self, color, key)
    }

    fn send_mat(&self, dst: usize, tag: u64, mat: PhantomMat) -> Result<(), CommError> {
        self.send_bytes(dst, tag, mat.payload_bytes())
    }
    fn recv_mat(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<PhantomMat, CommError> {
        let got = self.recv_bytes(src, tag)?;
        assert_eq!(got, mat_bytes(rows, cols), "phantom payload size mismatch");
        Ok(PhantomMat { rows, cols })
    }

    fn share(mat: PhantomMat) -> PhantomMat {
        mat
    }
    fn shared_ref(shared: &PhantomMat) -> &PhantomMat {
        shared
    }
    fn send_shared(&self, dst: usize, tag: u64, shared: &PhantomMat) -> Result<(), CommError> {
        self.send_bytes(dst, tag, shared.payload_bytes())
    }
    fn recv_shared(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<PhantomMat, CommError> {
        Communicator::recv_mat(self, src, tag, rows, cols)
    }

    fn ibcast_test(&self, handle: &mut PanelBcast<PhantomMat>) -> Result<bool, CommError> {
        if handle.is_complete() {
            return Ok(true);
        }
        match self.try_recv_bytes(handle.root(), handle.tag())? {
            Some(bytes) => {
                assert_eq!(
                    bytes,
                    mat_bytes(handle.rows(), handle.cols()),
                    "phantom payload size mismatch"
                );
                handle.fulfill(PhantomMat {
                    rows: handle.rows(),
                    cols: handle.cols(),
                });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bcast_mat(
        &self,
        algo: BcastAlgorithm,
        root: usize,
        mat: &mut PhantomMat,
    ) -> Result<(), CommError> {
        assert!(root < self.size(), "root out of range");
        sim_bcast(self, algo, root, mat.elems())
    }
    fn reduce_sum_mat(&self, root: usize, mat: &mut PhantomMat) -> Result<(), CommError> {
        assert!(root < self.size(), "root out of range");
        sim_reduce(self, root, mat.elems())
    }
    fn barrier(&self) -> Result<(), CommError> {
        SimComm::barrier(self)
    }
    fn maybe_step_sync(&self) -> Result<(), CommError> {
        SimComm::maybe_step_sync(self)
    }

    fn compute<R>(&self, pairs: f64, flops: u64, f: impl FnOnce() -> R) -> R {
        SimComm::compute(self, pairs, flops);
        f()
    }
    fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        SimComm::trace_step(self, k, outer, inner, f)
    }
}

// ---------------------------------------------------------------------------
// Recording substrate: phantom payloads into a flat op program.
// ---------------------------------------------------------------------------

impl<'r> Communicator for RecordComm<'r> {
    type Mat = PhantomMat;
    type Shared = PhantomMat;

    fn rank(&self) -> usize {
        RecordComm::rank(self)
    }
    fn size(&self) -> usize {
        RecordComm::size(self)
    }
    fn split(&self, color: u64, key: i64) -> Result<Self, CommError> {
        RecordComm::split(self, color, key)
    }

    fn send_mat(&self, dst: usize, tag: u64, mat: PhantomMat) -> Result<(), CommError> {
        RecordComm::send_bytes(self, dst, tag, mat.payload_bytes())
    }
    fn recv_mat(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<PhantomMat, CommError> {
        // The shape is known here, so the recorded op carries the exact
        // byte count and the replay engine re-asserts it — the same
        // check `SimComm::recv_mat` performs at run time.
        self.recv_bytes_expect(src, tag, mat_bytes(rows, cols))?;
        Ok(PhantomMat { rows, cols })
    }

    fn share(mat: PhantomMat) -> PhantomMat {
        mat
    }
    fn shared_ref(shared: &PhantomMat) -> &PhantomMat {
        shared
    }
    fn send_shared(&self, dst: usize, tag: u64, shared: &PhantomMat) -> Result<(), CommError> {
        RecordComm::send_bytes(self, dst, tag, shared.payload_bytes())
    }
    fn recv_shared(
        &self,
        src: usize,
        tag: u64,
        rows: usize,
        cols: usize,
    ) -> Result<PhantomMat, CommError> {
        Communicator::recv_mat(self, src, tag, rows, cols)
    }

    fn ibcast_test(&self, _handle: &mut PanelBcast<PhantomMat>) -> Result<bool, CommError> {
        // `ibcast_test` asks "has the message arrived *yet*?" — a
        // question about the virtual clock that a sequential recording
        // pass cannot answer. Schedules that poll (hsumma_overlap's
        // adaptive handoff) are data-dependent on timing and therefore
        // not schedule-as-data; run them on the threaded sim engine.
        // The default `ibcast_shared`/`ibcast_wait` pair (summa_overlap)
        // records fine: its message schedule is timing-independent.
        unimplemented!(
            "ibcast_test polls the virtual clock, which a sequential recording pass \
             cannot observe; timing-adaptive schedules are not recordable"
        )
    }

    fn bcast_mat(
        &self,
        algo: BcastAlgorithm,
        root: usize,
        mat: &mut PhantomMat,
    ) -> Result<(), CommError> {
        assert!(root < self.size(), "root out of range");
        sim_bcast(self, algo, root, mat.elems())
    }
    fn reduce_sum_mat(&self, root: usize, mat: &mut PhantomMat) -> Result<(), CommError> {
        assert!(root < self.size(), "root out of range");
        sim_reduce(self, root, mat.elems())
    }
    fn barrier(&self) -> Result<(), CommError> {
        RecordComm::barrier(self)
    }
    fn maybe_step_sync(&self) -> Result<(), CommError> {
        RecordComm::maybe_step_sync(self)
    }

    fn compute<R>(&self, pairs: f64, flops: u64, f: impl FnOnce() -> R) -> R {
        RecordComm::compute(self, pairs, flops);
        f()
    }
    fn trace_step<R>(&self, k: usize, outer: usize, inner: usize, f: impl FnOnce() -> R) -> R {
        RecordComm::trace_step(self, k, outer, inner, f)
    }
}

/// Phantom-payload broadcast of `elems` `f64`s: the same per-rank message
/// schedules as `hsumma_runtime::collectives::bcast_f64`, expressed SPMD
/// over virtual clocks. Segmenting algorithms deal *elements* with
/// [`chunk_range`], exactly like the runtime, so segment wire sizes match
/// message-for-message.
fn sim_bcast<C: ByteComm>(
    comm: &C,
    algo: BcastAlgorithm,
    root: usize,
    elems: usize,
) -> Result<(), CommError> {
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let me = comm.rank();
    let vrank = (me + p - root) % p;
    let unvirt = |v: usize| (v + root) % p;
    let bytes = mat_bytes(1, elems);
    match algo {
        BcastAlgorithm::Flat => {
            // The runtime's root sends in *local-rank* order, not virtual
            // order — mirrored here so arrival times line up.
            if me == root {
                for dst in 0..p {
                    if dst != root {
                        comm.send_bytes(dst, SIM_TAG_BCAST, bytes)?;
                    }
                }
            } else {
                comm.recv_bytes(root, SIM_TAG_BCAST)?;
            }
        }
        BcastAlgorithm::Binomial => {
            if vrank != 0 {
                let high = 1usize << (usize::BITS - 1 - vrank.leading_zeros());
                comm.recv_bytes(unvirt(vrank - high), SIM_TAG_BCAST)?;
            }
            let mut mask = 1usize;
            while mask < p {
                if mask > vrank && vrank + mask < p {
                    comm.send_bytes(unvirt(vrank + mask), SIM_TAG_BCAST, bytes)?;
                }
                mask <<= 1;
            }
        }
        BcastAlgorithm::Binary => {
            if vrank != 0 {
                comm.recv_bytes(unvirt((vrank - 1) / 2), SIM_TAG_BCAST)?;
            }
            for child in [2 * vrank + 1, 2 * vrank + 2] {
                if child < p {
                    comm.send_bytes(unvirt(child), SIM_TAG_BCAST, bytes)?;
                }
            }
        }
        BcastAlgorithm::Ring => {
            if vrank != 0 {
                comm.recv_bytes(unvirt(vrank - 1), SIM_TAG_BCAST)?;
            }
            if vrank + 1 < p {
                comm.send_bytes(unvirt(vrank + 1), SIM_TAG_BCAST, bytes)?;
            }
        }
        BcastAlgorithm::Pipelined { segments } => {
            assert!(segments >= 1, "need at least one segment");
            let segments = segments.min(elems.max(1));
            let prev = unvirt(vrank + p - 1);
            let next = unvirt(vrank + 1);
            for s in 0..segments {
                let (lo, hi) = chunk_range(elems, segments, s);
                if vrank > 0 {
                    comm.recv_bytes(prev, SIM_TAG_PIPELINE)?;
                }
                if vrank + 1 < p {
                    comm.send_bytes(next, SIM_TAG_PIPELINE, mat_bytes(1, hi - lo))?;
                }
            }
        }
        BcastAlgorithm::ScatterAllgather => {
            // Binomial scatter: virtual rank v relays the chunks of
            // virtual ranks [v, v + extent), extent = v's lowest set bit
            // (everything for the root). The runtime's relay messages
            // carry a shared buffer; on the wire the *useful* payload of
            // an edge is its subtree's chunk range, which is what the
            // analytic model (and the old central replay) charges.
            let p2 = p.next_power_of_two();
            let my_extent = if vrank == 0 {
                p2
            } else {
                vrank & vrank.wrapping_neg()
            };
            if vrank != 0 {
                comm.recv_bytes(unvirt(vrank - my_extent), SIM_TAG_SCATTER)?;
            }
            let mut mask = my_extent >> 1;
            while mask > 0 {
                let child = vrank + mask;
                if child < p {
                    let hi_v = (child + mask).min(p);
                    let (lo, _) = chunk_range(elems, p, child);
                    let (_, hi) = chunk_range(elems, p, hi_v - 1);
                    comm.send_bytes(unvirt(child), SIM_TAG_SCATTER, mat_bytes(1, hi - lo))?;
                }
                mask >>= 1;
            }
            // Ring allgather: round k sends chunk (v−k), receives (v−k−1).
            let next = unvirt(vrank + 1);
            let prev = unvirt(vrank + p - 1);
            for k in 0..p - 1 {
                let send_chunk = (vrank + p - k) % p;
                let (slo, shi) = chunk_range(elems, p, send_chunk);
                comm.send_bytes(next, SIM_TAG_ALLGATHER, mat_bytes(1, shi - slo))?;
                comm.recv_bytes(prev, SIM_TAG_ALLGATHER)?;
            }
        }
    }
    Ok(())
}

/// Phantom binomial-tree sum reduction, mirroring
/// `hsumma_runtime::collectives::reduce_sum_f64` (leaves send first; the
/// element-wise adds are uncharged there and so charge nothing here).
fn sim_reduce<C: ByteComm>(comm: &C, root: usize, elems: usize) -> Result<(), CommError> {
    let p = comm.size();
    let vrank = (comm.rank() + p - root) % p;
    let unvirt = |v: usize| (v + root) % p;
    let bytes = mat_bytes(1, elems);
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            comm.send_bytes(unvirt(vrank ^ mask), SIM_TAG_REDUCE, bytes)?;
            return Ok(());
        }
        if vrank + mask < p {
            comm.recv_bytes(unvirt(vrank + mask), SIM_TAG_REDUCE)?;
        }
        mask <<= 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_netsim::spmd::SimWorld;
    use hsumma_netsim::{Hockney, SimNet, SimReport};

    const ALPHA: f64 = 1e-3;
    const BETA: f64 = 1e-6;

    fn t(bytes: u64) -> f64 {
        ALPHA + bytes as f64 * BETA
    }

    fn run_bcast(p: usize, algo: BcastAlgorithm, root: usize, elems: usize) -> SimReport {
        let net = SimNet::new(p, Hockney::new(ALPHA, BETA));
        let (net, _) = SimWorld::run(net, 0.0, false, |comm| {
            let mut m = PhantomMat {
                rows: 1,
                cols: elems,
            };
            Communicator::bcast_mat(comm, algo, root, &mut m).unwrap();
        });
        net.report()
    }

    #[test]
    fn binomial_matches_closed_form_on_powers_of_two() {
        for p in [2usize, 4, 8, 16, 64] {
            let r = run_bcast(p, BcastAlgorithm::Binomial, 0, 512);
            let want = (p as f64).log2() * t(4096);
            assert!(
                (r.total_time - want).abs() < 1e-12,
                "p={p}: got {}, want {want}",
                r.total_time
            );
        }
    }

    #[test]
    fn flat_costs_p_minus_1_serial_transfers() {
        let r = run_bcast(6, BcastAlgorithm::Flat, 0, 100);
        assert!((r.total_time - 5.0 * t(800)).abs() < 1e-12);
        assert_eq!(r.msgs, 5);
    }

    #[test]
    fn ring_costs_a_chain_of_full_transfers() {
        let r = run_bcast(7, BcastAlgorithm::Ring, 0, 100);
        assert!((r.total_time - 6.0 * t(800)).abs() < 1e-12);
    }

    #[test]
    fn pipelined_matches_pipeline_formula() {
        // (p − 1 + s − 1) stages of (α + m/s·β) when s divides the payload.
        let (p, s, elems) = (4usize, 8usize, 1000usize);
        let r = run_bcast(p, BcastAlgorithm::Pipelined { segments: s }, 0, elems);
        let want = (p - 1 + s - 1) as f64 * t((elems / s * 8) as u64);
        assert!(
            (r.total_time - want).abs() < 1e-12,
            "got {}, want {want}",
            r.total_time
        );
    }

    #[test]
    fn scatter_allgather_matches_van_de_geijn_cost() {
        for p in [2usize, 4, 8, 16] {
            let elems = 2048; // divisible by every p tested
            let r = run_bcast(p, BcastAlgorithm::ScatterAllgather, 0, elems);
            let m = (elems * 8) as f64;
            let pf = p as f64;
            let want = (pf.log2() + pf - 1.0) * ALPHA + 2.0 * (pf - 1.0) / pf * m * BETA;
            assert!(
                (r.total_time - want).abs() < 1e-9,
                "p={p}: got {}, want {want}",
                r.total_time
            );
        }
    }

    #[test]
    fn tree_broadcasts_move_exactly_p_minus_1_payloads() {
        for algo in [
            BcastAlgorithm::Flat,
            BcastAlgorithm::Binomial,
            BcastAlgorithm::Binary,
            BcastAlgorithm::Ring,
        ] {
            for root in [0usize, 3] {
                let r = run_bcast(5, algo, root, 77);
                assert_eq!(r.bytes, 4 * 77 * 8, "{algo:?} root={root}");
            }
        }
    }

    #[test]
    fn singleton_broadcast_is_free() {
        let r = run_bcast(1, BcastAlgorithm::Binomial, 0, 1 << 16);
        assert_eq!((r.msgs, r.bytes), (0, 0));
        assert_eq!(r.total_time, 0.0);
    }

    #[test]
    fn all_algorithms_deliver_from_any_root() {
        for algo in [
            BcastAlgorithm::Flat,
            BcastAlgorithm::Binomial,
            BcastAlgorithm::Binary,
            BcastAlgorithm::Ring,
            BcastAlgorithm::Pipelined { segments: 3 },
            BcastAlgorithm::ScatterAllgather,
        ] {
            for p in [2usize, 3, 5, 8] {
                for root in [0, p / 2, p - 1] {
                    // Completion (no deadlock, no leftover messages) is the
                    // assertion; SimWorld::run panics otherwise.
                    let r = run_bcast(p, algo, root, 96);
                    assert!(r.msgs > 0, "{algo:?} p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_moves_p_minus_1_payloads_to_root() {
        let net = SimNet::new(6, Hockney::new(ALPHA, BETA));
        let (net, _) = SimWorld::run(net, 0.0, false, |comm| {
            let mut m = PhantomMat { rows: 4, cols: 8 };
            Communicator::reduce_sum_mat(comm, 2, &mut m).unwrap();
        });
        assert_eq!(net.report().bytes, 5 * 32 * 8);
    }

    #[test]
    fn phantom_ops_enforce_shapes() {
        let a = PhantomMat { rows: 4, cols: 6 };
        let b = PhantomMat { rows: 6, cols: 3 };
        let mut c = PhantomMat { rows: 4, cols: 3 };
        PhantomMat::gemm(GemmKernel::Naive, &a, &b, &mut c);
        let (q, r) = PhantomMat { rows: 9, cols: 4 }.qr_thin();
        assert_eq!((q.rows, q.cols, r.rows, r.cols), (9, 4, 4, 4));
        let blk = a.block(1, 2, 3, 4);
        assert_eq!((blk.rows, blk.cols), (3, 4));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn phantom_gemm_rejects_mismatched_shapes() {
        let a = PhantomMat { rows: 4, cols: 6 };
        let b = PhantomMat { rows: 5, cols: 3 };
        let mut c = PhantomMat { rows: 4, cols: 3 };
        PhantomMat::gemm(GemmKernel::Naive, &a, &b, &mut c);
    }

    #[test]
    fn recorded_collectives_replay_bit_identical_to_threaded() {
        use hsumma_netsim::{record, EventLoopSim, SimRunOptions};
        for algo in [
            BcastAlgorithm::Flat,
            BcastAlgorithm::Binomial,
            BcastAlgorithm::Binary,
            BcastAlgorithm::Ring,
            BcastAlgorithm::Pipelined { segments: 3 },
            BcastAlgorithm::ScatterAllgather,
        ] {
            for (p, root) in [(3usize, 1usize), (5, 2), (8, 0)] {
                let threaded = run_bcast(p, algo, root, 96);
                let prog = record(p, false, |comm| {
                    let mut m = PhantomMat { rows: 1, cols: 96 };
                    Communicator::bcast_mat(comm, algo, root, &mut m)
                });
                let net = SimNet::new(p, Hockney::new(ALPHA, BETA));
                let out = EventLoopSim::new(net, 0.0).run(&prog, &SimRunOptions::unbounded());
                let (_, report) = out.expect_clean();
                assert_eq!(report, threaded, "{algo:?} p={p} root={root}");
            }
        }
    }

    #[test]
    fn recorded_reduce_replays_bit_identical_to_threaded() {
        use hsumma_netsim::{record, EventLoopSim, SimRunOptions};
        let net = SimNet::new(6, Hockney::new(ALPHA, BETA));
        let (net, _) = SimWorld::run(net, 0.0, false, |comm| {
            let mut m = PhantomMat { rows: 4, cols: 8 };
            Communicator::reduce_sum_mat(comm, 2, &mut m).unwrap();
        });
        let prog = record(6, false, |comm| {
            let mut m = PhantomMat { rows: 4, cols: 8 };
            Communicator::reduce_sum_mat(comm, 2, &mut m)
        });
        let rnet = SimNet::new(6, Hockney::new(ALPHA, BETA));
        let out = EventLoopSim::new(rnet, 0.0).run(&prog, &SimRunOptions::unbounded());
        let (_, report) = out.expect_clean();
        assert_eq!(report, net.report());
    }

    #[test]
    fn real_and_simulated_splits_agree_on_ordering() {
        // Same (color, key) program on both substrates must produce the
        // same communicator membership — the algorithms depend on it.
        use hsumma_runtime::Runtime;
        let program = |rank: usize| -> (u64, i64) { ((rank % 2) as u64, -(rank as i64)) };
        let real = Runtime::run(4, |comm| {
            let (color, key) = program(Comm::rank(comm));
            let sub = Communicator::split(comm, color, key).unwrap();
            (Communicator::rank(&sub), Communicator::size(&sub))
        });
        let net = SimNet::new(4, Hockney::new(ALPHA, BETA));
        let (_, sim) = SimWorld::run(net, 0.0, false, |comm| {
            let (color, key) = program(SimComm::rank(comm));
            let sub = Communicator::split(comm, color, key).unwrap();
            (Communicator::rank(&sub), Communicator::size(&sub))
        });
        assert_eq!(real, sim);
    }
}
