//! More than two hierarchy levels — the paper's future work (§VI).
//!
//! "We also plan to investigate the algorithm with more than two levels
//! of hierarchy as we believe that in this case it is possible to get
//! even better performance."
//!
//! With equal block sizes at every level (`b = B`, the paper's
//! experimental setting), an `L`-level HSUMMA schedule is SUMMA whose
//! row/column panel broadcast is replaced by an `L`-level *hierarchical
//! broadcast*: broadcast among the leaders of the top-level subgroups,
//! then recurse inside each subgroup. [`hier_bcast`] implements that
//! schedule on the simulator, and [`sim_summa_hier`] runs the resulting
//! multi-level algorithm. Two levels reproduce `sim_hsumma` exactly
//! (verified by tests), so this is a strict generalization.

use hsumma_matrix::GridShape;
use hsumma_netsim::model::ELEM_BYTES;
use hsumma_netsim::{Platform, SimBcast, SimNet, SimReport};

/// Hierarchically broadcasts `bytes` from `group[root]`: `levels[0]`
/// subgroups at the top, recursing with `levels[1..]`. The product of
/// `levels` must equal `group.len()`; a single level is a plain `algo`
/// broadcast.
///
/// # Panics
/// Panics if `levels` is empty or its product differs from the group size.
pub fn hier_bcast(
    net: &mut SimNet,
    algo: SimBcast,
    group: &[usize],
    root: usize,
    bytes: u64,
    levels: &[usize],
) {
    assert!(!levels.is_empty(), "need at least one level");
    assert_eq!(
        levels.iter().product::<usize>(),
        group.len(),
        "levels {levels:?} must multiply to the group size {}",
        group.len()
    );
    if levels.len() == 1 {
        algo.run(net, group, root, bytes);
        return;
    }
    let top = levels[0];
    let sub = group.len() / top;
    // The leaders sit at the root's offset within each subgroup, so the
    // original root is itself a leader.
    let offset = root % sub;
    let leaders: Vec<usize> = (0..top).map(|s| group[s * sub + offset]).collect();
    algo.run(net, &leaders, root / sub, bytes);
    for s in 0..top {
        hier_bcast(
            net,
            algo,
            &group[s * sub..(s + 1) * sub],
            offset,
            bytes,
            &levels[1..],
        );
    }
}

/// SUMMA on a square grid where every panel broadcast is an `levels`-level
/// hierarchical broadcast — i.e. multi-level HSUMMA at `b = B`.
///
/// `levels` applies to both row and column broadcasts, so the grid side
/// must equal the product of `levels`.
pub fn sim_summa_hier(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    algo: SimBcast,
    levels: &[usize],
) -> SimReport {
    sim_summa_hier_with(platform, grid, n, b, algo, levels, false)
}

/// [`sim_summa_hier`] with selectable per-step synchronization
/// (blocking-collective semantics; see `simdrive::sim_summa_sync`).
pub fn sim_summa_hier_with(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    algo: SimBcast,
    levels: &[usize],
    step_sync: bool,
) -> SimReport {
    assert_eq!(
        grid.rows, grid.cols,
        "multi-level driver assumes a square grid"
    );
    assert_eq!(
        levels.iter().product::<usize>(),
        grid.cols,
        "levels must multiply to the grid side"
    );
    assert_eq!(n % grid.rows, 0, "n must be divisible by the grid side");
    let (th, tw) = (n / grid.rows, n / grid.cols);
    assert!(
        b > 0 && tw % b == 0 && th % b == 0,
        "block must divide tile extents"
    );

    let mut net = SimNet::new(grid.size(), platform.net);
    let row_ranks: Vec<Vec<usize>> = (0..grid.rows)
        .map(|gi| (0..grid.cols).map(|gj| grid.rank(gi, gj)).collect())
        .collect();
    let col_ranks: Vec<Vec<usize>> = (0..grid.cols)
        .map(|gj| (0..grid.rows).map(|gi| grid.rank(gi, gj)).collect())
        .collect();

    let a_bytes = (th * b) as u64 * ELEM_BYTES;
    let b_bytes = (b * tw) as u64 * ELEM_BYTES;
    let pairs = (th * tw * b) as u64;
    for k in 0..n / b {
        let owner_col = k * b / tw;
        for ranks in &row_ranks {
            hier_bcast(&mut net, algo, ranks, owner_col, a_bytes, levels);
        }
        let owner_row = k * b / th;
        for ranks in &col_ranks {
            hier_bcast(&mut net, algo, ranks, owner_row, b_bytes, levels);
        }
        for r in 0..net.size() {
            net.compute(r, platform.gamma * pairs as f64);
        }
        if step_sync {
            net.barrier_all();
        }
    }
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdrive::{sim_hsumma, sim_summa};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn one_level_equals_plain_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let flat = sim_summa(&plat, grid, 128, 16, SimBcast::Binomial);
        let hier = sim_summa_hier(&plat, grid, 128, 16, SimBcast::Binomial, &[8]);
        assert!(close(flat.total_time, hier.total_time));
        assert_eq!(flat.msgs, hier.msgs);
    }

    #[test]
    fn two_levels_equal_hsumma_with_square_groups() {
        // levels [2, 4] on a side of 8 = 2x2 groups of 4x4 processors.
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let two = sim_summa_hier(&plat, grid, 128, 16, SimBcast::Binomial, &[2, 4]);
        let hs = sim_hsumma(
            &plat,
            grid,
            GridShape::new(2, 2),
            128,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(
            close(two.total_time, hs.total_time),
            "hier {two:?} vs hsumma {hs:?}"
        );
        assert!(close(two.comm_time, hs.comm_time));
        assert_eq!(two.msgs, hs.msgs);
        assert_eq!(two.bytes, hs.bytes);
    }

    #[test]
    fn hier_bcast_preserves_total_bytes_per_receiver() {
        // Every rank receives the payload exactly once per tree level it
        // participates in; total bytes = (group−1) · payload for trees.
        let plat = Platform::grid5000();
        let mut net = SimNet::new(8, plat.net);
        let group: Vec<usize> = (0..8).collect();
        hier_bcast(&mut net, SimBcast::Binomial, &group, 0, 1000, &[2, 2, 2]);
        assert_eq!(net.report().bytes, 7 * 1000);
    }

    #[test]
    fn three_levels_help_on_latency_bound_vdg() {
        // With van de Geijn's linear-in-p latency, deeper hierarchies cut
        // latency further (Σ q_ℓ ≪ q); on a latency-bound platform three
        // levels must beat one.
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(0.1, 1e-12),
            gamma: 0.0,
        };
        let grid = GridShape::new(16, 16);
        let one = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[16]);
        let two = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[4, 4]);
        let three = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[2, 2, 4]);
        assert!(two.comm_time < one.comm_time, "two levels should help");
        assert!(three.comm_time < one.comm_time, "three levels should help");
    }

    #[test]
    fn root_offset_respected_in_hierarchy() {
        // Root at index 5 of an 8-rank group, 2 levels: leader set must
        // include the root, and all ranks must advance past zero.
        let plat = Platform::grid5000();
        let mut net = SimNet::new(8, plat.net);
        let group: Vec<usize> = (0..8).collect();
        hier_bcast(&mut net, SimBcast::Binomial, &group, 5, 64, &[2, 4]);
        for r in 0..8 {
            if r != 5 {
                assert!(net.now(r) > 0.0, "rank {r} never received");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must multiply to the group size")]
    fn mismatched_levels_rejected() {
        let plat = Platform::grid5000();
        let mut net = SimNet::new(8, plat.net);
        let group: Vec<usize> = (0..8).collect();
        hier_bcast(&mut net, SimBcast::Binomial, &group, 0, 64, &[3, 2]);
    }
}
