//! More than two hierarchy levels — the paper's future work (§VI).
//!
//! "We also plan to investigate the algorithm with more than two levels
//! of hierarchy as we believe that in this case it is possible to get
//! even better performance."
//!
//! With equal block sizes at every level (`b = B`, the paper's
//! experimental setting), an `L`-level HSUMMA schedule is SUMMA whose
//! row/column panel broadcast is replaced by an `L`-level *hierarchical
//! broadcast*: broadcast among the leaders of the top-level subgroups,
//! then recurse inside each subgroup. [`hier_bcast`] implements that
//! schedule generically over any [`Communicator`] — real ranks moving
//! real panels or simulated clocks moving phantom ones — and
//! [`sim_summa_hier`] runs the resulting multi-level algorithm on the
//! simulator. Two levels reproduce `sim_hsumma` exactly (verified by
//! tests), so this is a strict generalization.

use crate::comm::{Communicator, PhantomMat};
use crate::partition::{pivot_owner, tile_shape};
use hsumma_matrix::GridShape;
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Platform, SimBcast, SimNet, SimReport};
use hsumma_runtime::{BcastAlgorithm, CommError};

/// Hierarchically broadcasts `mat` from rank `root` of `comm`:
/// `levels[0]` subgroups at the top, recursing with `levels[1..]`. The
/// product of `levels` must equal the communicator size; a single level
/// is a plain `algo` broadcast.
///
/// Collective: every rank of `comm` must call this with the same `root`
/// and `levels` (the subgroup splits are themselves collective).
///
/// # Panics
/// Panics if `levels` is empty or its product differs from the
/// communicator size.
pub fn hier_bcast<C: Communicator>(
    comm: &C,
    algo: BcastAlgorithm,
    root: usize,
    mat: &mut C::Mat,
    levels: &[usize],
) -> Result<(), CommError> {
    assert!(!levels.is_empty(), "need at least one level");
    assert_eq!(
        levels.iter().product::<usize>(),
        comm.size(),
        "levels {levels:?} must multiply to the group size {}",
        comm.size()
    );
    if levels.len() == 1 {
        return comm.bcast_mat(algo, root, mat);
    }
    let top = levels[0];
    let sub = comm.size() / top;
    // The leaders sit at the root's offset within each subgroup, so the
    // original root is itself a leader.
    let offset = root % sub;
    let me = comm.rank();
    let is_leader = me % sub == offset;
    // Collective split: leaders share color 0 (ordered by subgroup index),
    // everyone else lands in a singleton group.
    let leader_comm = if is_leader {
        comm.split(0, (me / sub) as i64)?
    } else {
        comm.split(1 + me as u64, 0)?
    };
    if is_leader {
        leader_comm.bcast_mat(algo, root / sub, mat)?;
    }
    let sub_comm = comm.split((me / sub) as u64, (me % sub) as i64)?;
    hier_bcast(&sub_comm, algo, offset, mat, &levels[1..])
}

/// SUMMA on a square grid where every panel broadcast is an `levels`-level
/// hierarchical broadcast — i.e. multi-level HSUMMA at `b = B`.
///
/// `levels` applies to both row and column broadcasts, so the grid side
/// must equal the product of `levels`.
pub fn sim_summa_hier(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    algo: SimBcast,
    levels: &[usize],
) -> SimReport {
    sim_summa_hier_with(platform, grid, n, b, algo, levels, false)
}

/// [`sim_summa_hier`] with selectable per-step synchronization
/// (blocking-collective semantics; see `simdrive::sim_summa_sync`).
pub fn sim_summa_hier_with(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    algo: SimBcast,
    levels: &[usize],
    step_sync: bool,
) -> SimReport {
    assert_eq!(
        grid.rows, grid.cols,
        "multi-level driver assumes a square grid"
    );
    assert_eq!(
        levels.iter().product::<usize>(),
        grid.cols,
        "levels must multiply to the grid side"
    );
    let (th, tw) = tile_shape(grid, n);
    assert!(
        b > 0 && tw % b == 0 && th % b == 0,
        "block must divide tile extents"
    );

    let levels: Vec<usize> = levels.to_vec();
    let (net, _) = SimWorld::run(
        SimNet::new(grid.size(), platform.net),
        platform.gamma,
        step_sync,
        move |comm| {
            let (gi, gj) = grid.coords(comm.rank());
            let row_comm = comm.split(gi as u64, gj as i64).unwrap();
            let col_comm = comm.split((grid.rows + gj) as u64, gi as i64).unwrap();
            let pairs = th * tw * b;
            let mut a_panel = PhantomMat { rows: th, cols: b };
            let mut b_panel = PhantomMat { rows: b, cols: tw };
            for k in 0..n / b {
                let owner_col = pivot_owner(k, b, tw);
                hier_bcast(&row_comm, algo, owner_col, &mut a_panel, &levels).unwrap();
                let owner_row = pivot_owner(k, b, th);
                hier_bcast(&col_comm, algo, owner_row, &mut b_panel, &levels).unwrap();
                comm.compute(pairs as f64, 2 * pairs as u64);
                comm.maybe_step_sync().unwrap();
            }
        },
    );
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdrive::{sim_hsumma, sim_summa};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    /// Runs a bare hierarchical broadcast of `elems` f64s over `p`
    /// simulated ranks and returns the network for inspection.
    fn run_hier_bcast(p: usize, root: usize, elems: usize, levels: &[usize]) -> SimNet {
        let plat = Platform::grid5000();
        let levels: Vec<usize> = levels.to_vec();
        let (net, _) = SimWorld::run(SimNet::new(p, plat.net), plat.gamma, false, move |comm| {
            let mut m = PhantomMat {
                rows: 1,
                cols: elems,
            };
            hier_bcast(comm, SimBcast::Binomial, root, &mut m, &levels).unwrap();
        });
        net
    }

    #[test]
    fn one_level_equals_plain_summa() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(8, 8);
        let flat = sim_summa(&plat, grid, 128, 16, SimBcast::Binomial);
        let hier = sim_summa_hier(&plat, grid, 128, 16, SimBcast::Binomial, &[8]);
        assert!(close(flat.total_time, hier.total_time));
        assert_eq!(flat.msgs, hier.msgs);
    }

    #[test]
    fn two_levels_equal_hsumma_with_square_groups() {
        // levels [2, 4] on a side of 8 = 2x2 groups of 4x4 processors.
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let two = sim_summa_hier(&plat, grid, 128, 16, SimBcast::Binomial, &[2, 4]);
        let hs = sim_hsumma(
            &plat,
            grid,
            GridShape::new(2, 2),
            128,
            16,
            16,
            SimBcast::Binomial,
            SimBcast::Binomial,
        );
        assert!(
            close(two.total_time, hs.total_time),
            "hier {two:?} vs hsumma {hs:?}"
        );
        assert!(close(two.comm_time, hs.comm_time));
        assert_eq!(two.msgs, hs.msgs);
        assert_eq!(two.bytes, hs.bytes);
    }

    #[test]
    fn hier_bcast_preserves_total_bytes_per_receiver() {
        // Every rank receives the payload exactly once per tree level it
        // participates in; total bytes = (group−1) · payload for trees.
        // 125 f64 elements = 1000 bytes on the wire.
        let net = run_hier_bcast(8, 0, 125, &[2, 2, 2]);
        assert_eq!(net.report().bytes, 7 * 1000);
    }

    #[test]
    fn three_levels_help_on_latency_bound_vdg() {
        // With van de Geijn's linear-in-p latency, deeper hierarchies cut
        // latency further (Σ q_ℓ ≪ q); on a latency-bound platform three
        // levels must beat one.
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(0.1, 1e-12),
            gamma: 0.0,
        };
        let grid = GridShape::new(16, 16);
        let one = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[16]);
        let two = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[4, 4]);
        let three = sim_summa_hier(&plat, grid, 256, 16, SimBcast::ScatterAllgather, &[2, 2, 4]);
        assert!(two.comm_time < one.comm_time, "two levels should help");
        assert!(three.comm_time < one.comm_time, "three levels should help");
    }

    #[test]
    fn root_offset_respected_in_hierarchy() {
        // Root at rank 5 of an 8-rank world, 2 levels: leader set must
        // include the root, and all ranks must advance past zero.
        let net = run_hier_bcast(8, 5, 8, &[2, 4]);
        for r in 0..8 {
            if r != 5 {
                assert!(net.now(r) > 0.0, "rank {r} never received");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must multiply to the group size")]
    fn mismatched_levels_rejected() {
        run_hier_bcast(8, 0, 8, &[3, 2]);
    }
}
