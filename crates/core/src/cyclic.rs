//! SUMMA over a block-cyclic distribution — the paper's future work.
//!
//! §VI: "we believe that by using block-cyclic distribution the
//! communication can be better overlapped and parallelized and thus the
//! communication cost can be reduced even further."
//!
//! With dealing blocks of edge `b` (the SUMMA panel width), pivot panel
//! `k` is owned by grid column `k mod t` (for `A`) and grid row
//! `k mod s` (for `B`) — the ScaLAPACK convention. Two consequences:
//!
//! * the broadcast *roots rotate every step* instead of every `n/(t·b)`
//!   steps, which spreads the root's serialized sends over all ranks and
//!   lets consecutive steps overlap (quantified by
//!   [`sim_summa_cyclic`] against `simdrive::sim_summa` without per-step
//!   synchronization);
//! * correctness is unchanged: each rank's local rows/columns of the
//!   pivot panels line up with its local `C` tile rows/columns under the
//!   same cyclic dealing.

use crate::comm::{Communicator, MatLike, PhantomMat};
use crate::partition::tile_shape;
use hsumma_matrix::{BlockCyclicDist, GridShape};
use hsumma_netsim::spmd::SimWorld;
use hsumma_netsim::{Platform, SimBcast, SimNet, SimReport};
use hsumma_runtime::CommError;

use crate::summa::{bcast_matrix, SummaConfig};

/// Runs SUMMA on operands distributed block-cyclically with dealing
/// block equal to `cfg.block`. SPMD over `comm`; tiles must come from a
/// [`BlockCyclicDist`] with the same grid, extents and block size.
/// Returns the local (cyclic) tile of `C`.
///
/// # Panics
/// Panics if grid, tile shapes or block size are inconsistent (the
/// global block grid `n/b × n/b` must be divisible by the processor
/// grid, as `BlockCyclicDist` requires).
pub fn summa_cyclic<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    // Validates divisibility; we only need it for the shape algebra.
    let dist = BlockCyclicDist::new(grid, n, n, bs);
    let (th, tw) = dist.tile_shape();
    assert_eq!(comm.size(), grid.size(), "communicator must span the grid");
    assert_eq!((a.rows(), a.cols()), (th, tw), "A tile has wrong shape");
    assert_eq!((b.rows(), b.cols()), (th, tw), "B tile has wrong shape");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let mut c = C::Mat::zeros(th, tw);
    let step_pairs = th * tw * bs;
    for k in 0..n / bs {
        // Pivot column panel k of A lives in grid column k mod t, local
        // block column k div t.
        let owner_col = k % grid.cols;
        let mut a_panel = if gj == owner_col {
            a.block(0, (k / grid.cols) * bs, th, bs)
        } else {
            C::Mat::zeros(th, bs)
        };
        bcast_matrix(&row_comm, cfg.bcast, owner_col, &mut a_panel)?;

        let owner_row = k % grid.rows;
        let mut b_panel = if gi == owner_row {
            b.block((k / grid.rows) * bs, 0, bs, tw)
        } else {
            C::Mat::zeros(bs, tw)
        };
        bcast_matrix(&col_comm, cfg.bcast, owner_row, &mut b_panel)?;

        comm.compute(step_pairs as f64, 0, || {
            C::Mat::gemm(cfg.kernel, &a_panel, &b_panel, &mut c)
        });
        comm.maybe_step_sync()?;
    }
    Ok(c)
}

/// Timed replay of the block-cyclic SUMMA schedule (rotating roots):
/// [`summa_cyclic`] itself, run over simulated clocks with phantom
/// payloads. Compare with `simdrive::sim_summa` (block distribution,
/// sticky roots) under `step_sync = false` to quantify the overlap
/// benefit §VI anticipates.
pub fn sim_summa_cyclic(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    b: usize,
    bcast: SimBcast,
    step_sync: bool,
) -> SimReport {
    assert!(b > 0, "block size must be positive");
    assert_eq!(
        (n / b) % grid.rows,
        0,
        "block grid must divide processor grid rows"
    );
    assert_eq!(
        (n / b) % grid.cols,
        0,
        "block grid must divide processor grid cols"
    );
    let (th, tw) = tile_shape(grid, n);

    let cfg = SummaConfig {
        block: b,
        bcast,
        ..Default::default()
    };
    let (net, _) = SimWorld::run(
        SimNet::new(grid.size(), platform.net),
        platform.gamma,
        step_sync,
        move |comm| {
            let tile = PhantomMat { rows: th, cols: tw };
            summa_cyclic(comm, grid, n, &tile, &tile, &cfg).unwrap()
        },
    );
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdrive::sim_summa;
    use crate::testutil::reference_product;
    use hsumma_matrix::seeded_uniform;
    use hsumma_runtime::Runtime;

    fn run_cyclic_case(grid: GridShape, n: usize, block: usize) {
        let a = seeded_uniform(n, n, 900);
        let b = seeded_uniform(n, n, 901);
        let dist = BlockCyclicDist::new(grid, n, n, block);
        let at = dist.scatter(&a);
        let bt = dist.scatter(&b);
        let cfg = SummaConfig {
            block,
            ..Default::default()
        };
        let ct = Runtime::run(grid.size(), |comm| {
            summa_cyclic(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            )
            .unwrap()
        });
        let got = dist.gather(&ct);
        let want = reference_product(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9),
            "grid {grid:?} n={n} block={block}: err {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn cyclic_summa_square_grid() {
        run_cyclic_case(GridShape::new(2, 2), 8, 2);
    }

    #[test]
    fn cyclic_summa_rectangular_grid() {
        run_cyclic_case(GridShape::new(2, 4), 16, 2);
    }

    #[test]
    fn cyclic_summa_multiple_rounds_of_dealing() {
        // 4 block-columns per grid column: ownership wraps 4 times.
        run_cyclic_case(GridShape::new(2, 2), 16, 2);
    }

    #[test]
    fn cyclic_summa_single_rank() {
        run_cyclic_case(GridShape::new(1, 1), 8, 2);
    }

    #[test]
    fn cyclic_and_block_summa_same_product() {
        use crate::summa::summa;
        use crate::testutil::distributed_product;
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 31);
        let b = seeded_uniform(n, n, 32);
        let cfg = SummaConfig {
            block: 2,
            ..Default::default()
        };

        let by_block = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(comm, grid, n, &at, &bt, &cfg).unwrap()
        });

        let dist = BlockCyclicDist::new(grid, n, n, 2);
        let at = dist.scatter(&a);
        let bt = dist.scatter(&b);
        let ct = Runtime::run(grid.size(), |comm| {
            summa_cyclic(
                comm,
                grid,
                n,
                &at[comm.rank()].clone(),
                &bt[comm.rank()].clone(),
                &cfg,
            )
            .unwrap()
        });
        let by_cyclic = dist.gather(&ct);

        assert!(by_block.approx_eq(&by_cyclic, 1e-9));
    }

    #[test]
    fn rotating_roots_move_same_data() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 4);
        let (n, b) = (64usize, 8usize);
        let block = sim_summa(&plat, grid, n, b, SimBcast::Flat);
        let cyclic = sim_summa_cyclic(&plat, grid, n, b, SimBcast::Flat, false);
        assert_eq!(block.msgs, cyclic.msgs);
        assert_eq!(block.bytes, cyclic.bytes);
    }

    #[test]
    fn rotating_roots_overlap_better_without_sync() {
        // §VI's intuition: under a root-serialized (flat) broadcast with
        // no artificial step barrier, rotating ownership spreads the
        // serialization across ranks, so the cyclic schedule's makespan
        // is at most the block schedule's — and strictly better when the
        // root is the bottleneck.
        let plat = Platform {
            name: "root-bound",
            net: hsumma_netsim::Hockney::new(1e-3, 1e-9),
            gamma: 0.0,
        };
        let grid = GridShape::new(4, 4);
        let (n, b) = (256usize, 8usize);
        let block = sim_summa(&plat, grid, n, b, SimBcast::Flat);
        let cyclic = sim_summa_cyclic(&plat, grid, n, b, SimBcast::Flat, false);
        assert!(
            cyclic.total_time < block.total_time,
            "cyclic {} should beat block {} when roots serialize",
            cyclic.total_time,
            block.total_time
        );
    }

    #[test]
    fn with_step_sync_cyclic_equals_block_cost() {
        // Under blocking-collective semantics each step costs the same
        // regardless of which column owns the pivot.
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 4);
        let (n, b) = (64usize, 8usize);
        let block = crate::simdrive::sim_summa_sync(&plat, grid, n, b, SimBcast::Binomial);
        let cyclic = sim_summa_cyclic(&plat, grid, n, b, SimBcast::Binomial, true);
        let rel = (block.total_time - cyclic.total_time).abs() / block.total_time;
        assert!(
            rel < 1e-9,
            "block {} vs cyclic {}",
            block.total_time,
            cyclic.total_time
        );
    }
}
