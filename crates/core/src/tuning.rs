//! Selecting the number of groups.
//!
//! The paper selects the optimal `G` by "sampling over valid values" and
//! notes it "can be easily automated ... by using few iterations of
//! HSUMMA" (§VI). This module does exactly that against the timing
//! simulator: sweep every achievable group count (or a caller-chosen
//! subset, e.g. powers of two as in Fig. 8) and return the best.

use crate::grid::HierGrid;
use crate::simdrive::{sim_hsumma, sim_hsumma_engine, sim_hsumma_sync, SimEngine};
use hsumma_matrix::GridShape;
use hsumma_netsim::{Platform, SimBcast, SimReport};

/// One evaluated grouping.
#[derive(Clone, Copy, Debug)]
pub struct GroupPoint {
    /// Total number of groups `G = I·J`.
    pub g: usize,
    /// The `I × J` factorization used.
    pub groups: GridShape,
    /// Simulated timing at this grouping.
    pub report: SimReport,
}

/// Simulates HSUMMA for every group count in `gs` (skipping counts with
/// no valid factorization on `grid`).
#[allow(clippy::too_many_arguments)]
pub fn sweep_groups(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    gs: &[usize],
) -> Vec<GroupPoint> {
    sweep_groups_with(
        platform,
        grid,
        n,
        outer_b,
        inner_b,
        outer_bcast,
        inner_bcast,
        gs,
        false,
    )
}

/// [`sweep_groups`] with selectable per-step synchronization (see
/// `simdrive::sim_summa_sync` for when blocking semantics are the right
/// comparison).
#[allow(clippy::too_many_arguments)]
pub fn sweep_groups_with(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    gs: &[usize],
    step_sync: bool,
) -> Vec<GroupPoint> {
    gs.iter()
        .filter_map(|&g| {
            let groups = HierGrid::factor_groups(grid, g)?;
            let report = if step_sync {
                sim_hsumma_sync(
                    platform,
                    grid,
                    groups,
                    n,
                    outer_b,
                    inner_b,
                    outer_bcast,
                    inner_bcast,
                )
            } else {
                sim_hsumma(
                    platform,
                    grid,
                    groups,
                    n,
                    outer_b,
                    inner_b,
                    outer_bcast,
                    inner_bcast,
                )
            };
            Some(GroupPoint { g, groups, report })
        })
        .collect()
}

/// [`sweep_groups`] under a selected execution engine. With
/// [`SimEngine::Replay`] the sweep prices each grouping on the
/// threadless event loop — the same bit-identical reports, but usable at
/// grids far past the thread-per-rank cap (a G sweep at p = 2¹⁶ is a
/// planner call, not an overnight job).
#[allow(clippy::too_many_arguments)]
pub fn sweep_groups_engine(
    engine: SimEngine,
    platform: &Platform,
    grid: GridShape,
    n: usize,
    outer_b: usize,
    inner_b: usize,
    outer_bcast: SimBcast,
    inner_bcast: SimBcast,
    gs: &[usize],
) -> Vec<GroupPoint> {
    gs.iter()
        .filter_map(|&g| {
            let groups = HierGrid::factor_groups(grid, g)?;
            let report = sim_hsumma_engine(
                engine,
                platform,
                grid,
                groups,
                n,
                outer_b,
                inner_b,
                outer_bcast,
                inner_bcast,
            );
            Some(GroupPoint { g, groups, report })
        })
        .collect()
}

/// Sweeps all valid group counts on `grid`.
pub fn sweep_all_groups(
    platform: &Platform,
    grid: GridShape,
    n: usize,
    block: usize,
    bcast: SimBcast,
) -> Vec<GroupPoint> {
    let gs: Vec<usize> = HierGrid::valid_group_counts(grid)
        .iter()
        .map(|c| c.0)
        .collect();
    sweep_groups(platform, grid, n, block, block, bcast, bcast, &gs)
}

/// Power-of-two group counts `1, 2, 4, …, p` — the x-axis of Fig. 8.
pub fn power_of_two_gs(p: usize) -> Vec<usize> {
    let mut gs = Vec::new();
    let mut g = 1usize;
    while g <= p {
        gs.push(g);
        if g > p / 2 {
            break;
        }
        g *= 2;
    }
    gs
}

/// The grouping with the smallest simulated *communication* time — the
/// quantity the paper optimizes.
pub fn best_by_comm(sweep: &[GroupPoint]) -> GroupPoint {
    *sweep
        .iter()
        .min_by(|a, b| {
            a.report
                .comm_time
                .partial_cmp(&b.report.comm_time)
                .expect("simulated times are finite")
        })
        .expect("sweep must not be empty")
}

/// Auto-tuned HSUMMA — §VI made executable: "the optimal number of
/// groups ... can be easily automated and incorporated into the
/// implementation by using few iterations of HSUMMA."
///
/// For each candidate grouping, all ranks run `sample_steps` outer steps
/// of the real algorithm against scratch data, agree (via an all-reduce
/// of the slowest rank's communication time) on its measured cost, then
/// run the full multiply with the winner. Returns the local `C` tile and
/// the grouping chosen.
///
/// SPMD: every rank must call this with the same configuration.
#[allow(clippy::too_many_arguments)]
pub fn tuned_hsumma(
    comm: &hsumma_runtime::Comm,
    grid: GridShape,
    n: usize,
    a: &hsumma_matrix::Matrix,
    b: &hsumma_matrix::Matrix,
    block: usize,
    candidates: &[usize],
    sample_steps: usize,
) -> Result<(hsumma_matrix::Matrix, GridShape), hsumma_runtime::CommError> {
    use crate::hsumma::HsummaConfig;
    use hsumma_runtime::collectives;

    assert!(sample_steps >= 1, "need at least one sample step");
    assert!(
        !candidates.is_empty(),
        "need at least one candidate grouping"
    );

    // Sample each candidate on a truncated problem: the first
    // `sample_steps` outer panels (a narrower multiply with the same
    // communicator structure and panel sizes).
    let sample_n = (sample_steps * block).min(n);
    let mut best: Option<(f64, GridShape)> = None;
    for &g in candidates {
        let Some(groups) = HierGrid::factor_groups(grid, g) else {
            continue;
        };
        let cfg = HsummaConfig::uniform(groups, block);
        // Measure the schedule prefix (see hsumma_sample): the leading
        // sample_n-sized subproblem exercises the same communicator
        // structure and panel sizes as the full run.
        let before = comm.stats().comm_seconds;
        let _ = hsumma_sample(comm, grid, n, sample_n, a, b, &cfg)?;
        let elapsed = comm.stats().comm_seconds - before;
        // Algorithm choice must be identical on every rank: agree on the
        // slowest rank's time.
        let agreed = collectives::allreduce(comm, elapsed, f64::max)?;
        if best.is_none_or(|(t, _)| agreed < t) {
            best = Some((agreed, groups));
        }
    }
    let (_, groups) = best.expect("at least one candidate must factor the grid");
    let cfg = HsummaConfig::uniform(groups, block);
    Ok((crate::hsumma::hsumma(comm, grid, n, a, b, &cfg)?, groups))
}

/// Runs only the first `sample_n / B` outer steps of HSUMMA (same
/// schedule prefix as the full run) and discards the partial result.
fn hsumma_sample(
    comm: &hsumma_runtime::Comm,
    grid: GridShape,
    n: usize,
    sample_n: usize,
    a: &hsumma_matrix::Matrix,
    b: &hsumma_matrix::Matrix,
    cfg: &crate::hsumma::HsummaConfig,
) -> Result<hsumma_matrix::Matrix, hsumma_runtime::CommError> {
    // The full algorithm on the full operands, but with the step loop
    // truncated: emulate by running on a copy whose trailing pivot
    // panels are unused. Simplest faithful prefix: run the full HSUMMA
    // over a problem of size `sample_n` embedded in the same grid when it
    // divides evenly; otherwise fall back to one full run (still a valid
    // measurement, just not cheaper).
    if sample_n < n && sample_n.is_multiple_of(grid.rows) && sample_n.is_multiple_of(grid.cols) {
        let (sh, sw) = crate::partition::tile_shape(grid, sample_n);
        if sh >= cfg.outer_block
            && sw >= cfg.outer_block
            && sh % cfg.outer_block == 0
            && sw % cfg.outer_block == 0
        {
            let a_small = a.block(0, 0, sh, sw);
            let b_small = b.block(0, 0, sh, sw);
            return crate::hsumma::hsumma(comm, grid, sample_n, &a_small, &b_small, cfg);
        }
    }
    crate::hsumma::hsumma(comm, grid, n, a, b, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::seeded_uniform;

    #[test]
    fn tuned_hsumma_returns_correct_product_and_valid_grouping() {
        let grid = GridShape::new(4, 4);
        let n = 32;
        let a = seeded_uniform(n, n, 1);
        let b = seeded_uniform(n, n, 2);
        let want = reference_product(&a, &b);
        let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            let (c, groups) = tuned_hsumma(comm, grid, n, &at, &bt, 4, &[1, 4, 16], 2).unwrap();
            // Every rank must have agreed on the same grouping; encode it
            // into the tile for a cheap cross-rank consistency check.
            assert!(grid.rows.is_multiple_of(groups.rows) && grid.cols.is_multiple_of(groups.cols));
            c
        });
        assert!(
            got.approx_eq(&want, 1e-9),
            "err {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn tuned_hsumma_all_ranks_agree_on_grouping() {
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 3);
        let b = seeded_uniform(n, n, 4);
        let groups: Vec<(usize, usize)> = hsumma_runtime::Runtime::run(grid.size(), |comm| {
            let dist = hsumma_matrix::BlockDist::new(grid, n, n);
            let at = dist.scatter(&a)[comm.rank()].clone();
            let bt = dist.scatter(&b)[comm.rank()].clone();
            let (_, g) = tuned_hsumma(comm, grid, n, &at, &bt, 2, &[1, 2, 4], 2).unwrap();
            (g.rows, g.cols)
        });
        assert!(
            groups.windows(2).all(|w| w[0] == w[1]),
            "ranks disagreed: {groups:?}"
        );
    }

    #[test]
    fn power_of_two_gs_covers_range() {
        assert_eq!(power_of_two_gs(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(power_of_two_gs(1), vec![1]);
    }

    #[test]
    fn sweep_skips_invalid_group_counts() {
        let plat = Platform::grid5000();
        let grid = GridShape::new(4, 4);
        // G = 3 has no factorization on a 4x4 grid and must be skipped.
        let pts = sweep_groups(
            &plat,
            grid,
            32,
            8,
            8,
            SimBcast::Binomial,
            SimBcast::Binomial,
            &[1, 3, 4],
        );
        let gs: Vec<usize> = pts.iter().map(|p| p.g).collect();
        assert_eq!(gs, vec![1, 4]);
    }

    #[test]
    fn best_grouping_never_loses_to_summa() {
        // The G=1 endpoint *is* SUMMA, so min over the sweep ≤ SUMMA.
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let sweep = sweep_all_groups(&plat, grid, 128, 16, SimBcast::Binomial);
        let best = best_by_comm(&sweep);
        let summa_like = sweep.iter().find(|p| p.g == 1).expect("G=1 present");
        assert!(best.report.comm_time <= summa_like.report.comm_time + 1e-12);
    }

    #[test]
    fn replay_sweep_is_bit_identical_to_threaded_sweep() {
        let plat = Platform::bluegene_p();
        let grid = GridShape::new(8, 8);
        let gs = power_of_two_gs(grid.size());
        let threaded = sweep_groups(
            &plat,
            grid,
            64,
            8,
            8,
            SimBcast::Binomial,
            SimBcast::Binomial,
            &gs,
        );
        let replayed = sweep_groups_engine(
            SimEngine::Replay,
            &plat,
            grid,
            64,
            8,
            8,
            SimBcast::Binomial,
            SimBcast::Binomial,
            &gs,
        );
        assert_eq!(threaded.len(), replayed.len());
        for (t, r) in threaded.iter().zip(&replayed) {
            assert_eq!((t.g, t.groups), (r.g, r.groups));
            assert_eq!(t.report, r.report, "G={}", t.g);
        }
    }

    #[test]
    fn latency_bound_platform_prefers_interior_grouping() {
        let plat = Platform {
            name: "latency-bound",
            net: hsumma_netsim::Hockney::new(0.5, 1e-12),
            gamma: 0.0,
        };
        let grid = GridShape::new(8, 8);
        let sweep = sweep_all_groups(&plat, grid, 64, 8, SimBcast::ScatterAllgather);
        let best = best_by_comm(&sweep);
        assert!(
            best.g > 1 && best.g < 64,
            "expected interior optimum, got G={}",
            best.g
        );
    }
}
