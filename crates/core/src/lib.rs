//! SUMMA, Hierarchical SUMMA (HSUMMA) and the classic baselines — the
//! paper's algorithms, both *executable* (real data over the threaded
//! message-passing runtime) and *simulated* (timed schedule replay at
//! BlueGene/P scale).
//!
//! Reproduction of Quintin, Hasanov & Lastovetsky, *"Hierarchical
//! Parallel Matrix Multiplication on Large-Scale Distributed Memory
//! Platforms"* (ICPP 2013).
//!
//! * [`grid`] — the two-level group hierarchy over a 2-D processor grid;
//! * [`mod@summa`] — SUMMA (van de Geijn & Watts), the paper's baseline;
//! * [`cyclic`] — SUMMA over a block-cyclic distribution (future work of
//!   §VI), with the overlap benefit quantified in simulation;
//! * [`mod@hsumma`] — HSUMMA per Algorithm 1, the paper's contribution;
//! * [`mod@cannon`], [`mod@fox`] — the historical square-grid baselines of §I;
//! * [`simdrive`] — schedule replay on `hsumma-netsim` clocks (Figs. 5–9);
//! * [`tuning`] — optimal group count selection by sampling (§VI);
//! * [`multilevel`] — ≥ 2 hierarchy levels (the paper's future work);
//! * [`plan`] — executable algorithm plans ([`PlannedAlgo`]) and the
//!   generic dispatcher [`run_planned`], used by the serving layer;
//! * [`overlap`] — one-step-lookahead SUMMA hiding panel transfers
//!   behind the local multiply (§VI's overlap remark);
//! * [`mod@twodotfive`] — the 2.5D algorithm of §I, executable, for the
//!   memory-vs-communication trade-off comparison;
//! * [`lu`] — distributed block LU with optional hierarchical panel
//!   broadcasts, and [`mod@tsqr`] — communication-avoiding tall-skinny QR
//!   (the §VI plan to carry the approach to LU/QR);
//! * [`rect`] — the general `(M, L, N)` rectangular forms of Algorithm 1;
//! * [`distribution`] — grid-free ownership descriptors ([`Distribution`],
//!   [`BrickDecomp`]) with exact-cover validation, host-side
//!   scatter/gather, and SPMD [`redistribute`];
//! * [`mod@cosma`] — the COSMA-style near-communication-optimal schedule
//!   over `(a, b, c)` brick decompositions of the `m × n × k` cube;
//! * [`testutil`] — scatter/run/gather drivers shared by tests, examples
//!   and benchmarks.

pub mod cannon;
pub mod comm;
pub mod cosma;
pub mod cyclic;
pub mod distribution;
pub mod fox;
pub mod grid;
pub mod hsumma;
pub mod lu;
pub mod multilevel;
pub mod overlap;
pub mod partition;
pub mod plan;
pub mod rect;
pub mod simdrive;
pub mod summa;
pub mod testutil;
pub mod tsqr;
pub mod tuning;
pub mod twodotfive;

pub use cannon::cannon;
pub use comm::{CollectiveHandle, Communicator, MatLike, PanelBcast, PhantomMat};
pub use cosma::{cosma, reduce_scatter_gather, CosmaConfig};
pub use cyclic::summa_cyclic;
pub use distribution::{redistribute, BrickDecomp, Distribution};
pub use fox::fox;
pub use grid::HierGrid;
pub use hsumma::{hsumma, HsummaConfig};
pub use lu::{block_lu, LuConfig};
pub use multilevel::hier_bcast;
pub use overlap::{
    hsumma_overlap, hsumma_overlap_lookahead, summa_overlap, summa_overlap_lookahead,
};
pub use partition::{
    ceil_div, chunk_range, pivot_offset, pivot_owner, tile_shape, tile_shape_rect,
};
pub use plan::{run_planned, run_planned_gemm, PlannedAlgo};
pub use rect::{hsumma_rect, summa_rect, MatMulDims};
pub use simdrive::{
    record_cosma, record_hsumma, record_summa, replay_on, sim_cosma, sim_cosma_engine, sim_hsumma,
    sim_hsumma_engine, sim_summa, sim_summa_engine, SimEngine,
};
pub use summa::{summa, SummaConfig};
pub use tsqr::tsqr;
pub use tuning::tuned_hsumma;
pub use twodotfive::{twodotfive, TwoDotFiveConfig};

/// Converts a runtime broadcast-algorithm selector into the simulator's,
/// so executable and simulated configurations stay interchangeable.
pub fn to_sim_bcast(algo: hsumma_runtime::BcastAlgorithm) -> hsumma_netsim::SimBcast {
    use hsumma_netsim::SimBcast;
    use hsumma_runtime::BcastAlgorithm as B;
    match algo {
        B::Flat => SimBcast::Flat,
        B::Binomial => SimBcast::Binomial,
        B::Binary => SimBcast::Binary,
        B::Ring => SimBcast::Ring,
        B::Pipelined { segments } => SimBcast::Pipelined { segments },
        B::ScatterAllgather => SimBcast::ScatterAllgather,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsumma_netsim::SimBcast;
    use hsumma_runtime::BcastAlgorithm;

    #[test]
    fn bcast_conversion_covers_all_variants() {
        assert_eq!(to_sim_bcast(BcastAlgorithm::Flat), SimBcast::Flat);
        assert_eq!(to_sim_bcast(BcastAlgorithm::Binomial), SimBcast::Binomial);
        assert_eq!(to_sim_bcast(BcastAlgorithm::Binary), SimBcast::Binary);
        assert_eq!(to_sim_bcast(BcastAlgorithm::Ring), SimBcast::Ring);
        assert_eq!(
            to_sim_bcast(BcastAlgorithm::Pipelined { segments: 7 }),
            SimBcast::Pipelined { segments: 7 }
        );
        assert_eq!(
            to_sim_bcast(BcastAlgorithm::ScatterAllgather),
            SimBcast::ScatterAllgather
        );
    }
}
