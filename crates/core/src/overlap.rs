//! Communication/computation overlap — the paper's §VI remark made
//! concrete.
//!
//! §VI: "until now we got all these improvements without overlapping the
//! communications on the virtual hierarchies", i.e. further gains are
//! available by hiding panel transfers behind the local multiply.
//!
//! [`summa_overlap`] implements one-step lookahead: pivot owners *push*
//! step `k+1`'s panels (eager point-to-point sends, per-step tags) before
//! anyone computes step `k`, so by the time a rank finishes its multiply
//! the next panels are already in its mailbox and `recv` returns without
//! blocking. The push distribution is a flat tree — relays would have to
//! block, which is exactly what lookahead avoids.
//!
//! In the simulator, overlap corresponds to the free-running (non-`sync`)
//! execution semantics; `sim_overlap_benefit` quantifies the gap
//! against blocking-collective SUMMA.

use crate::comm::{Communicator, MatLike};
use crate::summa::check_tiles;
use hsumma_matrix::GridShape;
use hsumma_netsim::{Platform, SimBcast};
use hsumma_runtime::CommError;

pub use crate::summa::SummaConfig;

/// SUMMA with one-step lookahead (flat push distribution). Same
/// distribution, operands and result as [`crate::summa::summa`]; the
/// `cfg.bcast` field is ignored (the push schedule replaces it).
///
/// Generic over the [`Communicator`] substrate: pushed panels travel as
/// shared handles (an `Arc` refcount bump per destination on the real
/// runtime, a byte charge on the simulator).
///
/// # Panics
/// Panics on the same inconsistencies as `summa`.
pub fn summa_overlap<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &SummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let bs = cfg.block;
    assert!(bs > 0, "block size must be positive");
    assert_eq!(tw % bs, 0, "block must divide the tile width");
    assert_eq!(th % bs, 0, "block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let row_comm = comm.split(gi as u64, gj as i64)?;
    let col_comm = comm.split((grid.rows + gj) as u64, gi as i64)?;

    let owner_col = |k: usize| k * bs / tw;
    let owner_row = |k: usize| k * bs / th;

    // Pushes step k's panels to all peers; owners only. The panel is
    // materialized once and shared — each destination gets a shared
    // handle, not its own deep copy.
    let push = |k: usize| -> Result<(), CommError> {
        if gj == owner_col(k) {
            let panel = C::share(a.block(0, k * bs % tw, th, bs));
            for dst in 0..row_comm.size() {
                if dst != row_comm.rank() {
                    row_comm.send_shared(dst, 2 * k as u64, &panel)?;
                }
            }
        }
        if gi == owner_row(k) {
            let panel = C::share(b.block(k * bs % th, 0, bs, tw));
            for dst in 0..col_comm.size() {
                if dst != col_comm.rank() {
                    col_comm.send_shared(dst, 2 * k as u64 + 1, &panel)?;
                }
            }
        }
        Ok(())
    };

    let steps = n / bs;
    let mut c = C::Mat::zeros(th, tw);
    // Owners refill this scratch in place each step instead of allocating
    // a fresh panel; non-owners borrow the received shared panel.
    let mut a_scratch = C::Mat::zeros(th, bs);
    let mut b_scratch = C::Mat::zeros(bs, tw);
    let step_pairs = th * tw * bs;
    if steps > 0 {
        push(0)?;
    }
    for k in 0..steps {
        // Lookahead: inject step k+1's panels before computing step k.
        if k + 1 < steps {
            push(k + 1)?;
        }
        let a_recv: C::Shared;
        let a_panel: &C::Mat = if gj == owner_col(k) {
            a.block_into(0, k * bs % tw, &mut a_scratch);
            &a_scratch
        } else {
            a_recv = row_comm.recv_shared(owner_col(k), 2 * k as u64, th, bs)?;
            C::shared_ref(&a_recv)
        };
        let b_recv: C::Shared;
        let b_panel: &C::Mat = if gi == owner_row(k) {
            b.block_into(k * bs % th, 0, &mut b_scratch);
            &b_scratch
        } else {
            b_recv = col_comm.recv_shared(owner_row(k), 2 * k as u64 + 1, bs, tw)?;
            C::shared_ref(&b_recv)
        };
        comm.compute(step_pairs as f64, 2 * step_pairs as u64, || {
            C::Mat::gemm(cfg.kernel, a_panel, b_panel, &mut c)
        });
    }
    Ok(c)
}

/// HSUMMA with overlap *on the virtual hierarchies* (§VI verbatim):
/// outer panels are prefetched one outer step ahead across groups, and a
/// whole outer panel's worth of inner panels is pushed inside the group
/// as soon as the outer panel lands — so neither broadcast level blocks
/// the multiply loop.
///
/// Same operands, distribution and result as [`crate::hsumma::hsumma`];
/// the `outer_bcast`/`inner_bcast` fields are ignored (flat pushes
/// replace them — relays would have to block, defeating the lookahead).
///
/// # Panics
/// Panics on the same configuration inconsistencies as `hsumma`.
pub fn hsumma_overlap<C: Communicator>(
    comm: &C,
    grid: GridShape,
    n: usize,
    a: &C::Mat,
    b: &C::Mat,
    cfg: &crate::hsumma::HsummaConfig,
) -> Result<C::Mat, CommError> {
    let (th, tw) = check_tiles(grid, n, a, b, comm.size());
    let hg = crate::grid::HierGrid::new(grid, cfg.groups);
    let inner = hg.inner();
    let (bb, bs) = (cfg.outer_block, cfg.inner_block);
    assert!(bs > 0 && bb > 0, "block sizes must be positive");
    assert_eq!(bb % bs, 0, "inner block must divide outer block");
    assert_eq!(tw % bb, 0, "outer block must divide the tile width");
    assert_eq!(th % bb, 0, "outer block must divide the tile height");

    let (gi, gj) = grid.coords(comm.rank());
    let (x, y) = hg.group_of(gi, gj);
    let (i, j) = hg.inner_of(gi, gj);
    let color3 = crate::grid::color3;
    let group_row = comm.split(color3(x, i, j), y as i64)?;
    let group_col = comm.split(color3(y, i, j), x as i64)?;
    let row = comm.split(color3(x, y, i), j as i64)?;
    let col = comm.split(color3(x, y, j), i as i64)?;

    let outer_steps = n / bb;
    let inner_steps = bb / bs;
    let a_owner = |kg: usize| {
        let gcol = kg * bb / tw;
        (gcol, gcol / inner.cols, gcol % inner.cols) // (grid col, yk, jk)
    };
    let b_owner = |kg: usize| {
        let grow = kg * bb / th;
        (grow, grow / inner.rows, grow % inner.rows) // (grid row, xk, ik)
    };

    // Prefetch push of outer step kg across groups (owners only). One
    // materialized panel per push, shared across destinations.
    let push_outer = |kg: usize| -> Result<(), CommError> {
        let (gcol, _, jk) = a_owner(kg);
        if gj == gcol && j == jk {
            let panel = C::share(a.block(0, kg * bb % tw, th, bb));
            for dst in 0..group_row.size() {
                if dst != group_row.rank() {
                    group_row.send_shared(dst, 2 * kg as u64, &panel)?;
                }
            }
        }
        let (grow, _, ik) = b_owner(kg);
        if gi == grow && i == ik {
            let panel = C::share(b.block(kg * bb % th, 0, bb, tw));
            for dst in 0..group_col.size() {
                if dst != group_col.rank() {
                    group_col.send_shared(dst, 2 * kg as u64 + 1, &panel)?;
                }
            }
        }
        Ok(())
    };

    let mut c = C::Mat::zeros(th, tw);
    // Reusable scratch: outer panels for ranks that own them locally,
    // inner panels for every holder of an outer panel.
    let mut outer_a_scratch = C::Mat::zeros(th, bb);
    let mut outer_b_scratch = C::Mat::zeros(bb, tw);
    let mut a_in_scratch = C::Mat::zeros(th, bs);
    let mut b_in_scratch = C::Mat::zeros(bs, tw);
    let inner_pairs = th * tw * bs;
    if outer_steps > 0 {
        push_outer(0)?;
    }
    for kg in 0..outer_steps {
        if kg + 1 < outer_steps {
            push_outer(kg + 1)?;
        }

        // Land the outer panels on the inner pivot row/column.
        let (gcol, yk, jk) = a_owner(kg);
        let outer_a_recv: C::Shared;
        let outer_a: Option<&C::Mat> = if j == jk {
            Some(if gj == gcol {
                a.block_into(0, kg * bb % tw, &mut outer_a_scratch);
                &outer_a_scratch
            } else {
                outer_a_recv = group_row.recv_shared(yk, 2 * kg as u64, th, bb)?;
                C::shared_ref(&outer_a_recv)
            })
        } else {
            None
        };
        let (grow, xk, ik) = b_owner(kg);
        let outer_b_recv: C::Shared;
        let outer_b: Option<&C::Mat> = if i == ik {
            Some(if gi == grow {
                b.block_into(kg * bb % th, 0, &mut outer_b_scratch);
                &outer_b_scratch
            } else {
                outer_b_recv = group_col.recv_shared(xk, 2 * kg as u64 + 1, bb, tw)?;
                C::shared_ref(&outer_b_recv)
            })
        } else {
            None
        };

        // Push every inner panel of this outer step at once, then drain.
        let inner_tag = |ki: usize, is_b: bool| {
            (2 * (kg * inner_steps + ki) + usize::from(is_b)) as u64 + (1 << 32)
        };
        if let Some(panel) = outer_a {
            for ki in 0..inner_steps {
                let slice = C::share(panel.block(0, ki * bs, th, bs));
                for dst in 0..row.size() {
                    if dst != row.rank() {
                        row.send_shared(dst, inner_tag(ki, false), &slice)?;
                    }
                }
            }
        }
        if let Some(panel) = outer_b {
            for ki in 0..inner_steps {
                let slice = C::share(panel.block(ki * bs, 0, bs, tw));
                for dst in 0..col.size() {
                    if dst != col.rank() {
                        col.send_shared(dst, inner_tag(ki, true), &slice)?;
                    }
                }
            }
        }
        for ki in 0..inner_steps {
            let a_in_recv: C::Shared;
            let a_in: &C::Mat = match outer_a {
                Some(panel) => {
                    panel.block_into(0, ki * bs, &mut a_in_scratch);
                    &a_in_scratch
                }
                None => {
                    a_in_recv = row.recv_shared(jk, inner_tag(ki, false), th, bs)?;
                    C::shared_ref(&a_in_recv)
                }
            };
            let b_in_recv: C::Shared;
            let b_in: &C::Mat = match outer_b {
                Some(panel) => {
                    panel.block_into(ki * bs, 0, &mut b_in_scratch);
                    &b_in_scratch
                }
                None => {
                    b_in_recv = col.recv_shared(ik, inner_tag(ki, true), bs, tw)?;
                    C::shared_ref(&b_in_recv)
                }
            };
            comm.compute(inner_pairs as f64, 2 * inner_pairs as u64, || {
                C::Mat::gemm(cfg.kernel, a_in, b_in, &mut c)
            });
        }
    }
    Ok(c)
}

/// Quantifies the overlap benefit in the simulator: free-running
/// (overlapped) vs blocking-collective SUMMA under the same flat push
/// schedule. Returns `(overlapped_total, blocking_total)` seconds.
pub fn sim_overlap_benefit(platform: &Platform, grid: GridShape, n: usize, b: usize) -> (f64, f64) {
    let free = crate::simdrive::sim_summa(platform, grid, n, b, SimBcast::Flat);
    let sync = crate::simdrive::sim_summa_sync(platform, grid, n, b, SimBcast::Flat);
    (free.total_time, sync.total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summa::summa;
    use crate::testutil::{distributed_product, reference_product};
    use hsumma_matrix::{seeded_uniform, GemmKernel};

    fn cfg(block: usize) -> SummaConfig {
        SummaConfig {
            block,
            kernel: GemmKernel::Blocked,
            ..Default::default()
        }
    }

    #[test]
    fn overlap_summa_matches_serial() {
        for (s, t, n, block) in [(2, 2, 16, 4), (2, 4, 16, 2), (1, 1, 8, 4), (3, 3, 9, 1)] {
            let grid = GridShape::new(s, t);
            let a = seeded_uniform(n, n, 60);
            let b = seeded_uniform(n, n, 61);
            let want = reference_product(&a, &b);
            let c = cfg(block);
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                summa_overlap(comm, grid, n, &at, &bt, &c).unwrap()
            });
            assert!(
                got.approx_eq(&want, 1e-9),
                "{s}x{t} n={n} block={block}: err {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn overlap_equals_plain_summa_exactly() {
        // Same local operation order => bit-identical result.
        let grid = GridShape::new(2, 2);
        let n = 16;
        let a = seeded_uniform(n, n, 71);
        let b = seeded_uniform(n, n, 72);
        let c = cfg(4);
        let plain = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa(comm, grid, n, &at, &bt, &c).unwrap()
        });
        let overlapped = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            summa_overlap(comm, grid, n, &at, &bt, &c).unwrap()
        });
        assert_eq!(plain, overlapped);
    }

    #[test]
    fn hsumma_overlap_matches_serial_across_groupings() {
        use crate::grid::HierGrid;
        use crate::hsumma::HsummaConfig;
        let grid = GridShape::new(4, 4);
        let n = 16;
        let a = seeded_uniform(n, n, 81);
        let b = seeded_uniform(n, n, 82);
        let want = reference_product(&a, &b);
        for (g, groups) in HierGrid::valid_group_counts(grid) {
            let hcfg = HsummaConfig {
                kernel: GemmKernel::Blocked,
                ..HsummaConfig::uniform(groups, 2)
            };
            let got = distributed_product(grid, n, &a, &b, |comm, at, bt| {
                hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
            });
            assert!(got.approx_eq(&want, 1e-9), "G={g} diverged");
        }
    }

    #[test]
    fn hsumma_overlap_equals_hsumma_exactly() {
        use crate::hsumma::{hsumma, HsummaConfig};
        let grid = GridShape::new(4, 4);
        let n = 32;
        let a = seeded_uniform(n, n, 83);
        let b = seeded_uniform(n, n, 84);
        let hcfg = HsummaConfig {
            outer_block: 8,
            inner_block: 2,
            kernel: GemmKernel::Blocked,
            ..HsummaConfig::uniform(GridShape::new(2, 2), 8)
        };
        let plain = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        let overlapped = distributed_product(grid, n, &a, &b, |comm, at, bt| {
            hsumma_overlap(comm, grid, n, &at, &bt, &hcfg).unwrap()
        });
        assert_eq!(plain, overlapped, "same local op order => bitwise equal");
    }

    #[test]
    fn simulated_overlap_beats_blocking() {
        // With flat pushes, the root's serialization overlaps with other
        // ranks' compute once the per-step barrier is dropped.
        let platform = Platform::bluegene_p_effective();
        let grid = GridShape::new(8, 8);
        let (free, sync) = sim_overlap_benefit(&platform, grid, 512, 32);
        assert!(free < sync, "overlapped {free} should beat blocking {sync}");
    }
}
